"""Example I.1 from the paper, end to end.

John (29) is rejected in 2018.  A *static* explainer tells him to raise
his income by ~20%; he spends two years doing that, reapplies in 2020 —
and the criteria have moved (for people over 30 the income requirement
relaxes while the debt requirement tightens), so he may be rejected again.

This script contrasts:

* the static plan: modify income per the present model's advice, apply the
  *temporal drift* (age/seniority grow), and score it under the *future*
  model two years out;
* the JustInTime temporal plan: candidates generated directly against the
  future model at t=2 with the same user constraints.

    python examples/john_running_example.py
"""


from repro import (
    AdminConfig,
    CandidateGenerator,
    JustInTime,
    build_plan,
    john_profile,
    lending_domain_constraints,
    lending_schema,
    lending_update_function,
    make_lending_dataset,
)


def main() -> None:
    schema = lending_schema()
    history = make_lending_dataset(n_per_year=250, random_state=1)
    # 'weights' extrapolates the policy trajectory -> genuinely different
    # future models, which is what makes static advice go stale
    system = JustInTime(
        schema,
        lending_update_function(schema),
        AdminConfig(T=3, strategy="weights", k=6, max_iter=12, random_state=0),
        domain_constraints=lending_domain_constraints(schema),
    )
    system.fit(history)

    john = schema.vector(john_profile())
    income = schema.index_of("annual_income")

    present = system.future_models[0]
    future = system.future_models[2]  # two years out
    print(f"present score: {present.score(john.reshape(1, -1))[0]:.3f}"
          f"  (threshold {present.threshold:.2f})")

    # ---- static advice: search only against the PRESENT model -----------
    static_gen = CandidateGenerator(
        present.model,
        present.threshold,
        schema,
        system.domain_constraints,
        k=6,
        objective="diff",
        diff_scale=system.diff_scale,
        random_state=0,
    )
    static_candidates = [
        c for c in static_gen.generate(john, time=0)
        # emulate the "increase your income" style advice: income-only plans
        if set(c.changes(john, schema)) == {"annual_income"}
    ]
    if not static_candidates:
        print("(no income-only static plan exists; taking the overall best)")
        static_candidates = static_gen.generate(john, time=0)
    static = static_candidates[0]
    plan = build_plan(static, john, schema, time_value=system.time_values[0])
    print("\nSTATIC PLAN (from the present model):")
    print(plan.describe())

    # ---- what happens when John follows it for two years ----------------
    drifted = system.update_function.apply(john, 2)  # age 31, seniority +2
    followed = drifted.copy()
    followed[income] = static.x[income]  # income raised as advised
    future_score = future.score(followed.reshape(1, -1))[0]
    verdict = "APPROVED" if future_score > future.threshold else "REJECTED"
    print(f"\ntwo years later, under the 2+ years model: score"
          f" {future_score:.3f} -> {verdict}")

    # ---- the temporal plan: ask JustInTime directly ----------------------
    session = system.create_session(
        "john",
        john_profile(),
        user_constraints=["annual_income <= base_annual_income * 1.25"],
    )
    print("\nTEMPORAL PLAN (JustInTime, minimal overall modification):")
    print(session.ask("q4").text)
    print("\nHighest-confidence option:")
    print(session.ask("q5").text)

    by_time = {}
    for c in session.candidates:
        by_time.setdefault(c.time, []).append(c.diff)
    print("\nminimal effort (scaled diff) per time point:")
    for t in sorted(by_time):
        print(f"  t={t} (≈{system.time_values[t]:.0f}):"
              f" {min(by_time[t]):.3f}")


if __name__ == "__main__":
    main()
