"""Multi-class generalisation (§II.A): reaching the *prime* loan grade.

Instead of a binary approve/reject, the bank assigns a grade
(0 = reject, 1 = standard, 2 = prime).  The paper notes its framework
"can be easily generalized to multi-class problems"; this example shows
how: train a one-vs-rest grade model, adapt it with
:class:`DesiredClassModel` to the binary Definition II.1 contract
("probability of the desired grade"), and run the unchanged candidates
generator against it.

    python examples/loan_grades_multiclass.py
"""

import numpy as np

from repro.app.render import table
from repro.constraints import lending_domain_constraints
from repro.core import CandidateGenerator, build_plan
from repro.data import LendingGenerator, john_profile, lending_schema
from repro.ml import DesiredClassModel, OneVsRestClassifier, RandomForestClassifier


def main() -> None:
    schema = lending_schema()
    generator = LendingGenerator(random_state=0)

    # training data with grades at the most recent years
    X = generator.sample_profiles(2_000)
    years = np.full(2_000, 2018.0)
    grades = generator.label_grades(X, years)
    print("grade distribution:",
          {g: int(np.sum(grades == g)) for g in np.unique(grades)})

    ovr = OneVsRestClassifier(
        lambda: RandomForestClassifier(n_estimators=15, max_depth=8),
        random_state=0,
    ).fit(X, grades)
    print(f"training accuracy: {ovr.score(X, grades):.3f}")

    john = schema.vector(john_profile())
    proba = ovr.predict_proba(john.reshape(1, -1))[0]
    print("John's grade probabilities:",
          {int(c): round(float(p), 3) for c, p in zip(ovr.classes_, proba)})

    # "what should I change so the model assigns me grade 2 (prime)?"
    prime_model = DesiredClassModel(ovr, desired_class=2)
    scale = X.std(axis=0)
    scale[scale == 0] = 1.0
    search = CandidateGenerator(
        prime_model,
        threshold=0.5,
        schema=schema,
        constraints=lending_domain_constraints(schema),
        k=5,
        objective="diff",
        diff_scale=scale,
        random_state=0,
    )
    found = search.generate(john, time=0)
    if not found:
        print("no path to prime under the domain constraints")
        return
    print(f"\n{len(found)} paths to the PRIME grade:")
    rows = []
    for candidate in found:
        plan = build_plan(candidate, john, schema, time_value=2018.0)
        changed = ", ".join(
            f"{c.feature}->{c.to_value:,.6g}" for c in plan.changes
        )
        rows.append(
            (f"{candidate.confidence:.2f}", f"{candidate.diff:.3f}",
             candidate.gap, changed)
        )
    print(table(("P(prime)", "diff", "gap", "changes"), rows))


if __name__ == "__main__":
    main()
