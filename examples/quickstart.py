"""Quickstart: fit a JustInTime system and read all six insights.

Runs the whole Figure-1 architecture on the synthetic lending data:
models generator -> temporal inputs -> candidates generators -> relational
store -> canned queries.

    python examples/quickstart.py
"""

from repro import (
    AdminConfig,
    JustInTime,
    john_profile,
    lending_domain_constraints,
    lending_schema,
    lending_update_function,
    make_lending_dataset,
)


def main() -> None:
    schema = lending_schema()

    # --- administrator: horizon of 4 future years, one model per year ----
    config = AdminConfig(T=4, delta=1.0, strategy="last", k=6, random_state=0)
    system = JustInTime(
        schema,
        lending_update_function(schema),
        config,
        domain_constraints=lending_domain_constraints(schema),
    )

    # --- models generator: timestamped history -> (M_t, delta_t) ---------
    history = make_lending_dataset(n_per_year=200, random_state=1)
    system.fit(history)
    print(f"trained {len(system.future_models)} future models"
          f" for calendar times {[round(v, 1) for v in system.time_values]}")

    # --- user: John, 29, rejected today -----------------------------------
    session = system.create_session(
        "john",
        john_profile(),
        user_constraints=[
            "annual_income <= base_annual_income * 1.2",  # at most +20% income
            "gap <= 3",                                   # at most 3 changes
        ],
    )
    print(f"John rejected now: {session.is_rejected_now()}"
          f" (score {session.current_score():.3f})")
    print(f"candidates stored: {system.store.candidate_count('john')}\n")

    # --- insights: the six canned questions -------------------------------
    for insight in session.all_insights(alpha=0.6, feature="monthly_debt"):
        print(f"== {insight.title}")
        print(insight.text)
        print()


if __name__ == "__main__":
    main()
