"""Expert interface: free-form SQL over the candidates database.

"Experts may interact with the system directly in SQL" (§II.C).  This
script populates the store for one user and runs analyst-style queries the
canned catalog does not cover.

    python examples/expert_sql.py
"""

from repro import (
    AdminConfig,
    JustInTime,
    john_profile,
    lending_domain_constraints,
    lending_schema,
    lending_update_function,
    make_lending_dataset,
)
from repro.app.render import table


def main() -> None:
    schema = lending_schema()
    system = JustInTime(
        schema,
        lending_update_function(schema),
        AdminConfig(T=4, strategy="last", k=8, random_state=0),
        domain_constraints=lending_domain_constraints(schema),
    )
    system.fit(make_lending_dataset(n_per_year=200, random_state=1))
    session = system.create_session("john", john_profile())

    print("== candidates per time point, with effort statistics")
    rows = session.sql(
        """
        SELECT time,
               COUNT(*)          AS n,
               ROUND(MIN(diff), 3) AS min_diff,
               ROUND(AVG(diff), 3) AS avg_diff,
               ROUND(MAX(p), 3)    AS best_p
        FROM candidates
        WHERE user_id = 'john'
        GROUP BY time
        ORDER BY time
        """
    )
    print(table(("time", "n", "min_diff", "avg_diff", "best_p"),
                [tuple(r) for r in rows]))

    print("\n== cheapest candidate that clears confidence 0.6 per time point")
    rows = session.sql(
        """
        SELECT c.time, ROUND(MIN(c.diff), 3) AS min_diff
        FROM candidates c
        WHERE c.user_id = 'john' AND c.p > 0.6
        GROUP BY c.time
        ORDER BY c.time
        """
    )
    print(table(("time", "min_diff"), [tuple(r) for r in rows]))

    print("\n== how often each feature appears modified (join vs temporal_inputs)")
    feature_rows = []
    for name in schema.names:
        count = session.sql(
            f"""
            SELECT COUNT(*) AS n
            FROM candidates c
            INNER JOIN temporal_inputs ti
                ON ti.user_id = c.user_id AND ti.time = c.time
            WHERE c.user_id = 'john' AND c.{name} != ti.{name}
            """
        )[0]["n"]
        feature_rows.append((name, count))
    print(table(("feature", "modified_in"), feature_rows))

    print("\n== Figure-2 Q1 verbatim (with user scoping)")
    rows = session.sql(
        "SELECT MIN(time) AS t FROM candidates"
        " WHERE user_id = 'john' AND diff <= 1e-9"
    )
    print(f"   earliest no-modification approval: {rows[0]['t']}")


if __name__ == "__main__":
    main()
