"""Administrator tooling: how fast does the data drift, and what Δ fits?

Before configuring T and Δ (the "parameters controlling the amount and
time intervals between future time points", §I), an administrator should
look at the history's actual drift.  This script prints:

* the MMD covariate-drift profile between consecutive yearly windows;
* the label-shift profile (the policy drift itself — watch 2008-09);
* the suggested Δ from the permutation-noise test.

    python examples/drift_inspection.py
"""

from repro.app.render import bar_chart
from repro.data import LendingGenerator, LendingPolicy
from repro.temporal import label_shift_profile, mmd_drift_profile, suggest_delta


def main() -> None:
    generator = LendingGenerator(LendingPolicy(drift_strength=1.0), random_state=0)
    history = generator.generate(n_per_year=300)
    print(f"history: {history}\n")

    profile = mmd_drift_profile(history, delta=1.0)
    print(bar_chart(
        [(int(t), v) for t, v in profile],
        title="covariate drift (MMD between consecutive years; t = year):",
    ))

    print()
    shifts = label_shift_profile(history, delta=1.0)
    print(bar_chart(
        [(int(t), v) for t, v in shifts],
        title="approval rate per year (note the 2008-09 crunch):",
        value_format="{:.2f}",
    ))

    print()
    delta = suggest_delta(history, candidates=(0.5, 1.0, 2.0))
    print(f"suggested Δ: {delta} year(s)")


if __name__ == "__main__":
    main()
