"""The §III demonstration flow: five denied applications reenacted.

Each applicant walks through the three screens — Personal Preferences,
Queries, Plans and Insights — with a different preference profile, showing
how constraints reshape the feasible plans.

    python examples/five_rejected_applicants.py
"""

import sys

from repro.app.cli import make_parser, run_demo


def main() -> None:
    args = make_parser().parse_args(
        ["--n-per-year", "150", "--horizon", "3", "--alpha", "0.55", "demo"]
    )
    run_demo(args, sys.stdout)


if __name__ == "__main__":
    main()
