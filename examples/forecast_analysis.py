"""Forecast-quality analysis: how good are the predicted future models?

Holds out the final years of the lending history, trains every forecasting
strategy on the earlier years, and scores each strategy's t-step-ahead
model against the ground-truth policy of the held-out year — with the
oracle (trained on true future data) as the upper bound.  This is the
quantitative backbone behind the paper's §II.B design choice.

    python examples/forecast_analysis.py
"""

import numpy as np

from repro.app.render import table
from repro.data import LendingGenerator, LendingPolicy
from repro.ml import RandomForestClassifier, roc_auc_score
from repro.temporal import EDDStrategy, ModelsGenerator, OracleStrategy


def main() -> None:
    policy = LendingPolicy(drift_strength=1.2)
    generator = LendingGenerator(policy, random_state=0)
    history = generator.generate(n_per_year=250, start_year=2007, end_year=2015)
    horizon = 3  # predict 2016..2018

    # ground-truth labeled evaluation sets for each future year
    eval_sets = {}
    for t in range(horizon + 1):
        year = 2015.0 + t
        X = generator.sample_profiles(1_500)
        p = generator.ground_truth_probability(X, year)
        eval_sets[t] = (X, (p > 0.5).astype(int))

    def forest():
        return RandomForestClassifier(n_estimators=20, max_depth=8, random_state=0)

    strategies = {
        "last": "last",
        "full": "full",
        "reweight": "reweight",
        "weights": "weights",
        "edd": EDDStrategy(n_herd=200),
        "oracle": OracleStrategy(generator, n_samples=600),
    }
    rows = []
    for name, strategy in strategies.items():
        mg = ModelsGenerator(
            T=horizon, strategy=strategy, model_factory=forest, random_state=0
        )
        fm = mg.generate(history)
        aucs = []
        for t in range(horizon + 1):
            X, y = eval_sets[t]
            aucs.append(roc_auc_score(y, fm[t].score(X)))
        rows.append((name, *(f"{a:.3f}" for a in aucs), f"{np.mean(aucs):.3f}"))

    headers = ("strategy", *(f"AUC t={t}" for t in range(horizon + 1)), "mean")
    print("future-model quality vs ground-truth policy"
          " (higher is better; oracle = upper bound)\n")
    print(table(headers, rows))


if __name__ == "__main__":
    main()
