"""Terminal frontend replacing the demo's JavaScript UI."""

from repro.app.cli import build_system, main, run_demo, run_interactive, run_quickstart
from repro.app.render import insight_block, profile_table, screen_header, table

__all__ = [
    "build_system",
    "insight_block",
    "main",
    "profile_table",
    "run_demo",
    "run_interactive",
    "run_quickstart",
    "screen_header",
    "table",
]
