"""Text rendering for the CLI frontend.

The original demo has a JavaScript frontend with three screens (Personal
Preferences, Queries, Plans and Insights — Figure 3).  The CLI renders the
same content as plain text: boxed screen headers, aligned tables for
profiles/candidates, and the verbal insights produced by
:mod:`repro.core.insights`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.insights import Insight
from repro.data.schema import DatasetSchema

__all__ = ["screen_header", "table", "profile_table", "insight_block", "bar_chart"]


def screen_header(title: str, width: int = 72) -> str:
    """Boxed screen title, e.g. the 'Plans and Insights' banner."""
    inner = f" {title} "
    pad = max(width - 2, len(inner))
    return "\n".join(
        [
            "+" + "-" * pad + "+",
            "|" + inner.center(pad) + "|",
            "+" + "-" * pad + "+",
        ]
    )


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with per-column alignment."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return f"{int(cell):,}"
        return f"{cell:,.3f}"
    if isinstance(cell, (int, np.integer)):
        return f"{int(cell):,}"
    return str(cell)


def profile_table(schema: DatasetSchema, x, title: str = "profile") -> str:
    """Render one profile vector with feature descriptions."""
    x = np.asarray(x, dtype=float).ravel()
    rows = [
        (spec.name, _fmt(float(v)), spec.description)
        for spec, v in zip(schema.features, x)
    ]
    return f"{title}:\n" + table(("feature", "value", "description"), rows)


def bar_chart(
    series: Sequence[tuple[int, float | None]],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """ASCII bar chart of a per-time-point series (the 'graphic insight').

    ``None`` values render as an empty bar with a dash, so gaps in the
    horizon stay visible.
    """
    values = [v for _, v in series if v is not None]
    top = max(values) if values else 1.0
    top = top if top > 0 else 1.0
    lines = [title] if title else []
    for t, value in series:
        if value is None:
            lines.append(f"  t={t} | {'':<{width}} -")
            continue
        filled = int(round(width * value / top))
        bar = "#" * filled
        lines.append(f"  t={t} | {bar:<{width}} " + value_format.format(value))
    return "\n".join(lines)


def insight_block(insight: Insight) -> str:
    """Render one insight with its question title (and, when the
    question was asked with ``plans=k``, the answering cell's diverse
    plan set with its selection metadata)."""
    bar = "-" * min(len(insight.title), 72)
    text = f"{insight.title}\n{bar}\n{insight.text}"
    if insight.alternatives:
        lines = [f"Alternative plans ({len(insight.alternatives)}):"]
        for alt in insight.alternatives:
            meta = f"rank {alt.rank}"
            if alt.quality is not None:
                meta += f", quality {alt.quality:.3f}"
            if alt.min_dist is not None:
                meta += f", min-dist {alt.min_dist:.3f}"
            lines.append(f"[{meta}] {alt.plan.describe()}")
        text += "\n" + "\n".join(lines)
    return text
