"""Command-line frontend: the demo's three screens as a terminal app.

Subcommands
-----------

``justintime demo``
    Scripted reenactment of §III: five denied applicants walk through
    Preferences → Queries → Insights with pre-set preferences.
``justintime interactive``
    The audience-participation mode: enter a profile and preferences,
    pick canned questions, read insights.  Reads from stdin so it is
    scriptable and testable.
``justintime quickstart``
    Minimal single-user run printing all six insights for John.
``justintime refresh``
    The incremental operator step: ingest new data against a saved
    system + candidate database and recompute only the stale cells.
``justintime refresh-daemon``
    The streaming operator: tail an append-only CSV feed and refresh on
    drift detection (MMD / label shift vs the training history) and/or
    on a fixed cadence, persisting the refit system after every epoch.
``justintime refresh-workers``
    The scale-out operator: refit on new data, then drain the stale
    (user × time-point) cells with N lease-coordinated worker
    *processes* sharing the candidate database.
``justintime refresh-orchestrator``
    The deployable continuous-refresh service: one process that tails
    the feed, opens drift/cadence-gated epochs, refits, and dispatches
    a worker pool per epoch — checkpointing (models, feed cursor, store
    digest) atomically so a killed orchestrator resumes without
    re-ingesting or double-computing.
``justintime rebalance``
    The storage operator: migrate a file-backed sharded candidate
    database to a new shard count, digest-invariant and crash-safe
    (an interrupted migration is healed on the next open).
``justintime query``
    Run canned questions against a stored candidate database from the
    shell — human-readable by default, ``--json`` for the canonical
    serialization shared with the HTTP serving tier.
``justintime serve``
    The serving tier: an async HTTP/JSON API over the candidate
    database with a fingerprint-validated rendered-insight cache and
    per-shard read-only replica connections.
``justintime orchestrator-status``
    Read-side HA observability: the current leader lease (holder,
    epoch, age), the leader's last published metrics snapshot and the
    budget/freshness state — the CLI twin of ``GET /v1/orchestrator``.

``refresh-orchestrator --standby`` turns the orchestrator into a
campaigner: it blocks until the store-backed leader lease is won (the
previous leader died or resigned), *then* loads the dead leader's last
checkpoint and continues the feed from its cursor.  Every checkpoint
and pool dispatch is fenced on the lease epoch, so a deposed leader's
late writes are rejected instead of silently merging.

All subcommands accept ``--n-per-year``, ``--strategy``, ``--horizon``
and ``--seed`` to control the backing system, plus ``--db`` /
``--db-backend`` to pick the candidate store.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time
import uuid
from pathlib import Path
from typing import IO

import numpy as np

from repro.constraints import lending_domain_constraints
from repro.core import (
    AdminConfig,
    DriftGate,
    JustInTime,
    RefreshOrchestrator,
    RefreshScheduler,
    UserSession,
    load_system,
    run_worker_pool,
    save_system,
)
from repro.core.insights import QUESTIONS
from repro.app.render import bar_chart, insight_block, profile_table, screen_header
from repro.data import (
    CsvFeed,
    LendingGenerator,
    TemporalDataset,
    john_profile,
    lending_schema,
    make_lending_dataset,
)
from repro.core.insights import InsightEngine
from repro.db.store import CandidateStore
from repro.exceptions import LeadershipLost, QueryError, StorageError
from repro.serve import InsightServer, bundle_payload, dumps, orchestrator_payload
from repro.temporal import lending_update_function

__all__ = [
    "build_system",
    "main",
    "run_admin",
    "run_demo",
    "run_interactive",
    "run_orchestrator_status",
    "run_query",
    "run_quickstart",
    "run_rebalance",
    "run_refresh",
    "run_refresh_daemon",
    "run_refresh_orchestrator",
    "run_refresh_workers",
    "run_serve",
]


def build_system(
    n_per_year: int = 150,
    strategy: str = "last",
    horizon: int = 4,
    seed: int = 0,
    k: int = 6,
    load: str | None = None,
    db: str | None = None,
    db_backend: str | None = None,
) -> JustInTime:
    """Construct (or load) a fitted lending JustInTime system.

    With ``load`` set, the pre-trained system saved by ``justintime
    admin --save`` is reconstructed instead of retraining — the paper's
    deployment split between the administrator and the users.
    """
    store_path = db or ":memory:"
    if load:
        return load_system(load, store_path=store_path, store_backend=db_backend)
    schema = lending_schema()
    config = AdminConfig(T=horizon, strategy=strategy, k=k, random_state=seed)
    system = JustInTime(
        schema,
        lending_update_function(schema),
        config,
        domain_constraints=lending_domain_constraints(schema),
        store_path=store_path,
        store_backend=db_backend,
    )
    system.fit(make_lending_dataset(n_per_year=n_per_year, random_state=seed))
    return system


def _print_insights(session: UserSession, out: IO[str], alpha: float, feature: str) -> None:
    out.write(screen_header("Plans and Insights") + "\n")
    for insight in session.all_insights(alpha=alpha, feature=feature):
        out.write(insight_block(insight) + "\n\n")
    out.write(
        bar_chart(
            session.engine.confidence_series(),
            title="best achievable confidence per time point:",
            value_format="{:.2f}",
        )
        + "\n"
    )
    out.write(
        bar_chart(
            session.engine.effort_series(),
            title="minimal required effort (diff) per time point:",
        )
        + "\n\n"
    )


def run_demo(args, out: IO[str] | None = None) -> int:
    """Five denied applicants, each with different preferences (§III)."""
    out = out if out is not None else sys.stdout
    system = build_system(args.n_per_year, args.strategy, args.horizon,
                          args.seed, load=args.load, db=args.db,
                          db_backend=args.db_backend)
    generator = LendingGenerator(random_state=args.seed + 13)
    profiles = generator.sample_rejected(system.time_values[0], n=5)
    preference_sets = [
        [],  # no preferences
        ["annual_income <= base_annual_income * 1.2"],
        ["monthly_debt >= base_monthly_debt"],  # cannot reduce debt
        ["gap <= 2"],
        ["loan_amount == base_loan_amount", "household == base_household"],
    ]
    for i, (profile, prefs) in enumerate(zip(profiles, preference_sets), start=1):
        user_id = f"applicant-{i}"
        out.write(screen_header(f"Denied application {i}/5 — {user_id}") + "\n")
        out.write(profile_table(system.schema, profile) + "\n")
        out.write(screen_header("Personal Preferences") + "\n")
        if prefs:
            for p in prefs:
                out.write(f"  constraint: {p}\n")
        else:
            out.write("  (no personal constraints)\n")
        session = system.create_session(user_id, profile, user_constraints=prefs)
        out.write(
            f"present score: {session.current_score():.3f}"
            f" (threshold {system.future_models[0].threshold:.2f})\n"
        )
        _print_insights(session, out, alpha=args.alpha, feature="monthly_debt")
    return 0


def run_quickstart(args, out: IO[str] | None = None) -> int:
    """John's running example end to end."""
    out = out if out is not None else sys.stdout
    system = build_system(args.n_per_year, args.strategy, args.horizon,
                          args.seed, load=args.load, db=args.db,
                          db_backend=args.db_backend)
    out.write(screen_header("JustInTime quickstart — John, 29") + "\n")
    out.write(profile_table(system.schema, system.schema.vector(john_profile())) + "\n")
    session = system.create_session(
        "john",
        john_profile(),
        user_constraints=["annual_income <= base_annual_income * 1.2"],
    )
    out.write(f"rejected now: {session.is_rejected_now()}\n")
    _print_insights(session, out, alpha=args.alpha, feature="monthly_debt")
    return 0


def run_interactive(
    args, out: IO[str] | None = None, stdin: IO[str] | None = None
) -> int:
    """Audience-participation mode; reads answers line by line from stdin.

    ``out``/``stdin`` resolve to the *current* sys streams at call time
    (not import time) so test harnesses and REPL redirections work.
    """
    out = out if out is not None else sys.stdout
    stdin = stdin if stdin is not None else sys.stdin
    system = build_system(args.n_per_year, args.strategy, args.horizon,
                          args.seed, load=args.load, db=args.db,
                          db_backend=args.db_backend)
    schema = system.schema

    def ask(prompt: str, default: str) -> str:
        out.write(f"{prompt} [{default}]: ")
        out.flush()
        line = stdin.readline()
        if not line:
            return default
        line = line.strip()
        return line or default

    out.write(screen_header("Personal Preferences") + "\n")
    defaults = john_profile()
    values = {}
    for spec in schema:
        raw = ask(f"{spec.name} ({spec.description})", str(defaults[spec.name]))
        try:
            values[spec.name] = float(raw)
        except ValueError:
            out.write(f"  not a number, using default {defaults[spec.name]}\n")
            values[spec.name] = float(defaults[spec.name])
    constraints: list[str] = []
    while True:
        text = ask("add a constraint (empty to finish)", "")
        if not text:
            break
        constraints.append(text)
    session = system.create_session("participant", values, user_constraints=constraints)
    out.write(screen_header("Queries") + "\n")
    for qid, title in QUESTIONS.items():
        out.write(f"  {qid}: {title}\n")
    picked = ask("question ids to run, comma-separated", "q1,q2,q4,q5")
    out.write(screen_header("Plans and Insights") + "\n")
    for qid in (q.strip() for q in picked.split(",")):
        if qid not in QUESTIONS:
            out.write(f"  unknown question {qid!r}, skipping\n")
            continue
        params = {}
        if qid == "q3":
            params["feature"] = ask("dominant feature to test", "monthly_debt")
        if qid == "q6":
            params["alpha"] = float(ask("confidence level alpha", str(args.alpha)))
        if qid == "q7":
            params["budget"] = float(ask("effort budget (scaled diff)", "1.0"))
        out.write(insight_block(session.ask(qid, **params)) + "\n\n")
    return 0


def _runtime_parents() -> dict[str, argparse.ArgumentParser]:
    """Shared argparse parents for the operator verbs.

    The refresh family (``refresh``, ``refresh-daemon``,
    ``refresh-workers``, ``refresh-orchestrator``) and ``serve`` used to
    re-declare the same runtime flags per subparser; each group now
    lands once here, so a new flag (``--budget``) appears on every verb
    that composes the parent.  ``--db``/``--db-backend`` deliberately
    stay root-level only: a subparser copy would clobber the root's
    parsed value with its default.
    """
    warm = argparse.ArgumentParser(add_help=False)
    warm.add_argument(
        "--cold",
        action="store_true",
        help="disable warm-start (bit-identical to a cold recompute)",
    )
    engine = argparse.ArgumentParser(add_help=False)
    engine.add_argument(
        "--engine",
        default=None,
        choices=["batch", "scalar", "fused"],
        help="candidate-search engine for the refresh; 'fused' recomputes"
        " the stale cells in one cross-cell vectorized pass"
        " (byte-identical candidates either way)",
    )
    worker = argparse.ArgumentParser(add_help=False)
    worker.add_argument(
        "--workers", type=int, default=2, help="worker process count"
    )
    worker.add_argument(
        "--claim-batch",
        type=int,
        default=2,
        help="stale cells a worker leases per claim",
    )
    worker.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="lease duration; expired leases are reclaimable",
    )
    worker.add_argument(
        "--shard-affinity",
        action="store_true",
        help="pin worker i to shard i %% n_shards so each worker's"
        " upserts commit on its own shard file (sharded stores)",
    )
    stream = argparse.ArgumentParser(add_help=False)
    stream.add_argument(
        "--feed", required=True, help="append-only CSV file to tail"
    )
    stream.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        help="seconds to sleep between idle polls",
    )
    stream.add_argument(
        "--cadence",
        type=float,
        default=None,
        help="refresh every this many seconds when rows are pending",
    )
    stream.add_argument(
        "--drift-mmd",
        type=float,
        default=None,
        help="refresh when pending-batch MMD vs the recent history"
        " exceeds this",
    )
    stream.add_argument(
        "--drift-label-shift",
        type=float,
        default=None,
        help="refresh when the pending positive-rate shift exceeds this",
    )
    stream.add_argument(
        "--min-batch",
        type=int,
        default=1,
        help="buffer at least this many rows before any refresh",
    )
    stream.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="force a refresh when this many rows are buffered",
    )
    stream.add_argument(
        "--max-polls",
        type=int,
        default=None,
        help="stop after this many polls (default: run forever)",
    )
    stream.add_argument(
        "--max-epochs",
        type=int,
        default=None,
        help="stop after this many refresh epochs",
    )
    budget = argparse.ArgumentParser(add_help=False)
    budget.add_argument(
        "--budget",
        type=int,
        default=None,
        help="compute budget: recompute at most this many stale cells per"
        " refresh/epoch, highest-priority users first (unspent budget"
        " carries over between epochs; default: unlimited)",
    )
    return {
        "warm": warm,
        "engine": engine,
        "worker": worker,
        "stream": stream,
        "budget": budget,
    }


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="justintime",
        description="JustInTime: personal temporal insights for altering"
        " model decisions (ICDE 2019 reproduction)",
    )
    parser.add_argument("--n-per-year", type=int, default=150)
    parser.add_argument(
        "--strategy",
        default="last",
        choices=["last", "full", "reweight", "weights", "edd"],
    )
    parser.add_argument("--horizon", type=int, default=4, help="T, future points")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--alpha", type=float, default=0.55)
    parser.add_argument(
        "--load",
        default=None,
        help="load a pre-trained system saved by 'admin --save' instead of"
        " retraining",
    )
    parser.add_argument(
        "--db",
        default=None,
        help="candidate database file (default: in-memory)",
    )
    parser.add_argument(
        "--db-backend",
        default=None,
        choices=["sqlite", "memory", "sharded"],
        help="candidate store backend (default: inferred from --db)",
    )
    parents = _runtime_parents()
    warm, engine = parents["warm"], parents["engine"]
    worker, stream, budget = (
        parents["worker"], parents["stream"], parents["budget"]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="five denied applicants, scripted (§III)")
    sub.add_parser("quickstart", help="John's running example")
    sub.add_parser("interactive", help="enter your own profile")
    admin = sub.add_parser(
        "admin", help="train the future models once and save the system"
    )
    admin.add_argument("--save", required=True, help="output path (.pkl)")
    refresh = sub.add_parser(
        "refresh",
        help="re-forecast on new data and recompute only the stale"
        " (user × time-point) cells of the stored sessions",
        parents=[warm, engine, budget],
    )
    refresh.add_argument(
        "--new-n", type=int, default=120, help="new samples to ingest"
    )
    refresh.add_argument(
        "--at",
        type=float,
        default=None,
        help="timestamp of the new samples (default: latest history year)",
    )
    sub.add_parser(
        "refresh-daemon",
        help="stream an append-only CSV feed; refresh on drift detection"
        " and/or a fixed cadence",
        parents=[stream, warm, budget],
    )
    workers = sub.add_parser(
        "refresh-workers",
        help="refit on new data, then drain the stale cells with N"
        " lease-coordinated worker processes",
        parents=[worker, warm, engine, budget],
    )
    workers.add_argument(
        "--new-n",
        type=int,
        default=120,
        help="new samples to ingest before draining (0: only drain"
        " already-stale cells)",
    )
    workers.add_argument(
        "--at",
        type=float,
        default=None,
        help="timestamp of the new samples (default: latest history year)",
    )
    rebalance = sub.add_parser(
        "rebalance",
        help="migrate a sharded candidate database to a new shard count"
        " (digest-invariant, crash-safe)",
    )
    rebalance.add_argument(
        "--to-shards",
        type=int,
        required=True,
        help="target shard count (1-8)",
    )
    orchestrator = sub.add_parser(
        "refresh-orchestrator",
        help="the unified continuous-refresh service: tail a feed, refit"
        " on drift/cadence epochs, drain each epoch with a worker pool,"
        " checkpoint atomically for kill-safe resume",
        parents=[stream, worker, warm, engine, budget],
    )
    orchestrator.add_argument(
        "--gate-mode",
        default="merged",
        choices=["merged", "batch", "ewma"],
        help="what the drift gate assesses: the merged pending buffer"
        " (default), each polled batch (sticky verdict), or an"
        " exponentially-weighted pending window",
    )
    orchestrator.add_argument(
        "--ewma-halflife",
        type=float,
        default=2.0,
        help="half-life, in batches, of the ewma gate-mode weights"
        " (a row's weight halves every this many later arrivals)",
    )
    orchestrator.add_argument(
        "--sla-epochs",
        type=int,
        default=None,
        help="staleness SLA: a cell stale for this many completed epochs"
        " escalates to the front of the budgeted drain regardless of"
        " its user's priority score",
    )
    orchestrator.add_argument(
        "--priority-halflife",
        type=float,
        default=3600.0,
        help="decay half-life (seconds) of the per-user activity scores"
        " folded from the serving tier's access_log",
    )
    orchestrator.add_argument(
        "--standby",
        action="store_true",
        help="campaign for the store-backed leader lease before loading"
        " the system; block until leadership is won (HA hot standby),"
        " then resume from the previous leader's last checkpoint",
    )
    orchestrator.add_argument(
        "--leader-ttl",
        type=float,
        default=30.0,
        help="leader lease time-to-live in seconds; a leader silent for"
        " this long is considered dead and its seat can be taken over",
    )
    orchestrator.add_argument(
        "--node-id",
        default=None,
        help="stable identity of this orchestrator in the leader lease"
        " (default: a generated orch-<pid>-<rand> id)",
    )
    status = sub.add_parser(
        "orchestrator-status",
        help="show the leader lease, the leader's last metrics snapshot"
        " and the budget/freshness state of a candidate database",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical JSON payload of GET /v1/orchestrator",
    )
    query = sub.add_parser(
        "query",
        help="answer canned questions for one user from a stored"
        " candidate database",
    )
    query.add_argument("--user", required=True, help="user id to query")
    query.add_argument(
        "--questions",
        default="q1,q2,q3,q4,q5,q6",
        help="comma-separated question ids (q1..q7)",
    )
    query.add_argument(
        "--feature",
        default=None,
        help="feature for Q3 (default: the first mutable feature)",
    )
    query.add_argument(
        "--budget",
        type=float,
        default=1.0,
        help="effort budget for Q7 (scaled diff)",
    )
    query.add_argument(
        "--plans",
        type=int,
        default=1,
        metavar="K",
        help="attach each answer's stored diverse plan set (up to K"
        " alternative plans with quality/min-distance metadata); the"
        " default 1 keeps the classic single-plan answers byte-identical",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical JSON bundle (the serving tier's wire"
        " format) instead of verbal insights",
    )
    query.add_argument(
        "--freshness",
        action="store_true",
        help="add meta.freshness (seconds since the oldest backing cell"
        " was recomputed) to the --json bundle; off by default so the"
        " output stays byte-identical to the plain wire format",
    )
    serve = sub.add_parser(
        "serve",
        help="HTTP/JSON insight API over a stored candidate database"
        " (fingerprint-validated cache + per-shard read replicas)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8123, help="0 picks a free port"
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="max resident rendered-insight cache entries",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=4,
        help="read-only replica connections per shard",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="render every request from SQL (baseline mode)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="stop after serving this many requests (default: run forever)",
    )
    serve.add_argument(
        "--no-access-log",
        action="store_true",
        help="do not record served requests into the store's access_log"
        " (disables the refresh-priority feedback path)",
    )
    return parser


def run_admin(args, out: IO[str] | None = None) -> int:
    """The administrator's offline step: fit once, persist to disk."""
    out = out if out is not None else sys.stdout
    system = build_system(
        args.n_per_year, args.strategy, args.horizon, args.seed, db=args.db,
        db_backend=args.db_backend,
    )
    save_system(system, args.save)
    out.write(
        f"trained {len(system.future_models)} future models"
        f" (strategy={args.strategy}, T={args.horizon}) -> {args.save}\n"
    )
    return 0


def run_refresh(args, out: IO[str] | None = None) -> int:
    """The operator's incremental step: ingest new data, refresh sessions.

    Loads the saved system (``--load``) with its candidate database
    (``--db``), rehydrates the persisted sessions, samples ``--new-n``
    fresh labeled applications from the lending generator at ``--at``,
    and refreshes: models are refit, per-time-point fingerprints diffed,
    and only stale (user × time-point) cells recomputed and upserted.
    """
    out = out if out is not None else sys.stdout
    system = _load_refreshable_system(args, out, "refresh")
    if system is None:
        return 2
    resumed = system.resume_sessions()
    saved_engine = getattr(system.config, "engine", "batch")
    if getattr(args, "engine", None):
        system.config.engine = args.engine
    new_data, at = _sample_new_arrivals(system, args)
    report = system.refresh(
        new_data, warm_start=not args.cold, budget=args.budget
    )
    # the --engine override is per-run: restore the admin-chosen engine
    # before persisting (candidates are byte-identical either way)
    system.config.engine = saved_engine
    # persist the refit models + merged history: the next refresh must
    # start from this state, and stored model_fp stamps must keep
    # matching a system that exists on disk
    save_system(system, args.load)
    out.write(screen_header("Session refresh") + "\n")
    out.write(
        f"ingested {args.new_n} new samples at t={at:.2f};"
        f" resumed {len(resumed)} stored sessions\n"
    )
    out.write(
        f"stale time points: {list(report.stale_times)}"
        f" (unchanged: {list(report.fresh_times)})\n"
    )
    out.write(
        f"recomputed {report.cells_recomputed} (user x time-point) cells,"
        f" wrote {report.candidates_written} candidate rows"
        f" (warm_start={report.warm_start})\n"
    )
    if report.deferred_cells:
        out.write(
            f"budget={args.budget}: {report.deferred_cells} stale cells"
            " deferred to a later refresh (lowest-priority users first)\n"
        )
    if report.skipped_stale_cells:
        out.write(
            f"WARNING: {report.skipped_stale_cells} stored cells are stale"
            " but belong to users without a resumable session (opaque"
            " constraints); their candidates remain outdated\n"
        )
    out.write(f"saved refreshed system -> {args.load}\n")
    return 0


def _sample_new_arrivals(system, args):
    """Deterministic "new arrivals" batch for the operator verbs.

    Seeded off the persisted history size so consecutive ingests draw
    distinct samples, and shared by ``refresh`` and ``refresh-workers``
    so both verbs draw the *same* stream from the same saved state —
    the digest-equality comparison between them depends on it.  Returns
    ``(new_data, at)``.
    """
    generator = LendingGenerator(
        random_state=args.seed + 31 + len(system.history)
    )
    at = args.at if args.at is not None else system.history.span[1]
    X = generator.sample_profiles(args.new_n)
    years = np.full(args.new_n, float(at))
    return (
        TemporalDataset(X, generator.label(X, years), years, system.schema),
        at,
    )


def _format_drift(decision) -> str:
    """Epoch-log suffix describing the gate verdict, '' if unassessed
    (shared by the daemon's and the orchestrator's epoch reporting)."""
    if decision is None or not decision.assessed:
        return ""
    parts = []
    if decision.mmd is not None:
        parts.append(f"mmd={decision.mmd:.4f}")
    if decision.label_shift is not None:
        parts.append(f"label-shift={decision.label_shift:.3f}")
    return f" ({', '.join(parts)})"


def _feed_start_offset(system, feed_path) -> int:
    """The checkpointed feed cursor, but only if it belongs to this feed.

    The saved byte offset is meaningless against a different file — and
    dangerous: resuming a larger new feed at the old offset would
    silently skip its head.  A checkpoint that recorded no path (pre-PR4
    saves) is trusted as before.
    """
    saved_path = system.saved_extra.get("feed_path")
    if saved_path and Path(saved_path).resolve() != Path(feed_path).resolve():
        return 0
    return int(system.saved_extra.get("feed_offset", 0))


def _load_refreshable_system(args, out: IO[str], verb: str):
    """Shared ``--load``/``--db`` validation for the operator verbs;
    returns the loaded system or ``None`` (after printing why)."""
    if not args.load or not args.db:
        out.write(
            f"{verb} needs --load (saved system) and --db (candidate"
            " database); run 'admin --save' and a session-creating"
            " command against the same --db first\n"
        )
        return None
    system = build_system(load=args.load, db=args.db, db_backend=args.db_backend)
    if system.history is None:
        out.write(
            "the saved system carries no training history (pre-refresh"
            " save format); re-save it with 'admin --save'\n"
        )
        return None
    return system


def run_refresh_daemon(args, out: IO[str] | None = None) -> int:
    """The streaming operator: tail a CSV feed, refresh on drift/cadence.

    Rows appended to ``--feed`` are buffered; a refresh epoch opens when
    the drift gate fires (``--drift-mmd`` / ``--drift-label-shift``
    thresholds vs the training history) or ``--cadence`` seconds have
    elapsed with rows pending.  After every epoch the refit system is
    saved back to ``--load`` so stored ``model_fp`` stamps keep matching
    a system that exists on disk (and so worker pools can pick up any
    remaining stale cells).  The feed's byte offset is checkpointed
    **inside the same save** (``save_system(..., extra=...)``, one
    atomic temp-and-rename write) — a restarted daemon resumes *after*
    the rows already merged into the saved history; two separate files
    could disagree after a crash and double- or under-ingest the feed.
    """
    out = out if out is not None else sys.stdout
    system = _load_refreshable_system(args, out, "refresh-daemon")
    if system is None:
        return 2
    if (
        args.cadence is None
        and args.drift_mmd is None
        and args.drift_label_shift is None
    ):
        out.write(
            "refresh-daemon needs --cadence and/or a drift threshold"
            " (--drift-mmd / --drift-label-shift)\n"
        )
        return 2
    resumed = system.resume_sessions()
    gate = None
    if args.drift_mmd is not None or args.drift_label_shift is not None:
        gate = DriftGate(args.drift_mmd, args.drift_label_shift)
    # the feed cursor rides inside the saved system file — the daemon's
    # durable state (models+history, feed offset) is one atomic write
    start_offset = _feed_start_offset(system, args.feed)
    feed = CsvFeed(args.feed, system.schema, start_offset=start_offset)
    scheduler = RefreshScheduler(
        system,
        feed,
        gate=gate,
        cadence=args.cadence,
        min_batch=args.min_batch,
        max_pending_rows=args.max_pending,
        warm_start=False if args.cold else None,
        budget=args.budget,
    )
    out.write(screen_header("Streaming refresh daemon") + "\n")
    out.write(
        f"tailing {args.feed} from byte {start_offset};"
        f" resumed {len(resumed)} stored sessions;"
        f" gates: drift={'on' if gate else 'off'},"
        f" cadence={args.cadence}\n"
    )

    def on_epoch(epoch):
        # at epoch time every polled row has been merged, so the feed
        # offset is safe to persist alongside the refit history (the
        # path binds the cursor to this feed file); merge into the
        # existing extra so other verbs' state survives
        extra = dict(system.saved_extra)
        extra["feed_offset"] = feed.offset
        extra["feed_path"] = str(Path(args.feed).resolve())
        system.saved_extra = extra
        save_system(system, args.load, extra=extra)
        report = epoch.report
        out.write(
            f"epoch {epoch.index}: trigger={epoch.trigger}"
            f"{_format_drift(epoch.drift)}"
            f" rows={epoch.rows} stale={list(report.stale_times)}"
            f" cells={report.cells_recomputed}"
            f" candidates={report.candidates_written}\n"
        )
        out.flush()

    epochs = scheduler.run(
        max_polls=args.max_polls,
        max_epochs=args.max_epochs,
        poll_interval=args.poll_interval,
        on_epoch=on_epoch,
    )
    out.write(
        f"daemon stopped after {len(epochs)} epochs;"
        f" {scheduler.pending_rows} rows still pending\n"
    )
    return 0


def run_refresh_workers(args, out: IO[str] | None = None) -> int:
    """The scale-out operator: refit, then drain stale cells with a pool.

    Ingests ``--new-n`` fresh samples (like ``refresh``), refits the
    models *without* recomputing any cells, saves the system, and spawns
    ``--workers`` processes that drain the store's staleness ledger
    under claim/renew/release leases.  Prints the store content digest
    at the end — identical digests across replicas (or vs a
    single-process ``refresh``) mean byte-identical candidates.
    """
    out = out if out is not None else sys.stdout
    system = _load_refreshable_system(args, out, "refresh-workers")
    if system is None:
        return 2
    if args.new_n:
        new_data, at = _sample_new_arrivals(system, args)
        stale = system.refit(new_data)
        out.write(
            f"ingested {args.new_n} new samples at t={at:.2f};"
            f" model-stale time points: {list(stale)}\n"
        )
    save_system(system, args.load)
    n_stale = len(system.store.stale_cells(system.model_fingerprints))
    # a durable budget row caps how many cells the whole pool may drain
    # (claims decrement it transactionally, so workers never overspend
    # it jointly); no --budget resets any stale row to unlimited
    system.store.set_refresh_budget(args.budget)
    schema = system.schema
    system.store.close()
    budget_txt = f" (budget: {args.budget} cells)" if args.budget else ""
    out.write(
        f"draining {n_stale} stale cells with {args.workers} worker"
        f" processes{budget_txt}\n"
    )
    report = run_worker_pool(
        args.load,
        args.db,
        n_workers=args.workers,
        db_backend=args.db_backend,
        warm_start=False if args.cold else None,
        claim_batch=args.claim_batch,
        lease_seconds=args.lease_seconds,
        shard_affinity=args.shard_affinity,
        engine=getattr(args, "engine", None),
    )
    per_worker = ", ".join(
        f"{w.worker_id}: {len(w.cells)}" for w in report.workers
    )
    out.write(
        f"recomputed {report.cells_recomputed} cells"
        f" ({report.candidates_written} candidate rows) [{per_worker}]\n"
    )
    if report.skipped_cells:
        out.write(
            f"WARNING: {len(report.skipped_cells)} stale cells have no"
            " resumable session spec; their candidates remain outdated\n"
        )
    with CandidateStore(schema, args.db, backend=args.db_backend) as store:
        out.write(f"store digest: {store.contents_digest()}\n")
    return 0


def run_refresh_orchestrator(args, out: IO[str] | None = None) -> int:
    """The unified service: drift → refit → pool dispatch, kill-safe.

    Combines ``refresh-daemon`` and ``refresh-workers`` into the one
    deployable loop: rows appended to ``--feed`` are buffered, an epoch
    opens on drift/cadence/pending-cap, the models are refit (marking
    stored cells stale in the ledger), and ``--workers`` lease-
    coordinated processes drain the ledger.  The models, merged history
    and feed cursor are checkpointed in **one atomic write** before the
    drain and again (with the store digest) after it, so a killed
    orchestrator restarts exactly where it died: no row is re-ingested,
    no finished cell recomputed.  Live sessions are never materialised
    here — workers recompute from the persisted session specs.

    With ``--standby`` the process first campaigns for the store-backed
    leader lease on a bare store handle — *before* loading the system —
    so that when it finally wins (the active leader died or resigned)
    it loads the dead leader's latest checkpoint, not a stale snapshot
    from its own start time.  Checkpoints and pool dispatches are then
    fenced on the lease epoch; losing the lease exits with status 1.
    """
    out = out if out is not None else sys.stdout
    standby = getattr(args, "standby", False)
    node_id = getattr(args, "node_id", None) or (
        f"orch-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    )
    leader_ttl = getattr(args, "leader_ttl", 30.0)
    if standby:
        if not args.db:
            out.write("--standby needs --db (the lease lives in the store)\n")
            return 2
        out.write(
            f"standby {node_id}: campaigning for the leader lease"
            f" (ttl={leader_ttl:g}s)\n"
        )
        out.flush()
        interval = max(leader_ttl / 4.0, 0.05)
        with CandidateStore(
            lending_schema(), args.db, backend=args.db_backend
        ) as seat:
            while True:
                epoch = seat.acquire_leader_lease(
                    node_id, ttl_seconds=leader_ttl
                )
                if epoch is not None:
                    out.write(
                        f"standby {node_id}: won the lease (epoch {epoch});"
                        " loading the last checkpoint\n"
                    )
                    out.flush()
                    break
                time.sleep(interval)
    system = _load_refreshable_system(args, out, "refresh-orchestrator")
    if system is None:
        return 2
    if (
        args.cadence is None
        and args.drift_mmd is None
        and args.drift_label_shift is None
    ):
        out.write(
            "refresh-orchestrator needs --cadence and/or a drift threshold"
            " (--drift-mmd / --drift-label-shift)\n"
        )
        return 2
    gate = None
    if args.drift_mmd is not None or args.drift_label_shift is not None:
        gate = DriftGate(args.drift_mmd, args.drift_label_shift)
    if args.gate_mode != "merged" and gate is None:
        out.write(
            f"--gate-mode {args.gate_mode} needs a drift threshold"
            " (--drift-mmd / --drift-label-shift)\n"
        )
        return 2
    start_offset = _feed_start_offset(system, args.feed)
    feed = CsvFeed(args.feed, system.schema, start_offset=start_offset)
    orchestrator = RefreshOrchestrator(
        system,
        feed,
        system_path=args.load,
        db_path=args.db,
        db_backend=args.db_backend,
        n_workers=args.workers,
        gate=gate,
        cadence=args.cadence,
        min_batch=args.min_batch,
        max_pending_rows=args.max_pending,
        gate_mode=args.gate_mode,
        ewma_halflife=args.ewma_halflife,
        warm_start=False if args.cold else None,
        claim_batch=args.claim_batch,
        lease_seconds=args.lease_seconds,
        shard_affinity=args.shard_affinity,
        engine=getattr(args, "engine", None),
        budget=args.budget,
        sla_epochs=args.sla_epochs,
        priority_halflife=args.priority_halflife,
        ha=standby,
        node_id=node_id,
        leader_ttl=leader_ttl,
    )
    out.write(screen_header("Refresh orchestrator") + "\n")
    out.write(
        f"tailing {args.feed} from byte {start_offset};"
        f" gates: drift={'on' if gate else 'off'}"
        f" (mode={args.gate_mode}), cadence={args.cadence};"
        f" pool: {args.workers} workers;"
        f" budget={args.budget or 'unlimited'} cells/epoch,"
        f" sla={args.sla_epochs or 'off'}\n"
    )
    if standby:
        # instant renew-in-place: the seat was already won on the bare
        # handle above, under the same node_id
        orchestrator.campaign()
    recovered = orchestrator.recover()
    if recovered is not None:
        out.write(
            f"recovered an interrupted drain: {recovered.cells_recomputed}"
            f" cells ({recovered.candidates_written} candidate rows)\n"
        )

    def on_epoch(epoch):
        outcome = epoch.report
        digest_txt = (
            f" digest={outcome.store_digest[:16]}…"
            if outcome.store_digest
            else ""
        )
        fresh = getattr(outcome, "freshness", None)
        fresh_txt = ""
        if fresh:
            tiers = fresh.get("drained_by_tier", {})
            tier_txt = "/".join(
                str(tiers.get(t, 0)) for t in ("hot", "warm", "cold")
            )
            weighted = (fresh.get("traffic_weighted") or {}).get(
                "weighted_fresh_fraction"
            )
            fresh_txt = (
                f" drained(hot/warm/cold)={tier_txt}"
                f" sla-violations={fresh.get('sla_violations', 0)}"
            )
            if weighted is not None:
                fresh_txt += f" weighted-freshness={weighted:.3f}"
        out.write(
            f"epoch {epoch.index}: trigger={epoch.trigger}"
            f"{_format_drift(epoch.drift)}"
            f" rows={outcome.rows}"
            f" model-stale={list(outcome.stale_times)}"
            f" cells={outcome.cells_recomputed}"
            f" candidates={outcome.candidates_written}"
            f"{fresh_txt}{digest_txt}\n"
        )
        out.flush()

    try:
        epochs = orchestrator.run(
            max_polls=args.max_polls,
            max_epochs=args.max_epochs,
            poll_interval=args.poll_interval,
            on_epoch=on_epoch,
        )
    except LeadershipLost as exc:
        out.write(
            f"leadership lost: {exc}\n"
            "another orchestrator took over the lease; this one's"
            " in-flight checkpoint was fenced (not merged).  exiting.\n"
        )
        system.store.close()
        return 1
    if standby:
        orchestrator.resign()
    out.write(
        f"orchestrator stopped after {len(epochs)} epochs"
        f" ({orchestrator.epochs_completed} completed over the system's"
        f" lifetime); {orchestrator.pending_rows} rows still pending\n"
    )
    out.write(f"store digest: {system.store.contents_digest()}\n")
    system.store.close()
    return 0


def run_orchestrator_status(args, out: IO[str] | None = None) -> int:
    """HA observability from the shell: who leads, and how it is doing.

    Reads the leader lease, the leader's last published metrics
    snapshot, the refresh budget and the freshness report straight from
    the candidate database — the same payload ``serve`` exposes at
    ``GET /v1/orchestrator``, so scripted probes can use either.
    """
    out = out if out is not None else sys.stdout
    opened = _open_read_side(args, out, "orchestrator-status")
    if opened is None:
        return 2
    store, _, owner = opened
    try:
        payload = orchestrator_payload(store)
    finally:
        owner.close()
    if getattr(args, "json", False):
        out.write(dumps(payload) + "\n")
        return 0
    out.write(screen_header("Orchestrator status") + "\n")
    leader = payload["leader"]
    if leader is None:
        out.write("leader: none (no orchestrator has ever campaigned)\n")
    else:
        state = "EXPIRED" if leader["expired"] else "live"
        out.write(
            f"leader: {leader['leader_id']} (epoch {leader['epoch']},"
            f" {state}; lease renewed {leader['lease_age']:.1f}s ago)\n"
        )
    metrics = payload["metrics"]
    if metrics is None:
        out.write("metrics: none published yet\n")
    else:
        out.write(
            f"metrics ({metrics.get('phase', '?')},"
            f" node {metrics.get('node_id', '?')}):"
            f" epochs={metrics.get('epochs_completed', 0)}"
            f" cells={metrics.get('cells_drained', 0)}"
            f" candidates={metrics.get('candidates_written', 0)}"
            f" pending-rows={metrics.get('pending_rows', 0)}"
            f" takeovers={metrics.get('lease_takeovers', 0)}"
            f" lost-leases={metrics.get('lost_leases', 0)}\n"
        )
        drift = metrics.get("drift") or []
        if drift:
            last = drift[-1]
            out.write(
                f"last epoch: trigger={last.get('trigger')}"
                f" rows={last.get('rows')} mmd={last.get('mmd')}"
                f" label-shift={last.get('label_shift')}\n"
            )
    budget = payload["budget_remaining"]
    out.write(
        f"budget remaining: "
        f"{'unlimited' if budget is None else budget}\n"
    )
    freshness = payload["freshness"]
    if freshness:
        out.write(
            f"freshness: {freshness.get('users', 0)} users,"
            f" max-age={freshness.get('max_age', 0.0):.1f}s"
            f" mean-age={freshness.get('mean_age', 0.0):.1f}s\n"
        )
    return 0


def run_rebalance(args, out: IO[str] | None = None) -> int:
    """The storage operator: migrate the store to a new shard count.

    Opens the candidate database at ``--db`` (the backend and current
    shard count are inferred from the files on disk), migrates every
    user to ``crc32(user_id) % --to-shards``, and proves digest
    invariance before reporting: the store's canonical content hash
    must be byte-identical across the migration.  Interrupted
    migrations are healed automatically on the next open (build phase:
    rolled back; swap phase: rolled forward).
    """
    out = out if out is not None else sys.stdout
    if not args.db:
        out.write(
            "rebalance needs --db (candidate database); in-memory stores"
            " have nothing to migrate\n"
        )
        return 2
    out.write(screen_header("Shard rebalance") + "\n")
    try:
        with CandidateStore(
            lending_schema(), args.db, backend=args.db_backend
        ) as store:
            before = store.contents_digest()
            old_n = getattr(store.backend, "n_shards", 1)
            outcome = store.rebalance(args.to_shards)
            after = store.contents_digest()
    except StorageError as exc:
        out.write(f"rebalance failed: {exc}\n")
        return 2
    if before != after:  # pragma: no cover - the invariant the suite pins
        out.write("ERROR: store digest changed across the migration\n")
        return 1
    out.write(
        f"migrated {args.db}: {old_n} -> {outcome['n_shards']} shards,"
        f" {outcome['moved_users']} users rehomed\n"
    )
    out.write(f"store digest (unchanged): {before}\n")
    return 0


def _open_read_side(args, out: IO[str], verb: str):
    """``(store, time_values, owner)`` for the read-side verbs.

    With ``--load`` the saved system supplies its store and calendar
    time values; with ``--db`` alone the database is opened directly
    under the lending schema (time points render as their indices).
    ``owner`` is the object to close when done.
    """
    if not args.db and not args.load:
        out.write(
            f"{verb} needs --db (candidate database) and/or --load"
            " (saved system)\n"
        )
        return None
    if args.load:
        system = build_system(
            load=args.load, db=args.db, db_backend=args.db_backend
        )
        return system.store, system.time_values, system.store
    store = CandidateStore(lending_schema(), args.db, backend=args.db_backend)
    return store, [], store


def _default_q3_feature(schema) -> str:
    mutable = schema.mutable_indices()
    return schema.names[int(mutable[0])] if mutable.size else schema.names[0]


def run_query(args, out: IO[str] | None = None) -> int:
    """Shell access to the canned questions over a stored database.

    ``--json`` emits the canonical bundle serialization — byte-identical
    to what ``serve`` returns for the same user and parameters, because
    both go through :mod:`repro.serve.protocol`.
    """
    out = out if out is not None else sys.stdout
    opened = _open_read_side(args, out, "query")
    if opened is None:
        return 2
    store, time_values, owner = opened
    try:
        qids = [q.strip() for q in args.questions.split(",") if q.strip()]
        unknown = [q for q in qids if q not in QUESTIONS]
        if unknown:
            out.write(
                f"unknown question(s) {unknown}; available:"
                f" {sorted(QUESTIONS)}\n"
            )
            return 2
        ledger = store.cell_fingerprints(args.user)
        if not ledger:
            out.write(f"unknown user {args.user!r} (no stored cells)\n")
            return 2
        feature = args.feature or _default_q3_feature(store.schema)
        plans = getattr(args, "plans", 1)
        if plans < 1:
            out.write("--plans must be >= 1\n")
            return 2
        engine = InsightEngine(store, args.user, time_values)
        params = {
            "q3": {"feature": feature},
            "q6": {"alpha": args.alpha},
            "q7": {"budget": args.budget},
        }
        try:
            insights = {
                qid: engine.ask(qid, plans=plans, **params.get(qid, {}))
                for qid in qids
            }
        except QueryError as exc:
            out.write(f"query failed: {exc}\n")
            return 2
        if args.json:
            freshness = None
            if getattr(args, "freshness", False):
                freshness = _bundle_freshness_seconds(store, args.user)
            out.write(
                dumps(
                    bundle_payload(
                        args.user, insights, ledger, freshness=freshness
                    )
                )
                + "\n"
            )
        else:
            out.write(screen_header(f"Plans and Insights — {args.user}") + "\n")
            for insight in insights.values():
                out.write(insight_block(insight) + "\n\n")
        return 0
    finally:
        owner.close()


def _bundle_freshness_seconds(store, user_id: str) -> float | None:
    """Seconds since the oldest ``refreshed_at`` stamp backing the
    user's cells, or ``None`` when no cell carries a stamp yet (rows
    predating the priority subsystem, or never refreshed).

    The age is computed in one query against the *store's* clock — the
    same clock that wrote the stamps — so a CLI host whose wall clock
    is skewed from the database host cannot report negative or inflated
    ages."""
    from repro.db.prepared import prepared_for

    prepared = prepared_for(store.placeholder, store.schema.names)
    return prepared.oldest_age(store.read, user_id, store.backend.clock_sql())


def run_serve(args, out: IO[str] | None = None) -> int:
    """The serving tier: async HTTP/JSON API over the candidate store.

    Serves ``/insights`` (the rendered per-user bundle), ``/q/<qid>``,
    ``/healthz`` and ``/stats``; responses are cached per fingerprint
    vector and read through per-shard read-only replicas.  Runs until
    interrupted (or ``--max-requests``, for scripted runs).
    """
    out = out if out is not None else sys.stdout
    opened = _open_read_side(args, out, "serve")
    if opened is None:
        return 2
    store, time_values, owner = opened
    server = InsightServer(
        store,
        time_values,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        cache_enabled=not args.no_cache,
        replicas_per_schema=args.replicas,
        access_log=not args.no_access_log,
    )

    async def _serve() -> None:
        await server.start()
        out.write(
            f"serving insights on http://{server.host}:{server.port}"
            f" (cache={'off' if args.no_cache else args.cache_size},"
            f" replicas/shard={args.replicas})\n"
        )
        out.flush()
        try:
            if args.max_requests is None:
                await asyncio.Event().wait()
            else:
                while server.requests_served < args.max_requests:
                    await asyncio.sleep(0.02)
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        out.write("interrupted\n")
    finally:
        owner.close()
    out.write(f"served {server.requests_served} requests\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    handlers = {
        "demo": run_demo,
        "quickstart": run_quickstart,
        "interactive": run_interactive,
        "admin": run_admin,
        "refresh": run_refresh,
        "refresh-daemon": run_refresh_daemon,
        "refresh-workers": run_refresh_workers,
        "refresh-orchestrator": run_refresh_orchestrator,
        "orchestrator-status": run_orchestrator_status,
        "rebalance": run_rebalance,
        "query": run_query,
        "serve": run_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
