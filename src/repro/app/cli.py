"""Command-line frontend: the demo's three screens as a terminal app.

Subcommands
-----------

``justintime demo``
    Scripted reenactment of §III: five denied applicants walk through
    Preferences → Queries → Insights with pre-set preferences.
``justintime interactive``
    The audience-participation mode: enter a profile and preferences,
    pick canned questions, read insights.  Reads from stdin so it is
    scriptable and testable.
``justintime quickstart``
    Minimal single-user run printing all six insights for John.
``justintime refresh``
    The incremental operator step: ingest new data against a saved
    system + candidate database and recompute only the stale cells.

All subcommands accept ``--n-per-year``, ``--strategy``, ``--horizon``
and ``--seed`` to control the backing system, plus ``--db`` /
``--db-backend`` to pick the candidate store.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

import numpy as np

from repro.constraints import lending_domain_constraints
from repro.core import AdminConfig, JustInTime, UserSession, load_system, save_system
from repro.core.insights import QUESTIONS
from repro.app.render import bar_chart, insight_block, profile_table, screen_header
from repro.data import (
    LendingGenerator,
    TemporalDataset,
    john_profile,
    lending_schema,
    make_lending_dataset,
)
from repro.temporal import lending_update_function

__all__ = [
    "build_system",
    "main",
    "run_admin",
    "run_demo",
    "run_interactive",
    "run_quickstart",
    "run_refresh",
]


def build_system(
    n_per_year: int = 150,
    strategy: str = "last",
    horizon: int = 4,
    seed: int = 0,
    k: int = 6,
    load: str | None = None,
    db: str | None = None,
    db_backend: str | None = None,
) -> JustInTime:
    """Construct (or load) a fitted lending JustInTime system.

    With ``load`` set, the pre-trained system saved by ``justintime
    admin --save`` is reconstructed instead of retraining — the paper's
    deployment split between the administrator and the users.
    """
    store_path = db or ":memory:"
    if load:
        return load_system(load, store_path=store_path, store_backend=db_backend)
    schema = lending_schema()
    config = AdminConfig(T=horizon, strategy=strategy, k=k, random_state=seed)
    system = JustInTime(
        schema,
        lending_update_function(schema),
        config,
        domain_constraints=lending_domain_constraints(schema),
        store_path=store_path,
        store_backend=db_backend,
    )
    system.fit(make_lending_dataset(n_per_year=n_per_year, random_state=seed))
    return system


def _print_insights(session: UserSession, out: IO[str], alpha: float, feature: str) -> None:
    out.write(screen_header("Plans and Insights") + "\n")
    for insight in session.all_insights(alpha=alpha, feature=feature):
        out.write(insight_block(insight) + "\n\n")
    out.write(
        bar_chart(
            session.engine.confidence_series(),
            title="best achievable confidence per time point:",
            value_format="{:.2f}",
        )
        + "\n"
    )
    out.write(
        bar_chart(
            session.engine.effort_series(),
            title="minimal required effort (diff) per time point:",
        )
        + "\n\n"
    )


def run_demo(args, out: IO[str] | None = None) -> int:
    """Five denied applicants, each with different preferences (§III)."""
    out = out if out is not None else sys.stdout
    system = build_system(args.n_per_year, args.strategy, args.horizon,
                          args.seed, load=args.load, db=args.db,
                          db_backend=args.db_backend)
    generator = LendingGenerator(random_state=args.seed + 13)
    profiles = generator.sample_rejected(system.time_values[0], n=5)
    preference_sets = [
        [],  # no preferences
        ["annual_income <= base_annual_income * 1.2"],
        ["monthly_debt >= base_monthly_debt"],  # cannot reduce debt
        ["gap <= 2"],
        ["loan_amount == base_loan_amount", "household == base_household"],
    ]
    for i, (profile, prefs) in enumerate(zip(profiles, preference_sets), start=1):
        user_id = f"applicant-{i}"
        out.write(screen_header(f"Denied application {i}/5 — {user_id}") + "\n")
        out.write(profile_table(system.schema, profile) + "\n")
        out.write(screen_header("Personal Preferences") + "\n")
        if prefs:
            for p in prefs:
                out.write(f"  constraint: {p}\n")
        else:
            out.write("  (no personal constraints)\n")
        session = system.create_session(user_id, profile, user_constraints=prefs)
        out.write(
            f"present score: {session.current_score():.3f}"
            f" (threshold {system.future_models[0].threshold:.2f})\n"
        )
        _print_insights(session, out, alpha=args.alpha, feature="monthly_debt")
    return 0


def run_quickstart(args, out: IO[str] | None = None) -> int:
    """John's running example end to end."""
    out = out if out is not None else sys.stdout
    system = build_system(args.n_per_year, args.strategy, args.horizon,
                          args.seed, load=args.load, db=args.db,
                          db_backend=args.db_backend)
    out.write(screen_header("JustInTime quickstart — John, 29") + "\n")
    out.write(profile_table(system.schema, system.schema.vector(john_profile())) + "\n")
    session = system.create_session(
        "john",
        john_profile(),
        user_constraints=["annual_income <= base_annual_income * 1.2"],
    )
    out.write(f"rejected now: {session.is_rejected_now()}\n")
    _print_insights(session, out, alpha=args.alpha, feature="monthly_debt")
    return 0


def run_interactive(
    args, out: IO[str] | None = None, stdin: IO[str] | None = None
) -> int:
    """Audience-participation mode; reads answers line by line from stdin.

    ``out``/``stdin`` resolve to the *current* sys streams at call time
    (not import time) so test harnesses and REPL redirections work.
    """
    out = out if out is not None else sys.stdout
    stdin = stdin if stdin is not None else sys.stdin
    system = build_system(args.n_per_year, args.strategy, args.horizon,
                          args.seed, load=args.load, db=args.db,
                          db_backend=args.db_backend)
    schema = system.schema

    def ask(prompt: str, default: str) -> str:
        out.write(f"{prompt} [{default}]: ")
        out.flush()
        line = stdin.readline()
        if not line:
            return default
        line = line.strip()
        return line or default

    out.write(screen_header("Personal Preferences") + "\n")
    defaults = john_profile()
    values = {}
    for spec in schema:
        raw = ask(f"{spec.name} ({spec.description})", str(defaults[spec.name]))
        try:
            values[spec.name] = float(raw)
        except ValueError:
            out.write(f"  not a number, using default {defaults[spec.name]}\n")
            values[spec.name] = float(defaults[spec.name])
    constraints: list[str] = []
    while True:
        text = ask("add a constraint (empty to finish)", "")
        if not text:
            break
        constraints.append(text)
    session = system.create_session("participant", values, user_constraints=constraints)
    out.write(screen_header("Queries") + "\n")
    for qid, title in QUESTIONS.items():
        out.write(f"  {qid}: {title}\n")
    picked = ask("question ids to run, comma-separated", "q1,q2,q4,q5")
    out.write(screen_header("Plans and Insights") + "\n")
    for qid in (q.strip() for q in picked.split(",")):
        if qid not in QUESTIONS:
            out.write(f"  unknown question {qid!r}, skipping\n")
            continue
        params = {}
        if qid == "q3":
            params["feature"] = ask("dominant feature to test", "monthly_debt")
        if qid == "q6":
            params["alpha"] = float(ask("confidence level alpha", str(args.alpha)))
        if qid == "q7":
            params["budget"] = float(ask("effort budget (scaled diff)", "1.0"))
        out.write(insight_block(session.ask(qid, **params)) + "\n\n")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="justintime",
        description="JustInTime: personal temporal insights for altering"
        " model decisions (ICDE 2019 reproduction)",
    )
    parser.add_argument("--n-per-year", type=int, default=150)
    parser.add_argument(
        "--strategy",
        default="last",
        choices=["last", "full", "reweight", "weights", "edd"],
    )
    parser.add_argument("--horizon", type=int, default=4, help="T, future points")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--alpha", type=float, default=0.55)
    parser.add_argument(
        "--load",
        default=None,
        help="load a pre-trained system saved by 'admin --save' instead of"
        " retraining",
    )
    parser.add_argument(
        "--db",
        default=None,
        help="candidate database file (default: in-memory)",
    )
    parser.add_argument(
        "--db-backend",
        default=None,
        choices=["sqlite", "memory", "sharded"],
        help="candidate store backend (default: inferred from --db)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="five denied applicants, scripted (§III)")
    sub.add_parser("quickstart", help="John's running example")
    sub.add_parser("interactive", help="enter your own profile")
    admin = sub.add_parser(
        "admin", help="train the future models once and save the system"
    )
    admin.add_argument("--save", required=True, help="output path (.pkl)")
    refresh = sub.add_parser(
        "refresh",
        help="re-forecast on new data and recompute only the stale"
        " (user × time-point) cells of the stored sessions",
    )
    refresh.add_argument(
        "--new-n", type=int, default=120, help="new samples to ingest"
    )
    refresh.add_argument(
        "--at",
        type=float,
        default=None,
        help="timestamp of the new samples (default: latest history year)",
    )
    refresh.add_argument(
        "--cold",
        action="store_true",
        help="disable warm-start (bit-identical to a cold recompute)",
    )
    return parser


def run_admin(args, out: IO[str] | None = None) -> int:
    """The administrator's offline step: fit once, persist to disk."""
    out = out if out is not None else sys.stdout
    system = build_system(
        args.n_per_year, args.strategy, args.horizon, args.seed, db=args.db,
        db_backend=args.db_backend,
    )
    save_system(system, args.save)
    out.write(
        f"trained {len(system.future_models)} future models"
        f" (strategy={args.strategy}, T={args.horizon}) -> {args.save}\n"
    )
    return 0


def run_refresh(args, out: IO[str] | None = None) -> int:
    """The operator's incremental step: ingest new data, refresh sessions.

    Loads the saved system (``--load``) with its candidate database
    (``--db``), rehydrates the persisted sessions, samples ``--new-n``
    fresh labeled applications from the lending generator at ``--at``,
    and refreshes: models are refit, per-time-point fingerprints diffed,
    and only stale (user × time-point) cells recomputed and upserted.
    """
    out = out if out is not None else sys.stdout
    if not args.load or not args.db:
        out.write(
            "refresh needs --load (saved system) and --db (candidate"
            " database); run 'admin --save' and a session-creating"
            " command against the same --db first\n"
        )
        return 2
    system = build_system(load=args.load, db=args.db, db_backend=args.db_backend)
    if system.history is None:
        out.write(
            "the saved system carries no training history (pre-refresh"
            " save format); re-save it with 'admin --save'\n"
        )
        return 2
    resumed = system.resume_sessions()
    # seed the "new arrivals" stream off the persisted history size so
    # consecutive refreshes ingest distinct samples, deterministically
    generator = LendingGenerator(
        random_state=args.seed + 31 + len(system.history)
    )
    at = args.at if args.at is not None else system.history.span[1]
    X = generator.sample_profiles(args.new_n)
    years = np.full(args.new_n, float(at))
    new_data = TemporalDataset(X, generator.label(X, years), years, system.schema)
    report = system.refresh(new_data, warm_start=not args.cold)
    # persist the refit models + merged history: the next refresh must
    # start from this state, and stored model_fp stamps must keep
    # matching a system that exists on disk
    save_system(system, args.load)
    out.write(screen_header("Session refresh") + "\n")
    out.write(
        f"ingested {args.new_n} new samples at t={at:.2f};"
        f" resumed {len(resumed)} stored sessions\n"
    )
    out.write(
        f"stale time points: {list(report.stale_times)}"
        f" (unchanged: {list(report.fresh_times)})\n"
    )
    out.write(
        f"recomputed {report.cells_recomputed} (user x time-point) cells,"
        f" wrote {report.candidates_written} candidate rows"
        f" (warm_start={report.warm_start})\n"
    )
    if report.skipped_stale_cells:
        out.write(
            f"WARNING: {report.skipped_stale_cells} stored cells are stale"
            " but belong to users without a resumable session (opaque"
            " constraints); their candidates remain outdated\n"
        )
    out.write(f"saved refreshed system -> {args.load}\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    handlers = {
        "demo": run_demo,
        "quickstart": run_quickstart,
        "interactive": run_interactive,
        "admin": run_admin,
        "refresh": run_refresh,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
