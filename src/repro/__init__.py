"""JustInTime — personal temporal insights for altering model decisions.

Reproduction of Boer, Deutch, Frost & Milo (ICDE 2019, demo track).  The
public API mirrors the paper's architecture:

* :mod:`repro.ml` — from-scratch model classes (Definition II.1 scorers);
* :mod:`repro.data` — schemas and the synthetic drifting lending data;
* :mod:`repro.constraints` — the constraints language (Definition II.2);
* :mod:`repro.temporal` — temporal update functions (Definition II.4) and
  the models generator (future model sequence, §II.B);
* :mod:`repro.core` — the candidates generator (Definition II.3, §II.A),
  insights, and the :class:`~repro.core.system.JustInTime` facade;
* :mod:`repro.db` — the relational candidate store and Figure-2 queries.

Quickstart::

    from repro import (AdminConfig, JustInTime, lending_schema,
                       lending_update_function, make_lending_dataset)

    schema = lending_schema()
    system = JustInTime(schema, lending_update_function(schema),
                        AdminConfig(T=5, strategy="last"))
    system.fit(make_lending_dataset())
    session = system.create_session(
        "john", {"age": 29, "household": 1, "annual_income": 52_000,
                 "monthly_debt": 2_600, "seniority": 4,
                 "loan_amount": 30_000},
        user_constraints=["annual_income <= base_annual_income * 1.2"])
    for insight in session.all_insights():
        print(insight.text)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced artifacts.
"""

__version__ = "1.0.0"

from repro.constraints import (
    ConstraintsFunction,
    ScopedConstraint,
    bounds,
    freeze,
    lending_domain_constraints,
    max_changes,
    max_effort,
    max_increase_pct,
    min_confidence,
    no_decrease,
    no_increase,
    parse_constraint,
    schema_domain_constraints,
)
from repro.core import (
    AdminConfig,
    Candidate,
    CandidateGenerator,
    CandidateSetReport,
    Insight,
    InsightEngine,
    JustInTime,
    Objective,
    Plan,
    UserSession,
    build_plan,
    brute_force_tree_candidates,
    evaluate_session,
)
from repro.data import (
    DatasetSchema,
    FeatureSpec,
    LendingGenerator,
    LendingPolicy,
    TemporalDataset,
    john_profile,
    lending_schema,
    load_csv,
    make_lending_dataset,
    save_csv,
)
from repro.db import CandidateStore
from repro.ml import (
    DecisionTreeClassifier,
    DesiredClassModel,
    GradientBoostingClassifier,
    LogisticRegression,
    OneVsRestClassifier,
    RandomForestClassifier,
)
from repro.temporal import (
    EDDPredictor,
    FutureModels,
    ModelsGenerator,
    TemporalUpdateFunction,
    lending_update_function,
    make_strategy,
)

__all__ = [
    "AdminConfig",
    "Candidate",
    "CandidateGenerator",
    "CandidateSetReport",
    "CandidateStore",
    "ConstraintsFunction",
    "DatasetSchema",
    "DecisionTreeClassifier",
    "DesiredClassModel",
    "OneVsRestClassifier",
    "evaluate_session",
    "EDDPredictor",
    "FeatureSpec",
    "FutureModels",
    "GradientBoostingClassifier",
    "Insight",
    "InsightEngine",
    "JustInTime",
    "LendingGenerator",
    "LendingPolicy",
    "LogisticRegression",
    "ModelsGenerator",
    "Objective",
    "Plan",
    "RandomForestClassifier",
    "ScopedConstraint",
    "TemporalDataset",
    "TemporalUpdateFunction",
    "UserSession",
    "__version__",
    "bounds",
    "brute_force_tree_candidates",
    "build_plan",
    "freeze",
    "john_profile",
    "lending_domain_constraints",
    "lending_schema",
    "lending_update_function",
    "load_csv",
    "make_lending_dataset",
    "make_strategy",
    "max_changes",
    "max_effort",
    "max_increase_pct",
    "min_confidence",
    "no_decrease",
    "no_increase",
    "parse_constraint",
    "save_csv",
    "schema_domain_constraints",
]
