"""Recursive-descent parser for the constraints DSL.

Grammar (standard precedence, lowest first)::

    or_expr     := and_expr ( OR and_expr )*
    and_expr    := not_expr ( AND not_expr )*
    not_expr    := NOT not_expr | comparison | '(' or_expr ')'
    comparison  := additive CMP additive
    additive    := multiplic ( ('+' | '-') multiplic )*
    multiplic   := unary ( ('*' | '/') unary )*
    unary       := '-' unary | primary
    primary     := NUMBER | IDENT | 'true' | '(' additive ')'

Example inputs::

    income <= 120_000 and (monthly_debt < 500 or gap <= 2)
    confidence >= 0.8
    annual_income <= base_annual_income * 1.2
    not (loan_amount > 50000)

Notes:

* numbers accept ``_`` digit separators and scientific notation;
* ``and`` / ``or`` / ``not`` are case-insensitive keywords;
* parentheses inside a comparison group arithmetic, outside they group
  boolean structure — the parser disambiguates by lookahead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.constraints.ast import (
    And,
    ArithExpr,
    BinOp,
    BoolExpr,
    Comparison,
    Not,
    Num,
    Or,
    TrueExpr,
    Var,
)
from repro.exceptions import ConstraintParseError

__all__ = ["parse_constraint", "tokenize", "Token"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(\d[\d_]*\.?[\d_]*|\.\d[\d_]*)([eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|<|>|[-+*/()])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true"}
_COMPARISONS = ("<=", ">=", "==", "!=", "<", ">")


@dataclass(frozen=True)
class Token:
    kind: str  # 'number' | 'ident' | 'op' | 'keyword'
    text: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Convert DSL text to a token list; raises on unknown characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConstraintParseError(
                f"unexpected character {text[pos]!r} at position {pos}", pos
            )
        if match.lastgroup != "ws":
            kind = match.lastgroup
            value = match.group()
            if kind == "ident" and value.lower() in _KEYWORDS:
                kind, value = "keyword", value.lower()
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    # -------------------------------------------------------------- stream

    def peek(self, offset: int = 0) -> Token | None:
        i = self.index + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ConstraintParseError(
                f"unexpected end of input in {self.source!r}", len(self.source)
            )
        self.index += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.advance()
        if token.text != text:
            raise ConstraintParseError(
                f"expected {text!r} but found {token.text!r}"
                f" at position {token.position}",
                token.position,
            )
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token.text == text

    # ------------------------------------------------------------- grammar

    def parse(self) -> BoolExpr:
        expr = self.or_expr()
        leftover = self.peek()
        if leftover is not None:
            raise ConstraintParseError(
                f"unexpected trailing input {leftover.text!r}"
                f" at position {leftover.position}",
                leftover.position,
            )
        return expr

    def or_expr(self) -> BoolExpr:
        operands = [self.and_expr()]
        while self.at("or"):
            self.advance()
            operands.append(self.and_expr())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def and_expr(self) -> BoolExpr:
        operands = [self.not_expr()]
        while self.at("and"):
            self.advance()
            operands.append(self.not_expr())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def not_expr(self) -> BoolExpr:
        if self.at("not"):
            self.advance()
            return Not(self.not_expr())
        if self.at("true"):
            self.advance()
            return TrueExpr()
        if self.at("(") and self._paren_is_boolean():
            self.advance()
            inner = self.or_expr()
            self.expect(")")
            return inner
        return self.comparison()

    def _paren_is_boolean(self) -> bool:
        """Lookahead: does this '(' open a boolean group (vs arithmetic)?

        Scan to the matching ')'; if a boolean keyword or comparison
        operator occurs at depth >= 1 before it closes, the group is
        boolean.  A comparison operator appearing right *after* the
        matching ')' means the parenthesis was arithmetic.
        """
        depth = 0
        for offset in range(len(self.tokens) - self.index):
            token = self.peek(offset)
            if token is None:
                break
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
                if depth == 0:
                    return False  # closed without boolean content
            elif depth >= 1 and (
                token.kind == "keyword" or token.text in _COMPARISONS
            ):
                return True
        return False

    def comparison(self) -> Comparison:
        left = self.additive()
        token = self.peek()
        if token is None or token.text not in _COMPARISONS:
            where = token.position if token else len(self.source)
            raise ConstraintParseError(
                f"expected a comparison operator at position {where}"
                f" in {self.source!r}",
                where,
            )
        self.advance()
        right = self.additive()
        return Comparison(token.text, left, right)

    def additive(self) -> ArithExpr:
        expr = self.multiplicative()
        while self.at("+") or self.at("-"):
            op = self.advance().text
            expr = BinOp(op, expr, self.multiplicative())
        return expr

    def multiplicative(self) -> ArithExpr:
        expr = self.unary()
        while self.at("*") or self.at("/"):
            token = self.advance()
            right = self.unary()
            try:
                expr = BinOp(token.text, expr, right)
            except ConstraintParseError:
                raise
            except Exception as exc:  # non-linear structure
                raise ConstraintParseError(
                    f"{exc} at position {token.position}", token.position
                ) from exc
        return expr

    def unary(self) -> ArithExpr:
        if self.at("-"):
            self.advance()
            return BinOp("-", Num(0.0), self.unary())
        return self.primary()

    def primary(self) -> ArithExpr:
        token = self.advance()
        if token.kind == "number":
            return Num(float(token.text.replace("_", "")))
        if token.kind == "ident":
            return Var(token.text)
        if token.text == "(":
            inner = self.additive()
            self.expect(")")
            return inner
        raise ConstraintParseError(
            f"unexpected token {token.text!r} at position {token.position}",
            token.position,
        )


def parse_constraint(text: str) -> BoolExpr:
    """Parse DSL ``text`` into a boolean expression AST.

    Raises :class:`~repro.exceptions.ConstraintParseError` with the
    offending position on malformed input.  An empty/blank string parses
    to the always-true constraint.
    """
    tokens = tokenize(text)
    if not tokens:
        return TrueExpr()
    return _Parser(tokens, text).parse()
