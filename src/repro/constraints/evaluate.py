"""Constraints-function evaluation (Definition II.2).

A :class:`ConstraintsFunction` decides, for a candidate modification
``x'`` of an input ``x``, whether ``x' ∈ C(x)``.  Each member constraint
is a boolean AST (from the DSL or the builders) scoped either to all time
points or to an explicit set of them — the paper allows "constraints
[that] may refer to a single point in time or all of them".

The three special candidate properties are computed here so that the
constraints layer, the objectives layer and the DB rows all share one
definition:

* ``diff`` — l2 distance between ``x'`` and ``x`` (optionally in a
  feature-scaled space, see :func:`l2_diff`);
* ``gap`` — number of modified coordinates (:func:`l0_gap`);
* ``confidence`` — model score ``M_t(x')``, supplied by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.ast import (
    BatchEvalContext,
    BoolExpr,
    EvalContext,
    TrueExpr,
)
from repro.constraints.parser import parse_constraint
from repro.data.schema import DatasetSchema
from repro.exceptions import ConstraintError

__all__ = [
    "l2_diff",
    "l2_diff_batch",
    "l0_gap",
    "l0_gap_batch",
    "ScopedConstraint",
    "ConstraintsFunction",
]

_GAP_TOLERANCE = 1e-9


def l2_diff(x_prime, x, scale=None) -> float:
    """l2 distance between candidate and input, optionally feature-scaled.

    ``scale`` (per-feature positive divisors, e.g. training-set standard
    deviations) makes distances comparable across features with very
    different units — income in dollars vs seniority in years.
    """
    x_prime = np.asarray(x_prime, dtype=float).ravel()
    x = np.asarray(x, dtype=float).ravel()
    if x_prime.shape != x.shape:
        raise ConstraintError(
            f"shape mismatch in diff: {x_prime.shape} vs {x.shape}"
        )
    delta = x_prime - x
    if scale is not None:
        scale = np.asarray(scale, dtype=float).ravel()
        if scale.shape != x.shape:
            raise ConstraintError("scale shape mismatch")
        if (scale <= 0).any():
            raise ConstraintError("scale entries must be positive")
        delta = delta / scale
    # sqrt(sum(d*d)) rather than np.linalg.norm: the BLAS dot behind norm
    # differs from NumPy's pairwise sum in the last ulp, and the batched
    # path (l2_diff_batch) must agree with this bit-for-bit
    return float(np.sqrt(np.sum(delta * delta)))


def l2_diff_batch(X_prime, x, scale=None) -> np.ndarray:
    """Row-wise :func:`l2_diff` of an ``(n, d)`` candidate matrix.

    Bit-identical to calling :func:`l2_diff` on each row (same pairwise
    summation order).
    """
    X_prime = np.atleast_2d(np.asarray(X_prime, dtype=float))
    x = np.asarray(x, dtype=float).ravel()
    if X_prime.shape[1] != x.shape[0]:
        raise ConstraintError(
            f"shape mismatch in diff: {X_prime.shape} vs {x.shape}"
        )
    delta = X_prime - x
    if scale is not None:
        scale = np.asarray(scale, dtype=float).ravel()
        if scale.shape != x.shape:
            raise ConstraintError("scale shape mismatch")
        if (scale <= 0).any():
            raise ConstraintError("scale entries must be positive")
        delta = delta / scale
    return np.sqrt(np.sum(delta * delta, axis=1))


def l0_gap_batch(X_prime, x) -> np.ndarray:
    """Row-wise :func:`l0_gap` of an ``(n, d)`` candidate matrix."""
    X_prime = np.atleast_2d(np.asarray(X_prime, dtype=float))
    x = np.asarray(x, dtype=float).ravel()
    if X_prime.shape[1] != x.shape[0]:
        raise ConstraintError(
            f"shape mismatch in gap: {X_prime.shape} vs {x.shape}"
        )
    return np.sum(np.abs(X_prime - x) > _GAP_TOLERANCE, axis=1)


def l0_gap(x_prime, x) -> int:
    """Number of coordinates in which the candidate differs from the input."""
    x_prime = np.asarray(x_prime, dtype=float).ravel()
    x = np.asarray(x, dtype=float).ravel()
    if x_prime.shape != x.shape:
        raise ConstraintError(
            f"shape mismatch in gap: {x_prime.shape} vs {x.shape}"
        )
    return int(np.sum(np.abs(x_prime - x) > _GAP_TOLERANCE))


@dataclass(frozen=True)
class ScopedConstraint:
    """A boolean constraint plus the time points it applies to.

    ``times=None`` applies at every time point; otherwise a frozenset of
    integer time indices.
    """

    expr: BoolExpr
    times: frozenset[int] | None = None
    label: str = ""

    def applies_at(self, time: int) -> bool:
        return self.times is None or time in self.times

    def __str__(self) -> str:
        scope = "all t" if self.times is None else f"t in {sorted(self.times)}"
        return f"[{scope}] {self.expr}"


class ConstraintsFunction:
    """Conjunction of scoped constraints over a feature schema.

    In JustInTime "constraints specified by the administrator and the user
    are joined" — :meth:`conjoin` implements exactly that join, and the
    result is again a :class:`ConstraintsFunction`.

    Parameters
    ----------
    schema:
        Feature schema; every identifier in every constraint must be a
        schema feature, a ``base_``-prefixed schema feature, or one of the
        special properties.
    constraints:
        Initial scoped constraints (optional).
    diff_scale:
        Optional per-feature divisors applied inside ``diff``.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        constraints: list[ScopedConstraint] | None = None,
        diff_scale=None,
    ):
        self.schema = schema
        self.diff_scale = (
            None if diff_scale is None else np.asarray(diff_scale, dtype=float)
        )
        self._constraints: list[ScopedConstraint] = []
        for constraint in constraints or []:
            self._add_checked(constraint)

    # ------------------------------------------------------------ building

    def _add_checked(self, constraint: ScopedConstraint) -> None:
        from repro.constraints.ast import BASE_PREFIX, SPECIAL_VARS

        for name in constraint.expr.variables():
            stripped = (
                name[len(BASE_PREFIX):] if name.startswith(BASE_PREFIX) else None
            )
            known = (
                name in self.schema
                or name in SPECIAL_VARS
                or (stripped is not None and stripped in self.schema)
            )
            if not known:
                raise ConstraintError(
                    f"constraint references unknown identifier {name!r}"
                    f" (schema features: {self.schema.names})"
                )
        self._constraints.append(constraint)

    def add(
        self,
        constraint: str | BoolExpr | ScopedConstraint,
        *,
        times=None,
        label: str = "",
    ) -> "ConstraintsFunction":
        """Add a constraint (DSL text, AST, or pre-scoped) and return self.

        ``times`` may be an int, an iterable of ints, or ``None`` for all
        time points.
        """
        if isinstance(constraint, ScopedConstraint):
            self._add_checked(constraint)
            return self
        if isinstance(constraint, str):
            expr = parse_constraint(constraint)
            label = label or constraint
        else:
            expr = constraint
        if times is None:
            scope = None
        elif isinstance(times, int):
            scope = frozenset([times])
        else:
            scope = frozenset(int(t) for t in times)
        self._add_checked(ScopedConstraint(expr, scope, label))
        return self

    def conjoin(self, other: "ConstraintsFunction") -> "ConstraintsFunction":
        """Return the conjunction of this function with ``other``.

        This is how admin (domain) and user (preference) constraints are
        combined into the single ``C_t`` the generators receive.
        """
        if other.schema != self.schema:
            raise ConstraintError("cannot conjoin constraints over different schemas")
        scale = self.diff_scale if self.diff_scale is not None else other.diff_scale
        return ConstraintsFunction(
            self.schema,
            list(self._constraints) + list(other._constraints),
            diff_scale=scale,
        )

    @property
    def constraints(self) -> tuple[ScopedConstraint, ...]:
        return tuple(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __repr__(self) -> str:
        inner = "; ".join(str(c) for c in self._constraints) or "true"
        return f"ConstraintsFunction({inner})"

    # ---------------------------------------------------------- evaluation

    def context(
        self,
        x_prime,
        x_base,
        *,
        confidence: float,
        time: int,
    ) -> EvalContext:
        """Build the evaluation context for candidate ``x_prime``.

        ``x_base`` is the *temporal input* at the same time point (i.e.
        ``f(x, t)``), which is what diff/gap are measured against — a
        feature that merely drifted with time is not a user modification.
        """
        x_prime = np.asarray(x_prime, dtype=float).ravel()
        x_base = np.asarray(x_base, dtype=float).ravel()
        return EvalContext(
            features=self.schema.as_dict(x_prime),
            base=self.schema.as_dict(x_base),
            special={
                "diff": l2_diff(x_prime, x_base, self.diff_scale),
                "gap": float(l0_gap(x_prime, x_base)),
                "confidence": float(confidence),
                "time": float(time),
            },
        )

    def batch_context(
        self,
        X_prime,
        x_base,
        *,
        confidence,
        time: int,
        diff=None,
        gap=None,
    ) -> BatchEvalContext:
        """Build one evaluation context for an ``(n, d)`` candidate matrix.

        ``confidence`` is the ``(n,)`` vector of model scores.  Feature
        bindings are column views of ``X_prime`` — no per-row dicts.
        Callers that already measured the candidates (the search loop)
        can pass ``diff``/``gap`` arrays to skip recomputing them.
        """
        X_prime = np.atleast_2d(np.asarray(X_prime, dtype=float))
        x_base = np.asarray(x_base, dtype=float).ravel()
        n, d = X_prime.shape
        if d != len(self.schema) or x_base.size != d:
            raise ConstraintError(
                f"batch shape {X_prime.shape} does not match schema"
                f" ({len(self.schema)} features)"
            )
        confidence = np.asarray(confidence, dtype=float).ravel()
        if confidence.size != n:
            raise ConstraintError(
                f"confidence has {confidence.size} entries, expected {n}"
            )
        names = self.schema.names
        return BatchEvalContext(
            features={name: X_prime[:, i] for i, name in enumerate(names)},
            base={name: float(x_base[i]) for i, name in enumerate(names)},
            special={
                "diff": (
                    l2_diff_batch(X_prime, x_base, self.diff_scale)
                    if diff is None
                    else np.asarray(diff, dtype=float).ravel()
                ),
                "gap": (
                    l0_gap_batch(X_prime, x_base).astype(float)
                    if gap is None
                    else np.asarray(gap, dtype=float).ravel()
                ),
                "confidence": confidence,
                "time": float(time),
            },
            n=n,
        )

    def is_valid_batch(
        self,
        X_prime,
        x_base,
        *,
        confidence,
        time: int,
    ) -> np.ndarray:
        """Vectorized :meth:`is_valid`: ``(n,)`` bool mask over rows."""
        ctx = self.batch_context(X_prime, x_base, confidence=confidence, time=time)
        mask = np.ones(ctx.n, dtype=bool)
        for c in self._constraints:
            # short-circuit like scalar all(): once every row is invalid,
            # later constraints must not be evaluated (scalar is_valid
            # never reaches them, and they may raise on evaluation)
            if not mask.any():
                break
            if c.applies_at(time):
                mask &= ctx.broadcast(c.expr.evaluate_batch(ctx))
        return mask

    def violation_counts_batch(
        self,
        X_prime,
        x_base,
        *,
        confidence,
        time: int,
        diff=None,
        gap=None,
    ) -> np.ndarray:
        """Per-row count of violated constraints (vectorized
        ``len(self.violated(...))``)."""
        ctx = self.batch_context(
            X_prime, x_base, confidence=confidence, time=time, diff=diff, gap=gap
        )
        counts = np.zeros(ctx.n, dtype=np.int64)
        for c in self._constraints:
            if c.applies_at(time):
                counts += ~ctx.broadcast(c.expr.evaluate_batch(ctx))
        return counts

    def is_valid(
        self,
        x_prime,
        x_base,
        *,
        confidence: float,
        time: int,
    ) -> bool:
        """Whether ``x_prime ∈ C(x)`` at time point ``time``."""
        ctx = self.context(x_prime, x_base, confidence=confidence, time=time)
        return all(
            c.expr.evaluate(ctx)
            for c in self._constraints
            if c.applies_at(time)
        )

    def violated(
        self,
        x_prime,
        x_base,
        *,
        confidence: float,
        time: int,
    ) -> list[ScopedConstraint]:
        """Return the constraints ``x_prime`` violates (for diagnostics/UI)."""
        ctx = self.context(x_prime, x_base, confidence=confidence, time=time)
        return [
            c
            for c in self._constraints
            if c.applies_at(time) and not c.expr.evaluate(ctx)
        ]

    @staticmethod
    def unconstrained(schema: DatasetSchema) -> "ConstraintsFunction":
        """The trivial constraints function: every modification is valid."""
        return ConstraintsFunction(
            schema, [ScopedConstraint(TrueExpr(), None, "true")]
        )
