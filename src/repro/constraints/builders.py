"""Programmatic constraint builders.

The demo UI's Personal Preferences screen offers structured widgets
("don't change my address", "income can grow at most 20%"); these helpers
are the backend equivalents, producing :class:`ScopedConstraint` objects
without going through DSL text.  They compose with :meth:`ConstraintsFunction.add`.
"""

from __future__ import annotations

from repro.constraints.ast import (
    And,
    BinOp,
    BoolExpr,
    Comparison,
    Num,
    Var,
)
from repro.constraints.evaluate import ScopedConstraint
from repro.exceptions import ConstraintError

__all__ = [
    "freeze",
    "bounds",
    "no_decrease",
    "no_increase",
    "max_increase_pct",
    "max_decrease_pct",
    "max_changes",
    "max_effort",
    "min_confidence",
]


def _base(feature: str) -> Var:
    return Var(f"base_{feature}")


def freeze(*features: str, times=None) -> ScopedConstraint:
    """The user will not modify the listed features at all.

    Emits ``feature == base_feature`` per feature, conjoined.
    """
    if not features:
        raise ConstraintError("freeze() needs at least one feature")
    comparisons: list[BoolExpr] = [
        Comparison("==", Var(f), _base(f)) for f in features
    ]
    expr = comparisons[0] if len(comparisons) == 1 else And(tuple(comparisons))
    return ScopedConstraint(expr, _scope(times), f"freeze({', '.join(features)})")


def bounds(
    feature: str,
    lower: float | None = None,
    upper: float | None = None,
    times=None,
) -> ScopedConstraint:
    """Keep ``feature`` within ``[lower, upper]`` (either side optional)."""
    parts: list[BoolExpr] = []
    if lower is not None:
        parts.append(Comparison(">=", Var(feature), Num(float(lower))))
    if upper is not None:
        parts.append(Comparison("<=", Var(feature), Num(float(upper))))
    if not parts:
        raise ConstraintError("bounds() needs at least one of lower/upper")
    expr = parts[0] if len(parts) == 1 else And(tuple(parts))
    return ScopedConstraint(
        expr, _scope(times), f"bounds({feature}, {lower}, {upper})"
    )


def no_decrease(feature: str, times=None) -> ScopedConstraint:
    """Feature may only grow relative to the (temporal) input value."""
    return ScopedConstraint(
        Comparison(">=", Var(feature), _base(feature)),
        _scope(times),
        f"no_decrease({feature})",
    )


def no_increase(feature: str, times=None) -> ScopedConstraint:
    """Feature may only shrink relative to the (temporal) input value."""
    return ScopedConstraint(
        Comparison("<=", Var(feature), _base(feature)),
        _scope(times),
        f"no_increase({feature})",
    )


def max_increase_pct(feature: str, pct: float, times=None) -> ScopedConstraint:
    """Feature may grow by at most ``pct`` percent of its input value.

    E.g. ``max_increase_pct('annual_income', 20)`` — "I cannot raise my
    income beyond +20%" from the paper's introduction.
    """
    if pct < 0:
        raise ConstraintError("pct must be non-negative")
    factor = 1.0 + pct / 100.0
    return ScopedConstraint(
        Comparison("<=", Var(feature), BinOp("*", _base(feature), Num(factor))),
        _scope(times),
        f"max_increase_pct({feature}, {pct})",
    )


def max_decrease_pct(feature: str, pct: float, times=None) -> ScopedConstraint:
    """Feature may shrink by at most ``pct`` percent of its input value."""
    if pct < 0:
        raise ConstraintError("pct must be non-negative")
    factor = 1.0 - pct / 100.0
    return ScopedConstraint(
        Comparison(">=", Var(feature), BinOp("*", _base(feature), Num(factor))),
        _scope(times),
        f"max_decrease_pct({feature}, {pct})",
    )


def max_changes(k: int, times=None) -> ScopedConstraint:
    """Modify at most ``k`` features (``gap <= k``)."""
    if k < 0:
        raise ConstraintError("k must be non-negative")
    return ScopedConstraint(
        Comparison("<=", Var("gap"), Num(float(k))),
        _scope(times),
        f"max_changes({k})",
    )


def max_effort(max_diff: float, times=None) -> ScopedConstraint:
    """Bound the overall modification magnitude (``diff <= max_diff``)."""
    if max_diff < 0:
        raise ConstraintError("max_diff must be non-negative")
    return ScopedConstraint(
        Comparison("<=", Var("diff"), Num(float(max_diff))),
        _scope(times),
        f"max_effort({max_diff})",
    )


def min_confidence(alpha: float, times=None) -> ScopedConstraint:
    """Require a model score of at least ``alpha`` (``confidence >= alpha``)."""
    if not 0.0 <= alpha <= 1.0:
        raise ConstraintError("alpha must be in [0, 1]")
    return ScopedConstraint(
        Comparison(">=", Var("confidence"), Num(float(alpha))),
        _scope(times),
        f"min_confidence({alpha})",
    )


def _scope(times) -> frozenset[int] | None:
    if times is None:
        return None
    if isinstance(times, int):
        return frozenset([times])
    return frozenset(int(t) for t in times)
