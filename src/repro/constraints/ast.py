"""Expression AST for the constraints language.

Per §II.A the language admits "any number of linear inequalities joined by
conjunctions and disjunctions, over any subset of attributes of the input
vector", plus three special properties of a candidate: ``diff`` (l2
distance from the input), ``gap`` (l0 distance) and ``confidence`` (model
score).  We additionally expose ``time`` (the time-point index) and
``base_<feature>`` (the user's temporal input value at that time point),
which the canned queries and the builders need.

Expressions evaluate against an :class:`EvalContext` to a bool (boolean
nodes) or float (arithmetic nodes).  Linearity is enforced structurally:
multiplication and division require a constant operand.

For the batched hot path the same AST also evaluates against a
:class:`BatchEvalContext`, where feature and special bindings are arrays
over ``n`` candidate rows: ``value_batch`` / ``evaluate_batch`` mirror
``value`` / ``evaluate`` with NumPy elementwise semantics, so one walk of
the tree replaces ``n`` scalar walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import ConstraintError

__all__ = [
    "EvalContext",
    "BatchEvalContext",
    "Expr",
    "BoolExpr",
    "ArithExpr",
    "Num",
    "Var",
    "BinOp",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TrueExpr",
    "SPECIAL_VARS",
    "BASE_PREFIX",
]

#: Special candidate properties available in constraint expressions.
SPECIAL_VARS = ("diff", "gap", "confidence", "time")

#: Prefix resolving to the temporal input's value, e.g. ``base_income``.
BASE_PREFIX = "base_"

_COMPARISON_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: abs(a - b) <= 1e-9,
    "!=": lambda a, b: abs(a - b) > 1e-9,
}

# NumPy twins of _COMPARISON_OPS (elementwise over candidate rows); the
# equality tolerance matches the scalar definitions above exactly.
_BATCH_COMPARISON_OPS = {
    "<": lambda a, b: np.less(a, b),
    "<=": lambda a, b: np.less_equal(a, b),
    ">": lambda a, b: np.greater(a, b),
    ">=": lambda a, b: np.greater_equal(a, b),
    "==": lambda a, b: np.abs(a - b) <= 1e-9,
    "!=": lambda a, b: np.abs(a - b) > 1e-9,
}

_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class EvalContext:
    """Name→value bindings a constraint expression evaluates against.

    ``features`` binds candidate feature values by name; ``base`` binds the
    temporal input's values (``base_<name>``); ``special`` binds
    diff/gap/confidence/time.
    """

    features: dict[str, float]
    base: dict[str, float]
    special: dict[str, float]

    def resolve(self, name: str) -> float:
        if name in self.features:
            return self.features[name]
        if name.startswith(BASE_PREFIX):
            stripped = name[len(BASE_PREFIX):]
            if stripped in self.base:
                return self.base[stripped]
        if name in self.special:
            return self.special[name]
        raise ConstraintError(
            f"unknown identifier {name!r}; known features:"
            f" {sorted(self.features)}, specials: {sorted(self.special)}"
        )


@dataclass(frozen=True)
class BatchEvalContext:
    """Array-valued bindings: one evaluation over ``n`` candidate rows.

    ``features`` and the per-row entries of ``special`` (diff, gap,
    confidence) bind ``(n,)`` arrays; ``base`` and ``time`` are scalars
    shared by every row and broadcast by NumPy.
    """

    features: dict[str, np.ndarray]
    base: dict[str, float]
    special: dict[str, "np.ndarray | float"]
    n: int

    def resolve(self, name: str) -> "np.ndarray | float":
        if name in self.features:
            return self.features[name]
        if name.startswith(BASE_PREFIX):
            stripped = name[len(BASE_PREFIX):]
            if stripped in self.base:
                return self.base[stripped]
        if name in self.special:
            return self.special[name]
        raise ConstraintError(
            f"unknown identifier {name!r}; known features:"
            f" {sorted(self.features)}, specials: {sorted(self.special)}"
        )

    def broadcast(self, result) -> np.ndarray:
        """Expand a (possibly scalar) boolean result to an ``(n,)`` mask."""
        mask = np.asarray(result, dtype=bool)
        if mask.ndim == 0:
            return np.full(self.n, bool(mask))
        return mask


class Expr:
    """Base class for all AST nodes."""

    def variables(self) -> set[str]:
        """All identifiers referenced anywhere under this node."""
        return {node.name for node in self.walk() if isinstance(node, Var)}

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self._children():
            yield from child.walk()

    def _children(self) -> tuple["Expr", ...]:
        return ()


class ArithExpr(Expr):
    """Numeric-valued node."""

    def value(self, ctx: EvalContext) -> float:
        raise NotImplementedError

    def value_batch(self, ctx: BatchEvalContext) -> "np.ndarray | float":
        """Vectorized :meth:`value`: scalar or ``(n,)`` array."""
        raise NotImplementedError

    def is_constant(self) -> bool:
        return all(not isinstance(n, Var) for n in self.walk())


class BoolExpr(Expr):
    """Boolean-valued node."""

    def evaluate(self, ctx: EvalContext) -> bool:
        raise NotImplementedError

    def evaluate_batch(self, ctx: BatchEvalContext) -> "np.ndarray | bool":
        """Vectorized :meth:`evaluate`: scalar bool or ``(n,)`` mask."""
        raise NotImplementedError


@dataclass(frozen=True)
class Num(ArithExpr):
    """Numeric literal."""

    number: float

    def value(self, ctx: EvalContext) -> float:
        return self.number

    def value_batch(self, ctx: BatchEvalContext) -> float:
        return self.number

    def __str__(self) -> str:
        return f"{self.number:g}"


@dataclass(frozen=True)
class Var(ArithExpr):
    """Feature, ``base_<feature>`` or special-property reference."""

    name: str

    def value(self, ctx: EvalContext) -> float:
        return ctx.resolve(self.name)

    def value_batch(self, ctx: BatchEvalContext) -> "np.ndarray | float":
        return ctx.resolve(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(ArithExpr):
    """Linear arithmetic: ``+ - * /`` with ``* /`` needing a constant side."""

    op: str
    left: ArithExpr
    right: ArithExpr

    def __post_init__(self):
        if self.op not in _ARITH_OPS:
            raise ConstraintError(f"unknown arithmetic operator {self.op!r}")
        if self.op == "*" and not (
            self.left.is_constant() or self.right.is_constant()
        ):
            raise ConstraintError(
                "non-linear expression: '*' needs a constant operand"
            )
        if self.op == "/" and not self.right.is_constant():
            raise ConstraintError(
                "non-linear expression: '/' needs a constant divisor"
            )

    def value(self, ctx: EvalContext) -> float:
        left = self.left.value(ctx)
        right = self.right.value(ctx)
        if self.op == "/" and right == 0:
            raise ConstraintError(f"division by zero in {self}")
        return _ARITH_OPS[self.op](left, right)

    def value_batch(self, ctx: BatchEvalContext) -> "np.ndarray | float":
        left = self.left.value_batch(ctx)
        right = self.right.value_batch(ctx)
        # '/' structurally requires a constant divisor, so `right` is a
        # scalar here and the zero check mirrors the scalar path
        if self.op == "/" and np.any(np.asarray(right) == 0):
            raise ConstraintError(f"division by zero in {self}")
        return _ARITH_OPS[self.op](left, right)

    def _children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Comparison(BoolExpr):
    """A single (in)equality between two linear arithmetic expressions."""

    op: str
    left: ArithExpr
    right: ArithExpr

    def __post_init__(self):
        if self.op not in _COMPARISON_OPS:
            raise ConstraintError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, ctx: EvalContext) -> bool:
        return _COMPARISON_OPS[self.op](self.left.value(ctx), self.right.value(ctx))

    def evaluate_batch(self, ctx: BatchEvalContext) -> "np.ndarray | bool":
        return _BATCH_COMPARISON_OPS[self.op](
            self.left.value_batch(ctx), self.right.value_batch(ctx)
        )

    def _children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(BoolExpr):
    """Conjunction of two or more boolean expressions."""

    operands: tuple[BoolExpr, ...]

    def __post_init__(self):
        if len(self.operands) < 2:
            raise ConstraintError("And needs at least two operands")

    def evaluate(self, ctx: EvalContext) -> bool:
        return all(op.evaluate(ctx) for op in self.operands)

    def evaluate_batch(self, ctx: BatchEvalContext) -> "np.ndarray | bool":
        result = self.operands[0].evaluate_batch(ctx)
        for op in self.operands[1:]:
            # short-circuit like scalar all(): once every row is False,
            # later operands must not be evaluated (they may e.g. divide
            # by a constant zero that the scalar path never reaches)
            if not np.any(result):
                break
            result = np.logical_and(result, op.evaluate_batch(ctx))
        return result

    def _children(self) -> tuple[Expr, ...]:
        return self.operands

    def __str__(self) -> str:
        return "(" + " and ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(BoolExpr):
    """Disjunction of two or more boolean expressions."""

    operands: tuple[BoolExpr, ...]

    def __post_init__(self):
        if len(self.operands) < 2:
            raise ConstraintError("Or needs at least two operands")

    def evaluate(self, ctx: EvalContext) -> bool:
        return any(op.evaluate(ctx) for op in self.operands)

    def evaluate_batch(self, ctx: BatchEvalContext) -> "np.ndarray | bool":
        result = self.operands[0].evaluate_batch(ctx)
        for op in self.operands[1:]:
            # short-circuit like scalar any(): once every row is True,
            # later operands must not be evaluated
            if np.all(result):
                break
            result = np.logical_or(result, op.evaluate_batch(ctx))
        return result

    def _children(self) -> tuple[Expr, ...]:
        return self.operands

    def __str__(self) -> str:
        return "(" + " or ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(BoolExpr):
    """Negation."""

    operand: BoolExpr

    def evaluate(self, ctx: EvalContext) -> bool:
        return not self.operand.evaluate(ctx)

    def evaluate_batch(self, ctx: BatchEvalContext) -> "np.ndarray | bool":
        return np.logical_not(self.operand.evaluate_batch(ctx))

    def _children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class TrueExpr(BoolExpr):
    """Always-true constraint (the identity element for conjunction)."""

    def evaluate(self, ctx: EvalContext) -> bool:
        return True

    def evaluate_batch(self, ctx: BatchEvalContext) -> bool:
        return True

    def __str__(self) -> str:
        return "true"
