"""Domain-constraint presets.

"The administrator may define global Domain constraints derived from the
domain characteristics (such as database integrity constraints), that will
be imposed on all users" (§I).  For the lending scenario these are
physical-integrity rules every candidate must satisfy regardless of user
preferences, plus schema-driven rules generated mechanically:

* immutable features (``mutable=False`` in the schema) are frozen;
* bounded features stay within their physical bounds.
"""

from __future__ import annotations

from repro.constraints.builders import bounds, freeze
from repro.constraints.evaluate import ConstraintsFunction
from repro.data.schema import DatasetSchema

__all__ = ["schema_domain_constraints", "lending_domain_constraints"]


def schema_domain_constraints(
    schema: DatasetSchema, diff_scale=None
) -> ConstraintsFunction:
    """Mechanically derive domain constraints from schema metadata.

    Every immutable feature is frozen against the temporal input, and
    every bound in the schema becomes a hard constraint — this mirrors
    database integrity constraints derived from the domain.
    """
    fn = ConstraintsFunction(schema, diff_scale=diff_scale)
    immutable = [f.name for f in schema if not f.mutable]
    if immutable:
        fn.add(freeze(*immutable))
    for feature in schema:
        if feature.lower is not None or feature.upper is not None:
            fn.add(bounds(feature.name, feature.lower, feature.upper))
    return fn


def lending_domain_constraints(
    schema: DatasetSchema, diff_scale=None
) -> ConstraintsFunction:
    """Domain constraints for the loan-application scenario.

    Schema-derived rules plus lending-specific sanity constraints: debt
    service must stay below income (a standard underwriting integrity
    rule), expressed as ``monthly_debt * 12 <= annual_income``.
    """
    fn = schema_domain_constraints(schema, diff_scale=diff_scale)
    fn.add(
        "monthly_debt * 12 <= annual_income",
        label="debt service within income",
    )
    fn.add(
        "seniority <= age - 18",
        label="seniority within working years",
    )
    return fn
