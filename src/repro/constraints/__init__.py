"""Constraints language: AST, DSL parser, evaluation, builders, presets.

Implements Definition II.2 — a constraints function ``C`` mapping an input
``x`` to its set of valid modifications ``C(x)`` — as arbitrary and/or
trees of linear inequalities over features, ``base_<feature>`` references
and the special properties ``diff`` / ``gap`` / ``confidence`` / ``time``.
"""

from repro.constraints.ast import (
    And,
    BinOp,
    BoolExpr,
    Comparison,
    EvalContext,
    Expr,
    Not,
    Num,
    Or,
    TrueExpr,
    Var,
)
from repro.constraints.builders import (
    bounds,
    freeze,
    max_changes,
    max_decrease_pct,
    max_effort,
    max_increase_pct,
    min_confidence,
    no_decrease,
    no_increase,
)
from repro.constraints.domain import (
    lending_domain_constraints,
    schema_domain_constraints,
)
from repro.constraints.evaluate import (
    ConstraintsFunction,
    ScopedConstraint,
    l0_gap,
    l2_diff,
)
from repro.constraints.parser import parse_constraint, tokenize

__all__ = [
    "And",
    "BinOp",
    "BoolExpr",
    "Comparison",
    "ConstraintsFunction",
    "EvalContext",
    "Expr",
    "Not",
    "Num",
    "Or",
    "ScopedConstraint",
    "TrueExpr",
    "Var",
    "bounds",
    "freeze",
    "l0_gap",
    "l2_diff",
    "lending_domain_constraints",
    "max_changes",
    "max_decrease_pct",
    "max_effort",
    "max_increase_pct",
    "min_confidence",
    "no_decrease",
    "no_increase",
    "parse_constraint",
    "schema_domain_constraints",
    "tokenize",
]
