"""Core contribution: candidate generation, insights and the system facade."""

from repro.core.candidates import (
    Candidate,
    CandidateGenerator,
    SearchStats,
    brute_force_tree_candidates,
    engine_names,
    search_counter_totals,
)
from repro.core.diversity import (
    diverse_order,
    min_pairwise_distance,
    select_diverse,
    select_diverse_batch,
    select_greedy,
)
from repro.core.evaluation import CandidateSetReport, evaluate_session
from repro.core.fused import (
    EpochProposalCache,
    FusedCell,
    FusedReport,
    generate_fused,
)
from repro.core.insights import QUESTIONS, Insight, InsightEngine, PlanAlternative
from repro.core.moves import (
    GradientMoveProposer,
    MoveProposer,
    RandomMoveProposer,
    ThresholdMoveProposer,
    default_proposers,
)
from repro.core.objectives import (
    OBJECTIVE_PRESETS,
    CandidateMetrics,
    Objective,
    get_objective,
    measure,
)
from repro.core.orchestrator import EpochOutcome, RefreshOrchestrator
from repro.core.persistence import load_system, save_system
from repro.core.plans import FeatureChange, Plan, build_plan
from repro.core.scheduler import (
    DriftDecision,
    DriftGate,
    RefreshEpoch,
    RefreshScheduler,
)
from repro.core.system import AdminConfig, JustInTime, RefreshReport, UserSession
from repro.core.worker import (
    PoolReport,
    WorkerReport,
    drain_stale_cells,
    run_worker_pool,
)

__all__ = [
    "AdminConfig",
    "Candidate",
    "CandidateGenerator",
    "CandidateMetrics",
    "CandidateSetReport",
    "evaluate_session",
    "DriftDecision",
    "DriftGate",
    "EpochOutcome",
    "EpochProposalCache",
    "FeatureChange",
    "FusedCell",
    "FusedReport",
    "generate_fused",
    "GradientMoveProposer",
    "Insight",
    "InsightEngine",
    "PlanAlternative",
    "JustInTime",
    "MoveProposer",
    "OBJECTIVE_PRESETS",
    "Objective",
    "Plan",
    "PoolReport",
    "QUESTIONS",
    "RandomMoveProposer",
    "RefreshEpoch",
    "RefreshOrchestrator",
    "RefreshReport",
    "RefreshScheduler",
    "SearchStats",
    "ThresholdMoveProposer",
    "UserSession",
    "WorkerReport",
    "brute_force_tree_candidates",
    "build_plan",
    "drain_stale_cells",
    "engine_names",
    "search_counter_totals",
    "load_system",
    "save_system",
    "default_proposers",
    "get_objective",
    "measure",
    "diverse_order",
    "min_pairwise_distance",
    "run_worker_pool",
    "select_diverse",
    "select_diverse_batch",
    "select_greedy",
]
