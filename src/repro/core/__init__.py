"""Core contribution: candidate generation, insights and the system facade."""

from repro.core.candidates import (
    Candidate,
    CandidateGenerator,
    SearchStats,
    brute_force_tree_candidates,
)
from repro.core.diversity import min_pairwise_distance, select_diverse, select_greedy
from repro.core.evaluation import CandidateSetReport, evaluate_session
from repro.core.insights import QUESTIONS, Insight, InsightEngine
from repro.core.moves import (
    GradientMoveProposer,
    MoveProposer,
    RandomMoveProposer,
    ThresholdMoveProposer,
    default_proposers,
)
from repro.core.objectives import (
    OBJECTIVE_PRESETS,
    CandidateMetrics,
    Objective,
    get_objective,
    measure,
)
from repro.core.persistence import load_system, save_system
from repro.core.plans import FeatureChange, Plan, build_plan
from repro.core.system import AdminConfig, JustInTime, RefreshReport, UserSession

__all__ = [
    "AdminConfig",
    "Candidate",
    "CandidateGenerator",
    "CandidateMetrics",
    "CandidateSetReport",
    "evaluate_session",
    "FeatureChange",
    "GradientMoveProposer",
    "Insight",
    "InsightEngine",
    "JustInTime",
    "MoveProposer",
    "OBJECTIVE_PRESETS",
    "Objective",
    "Plan",
    "QUESTIONS",
    "RandomMoveProposer",
    "RefreshReport",
    "SearchStats",
    "ThresholdMoveProposer",
    "UserSession",
    "brute_force_tree_candidates",
    "build_plan",
    "load_system",
    "save_system",
    "default_proposers",
    "get_objective",
    "measure",
    "min_pairwise_distance",
    "select_diverse",
    "select_greedy",
]
