"""Action plans: the user-facing view of a candidate.

A candidate is a vector; a *plan* is what the UI's "Plans and Insights"
screen shows — per-feature actions ("decrease monthly_debt by $600
(-23%)"), the time point to reapply at, and the expected confidence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import Candidate
from repro.data.schema import DatasetSchema

__all__ = ["FeatureChange", "Plan", "build_plan"]


@dataclass(frozen=True)
class FeatureChange:
    """One per-feature action in a plan."""

    feature: str
    from_value: float
    to_value: float

    @property
    def delta(self) -> float:
        return self.to_value - self.from_value

    @property
    def pct(self) -> float | None:
        """Relative change in percent; ``None`` when the base is zero."""
        if self.from_value == 0:
            return None
        return 100.0 * self.delta / abs(self.from_value)

    def describe(self) -> str:
        verb = "increase" if self.delta > 0 else "decrease"
        amount = f"{abs(self.delta):,.6g}"
        pct = self.pct
        suffix = f" ({pct:+.0f}%)" if pct is not None else ""
        return (
            f"{verb} {self.feature} from {self.from_value:,.6g}"
            f" to {self.to_value:,.6g} [{'+' if self.delta > 0 else '-'}{amount}]"
            f"{suffix}"
        )


@dataclass(frozen=True)
class Plan:
    """A complete reapplication plan derived from one candidate."""

    time: int
    time_value: float
    confidence: float
    diff: float
    gap: int
    changes: tuple[FeatureChange, ...]

    def describe(self) -> str:
        """Multi-line verbal rendering for the insights screen."""
        header = (
            f"At time point t={self.time} (≈ {self.time_value:.1f}),"
            f" expected confidence {self.confidence:.2f}"
            f" with {self.gap} feature change(s), effort (diff) {self.diff:.3f}:"
        )
        if not self.changes:
            return header + "\n  - reapply with no modifications"
        lines = [f"  - {change.describe()}" for change in self.changes]
        return "\n".join([header, *lines])


def build_plan(
    candidate: Candidate,
    x_base,
    schema: DatasetSchema,
    *,
    time_value: float | None = None,
) -> Plan:
    """Turn a candidate (vs its temporal input) into a plan.

    ``x_base`` must be the temporal input at the candidate's time point;
    differences against it are genuine user actions, not time drift.
    """
    x_base = np.asarray(x_base, dtype=float).ravel()
    changes = tuple(
        FeatureChange(name, from_value, to_value)
        for name, (from_value, to_value) in candidate.changes(x_base, schema).items()
    )
    return Plan(
        time=candidate.time,
        time_value=float(time_value if time_value is not None else candidate.time),
        confidence=candidate.confidence,
        diff=candidate.diff,
        gap=candidate.gap,
        changes=changes,
    )
