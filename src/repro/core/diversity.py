"""Diverse top-k selection.

"Since A_t may be arbitrarily large, whereas we are interested in a small,
optimized and diverse subset per each time point ... The diversity ensures
that limiting the number of candidates does not lead to a degradation in
the quality of the answers to user queries" (§II.B).

:func:`select_diverse` implements greedy max-min selection: the best
candidate under the objective seeds the set, then each step adds the
candidate maximising its minimum (scaled) distance to the already-selected
ones, with objective quality as the tie-breaker.  :func:`min_pairwise_distance`
is the diversity score reported by the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CandidateSearchError

__all__ = ["select_diverse", "select_greedy", "min_pairwise_distance"]


def _scaled(points: np.ndarray, scale) -> np.ndarray:
    if scale is None:
        return points
    scale = np.asarray(scale, dtype=float).ravel()
    return points / scale


def select_diverse(
    points: np.ndarray,
    quality: np.ndarray,
    k: int,
    *,
    scale=None,
    quality_weight: float = 0.25,
) -> list[int]:
    """Pick ``k`` indices balancing diversity and quality.

    Parameters
    ----------
    points:
        ``(n, d)`` candidate vectors.
    quality:
        Per-candidate objective key, lower = better.
    k:
        Selection size (all indices returned when ``n <= k``).
    scale:
        Optional per-feature divisors for the distance computation.
    quality_weight:
        Trade-off in the greedy step: each step maximises
        ``min_dist - quality_weight * normalised_quality``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    quality = np.asarray(quality, dtype=float).ravel()
    n = points.shape[0]
    if quality.shape[0] != n:
        raise CandidateSearchError("points and quality disagree on length")
    if k < 1:
        raise CandidateSearchError("k must be >= 1")
    if n <= k:
        return list(np.argsort(quality, kind="stable"))
    scaled = _scaled(points, scale)
    spread = quality.max() - quality.min()
    normalised_quality = (
        (quality - quality.min()) / spread if spread > 0 else np.zeros(n)
    )
    selected = [int(np.argmin(quality))]
    # distance from every point to the nearest selected point
    min_dist = np.linalg.norm(scaled - scaled[selected[0]], axis=1)
    while len(selected) < k:
        score = min_dist - quality_weight * normalised_quality * (
            min_dist.max() if min_dist.max() > 0 else 1.0
        )
        score[selected] = -np.inf
        pick = int(np.argmax(score))
        selected.append(pick)
        min_dist = np.minimum(
            min_dist, np.linalg.norm(scaled - scaled[pick], axis=1)
        )
    return selected


def select_greedy(quality: np.ndarray, k: int) -> list[int]:
    """Quality-only top-k (the non-diverse baseline for the ablation)."""
    quality = np.asarray(quality, dtype=float).ravel()
    if k < 1:
        raise CandidateSearchError("k must be >= 1")
    order = np.argsort(quality, kind="stable")
    return list(order[:k])


def min_pairwise_distance(points: np.ndarray, scale=None) -> float:
    """Smallest pairwise distance within a selection (diversity measure)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = points.shape[0]
    if n < 2:
        return float("inf")
    scaled = _scaled(points, scale)
    best = float("inf")
    for i in range(n - 1):
        dist = np.linalg.norm(scaled[i + 1 :] - scaled[i], axis=1)
        best = min(best, float(dist.min()))
    return best
