"""Diverse top-k selection.

"Since A_t may be arbitrarily large, whereas we are interested in a small,
optimized and diverse subset per each time point ... The diversity ensures
that limiting the number of candidates does not lead to a degradation in
the quality of the answers to user queries" (§II.B).

:func:`select_diverse` implements greedy max-min selection: the best
candidate under the objective seeds the set, then each step adds the
candidate maximising its minimum (scaled) distance to the already-selected
ones, with objective quality as the tie-breaker.  :func:`diverse_order`
is the same selection but also reports, for every chosen plan, its
distance to the nearest earlier pick — the per-plan diversity metadata
persisted with stored plan sets.  :func:`select_diverse_batch` runs the
identical greedy selection for many stacked cells at once (grouped
pairwise distances, one vectorised step loop instead of a Python loop
per cell) and is bit-for-bit equivalent to calling :func:`diverse_order`
per cell.  :func:`min_pairwise_distance` is the diversity score reported
by the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CandidateSearchError

__all__ = [
    "diverse_order",
    "min_pairwise_distance",
    "select_diverse",
    "select_diverse_batch",
    "select_greedy",
]


def _scaled(points: np.ndarray, scale) -> np.ndarray:
    if scale is None:
        return points
    scale = np.asarray(scale, dtype=float).ravel()
    if np.any(scale < 0.0):
        raise CandidateSearchError("scale entries must be non-negative")
    # a zero entry (constant feature) would divide to inf/nan and corrupt
    # every distance; a unit divisor leaves the feature's raw spread intact
    if np.any(scale == 0.0):
        scale = np.where(scale == 0.0, 1.0, scale)
    return points / scale


def select_diverse(
    points: np.ndarray,
    quality: np.ndarray,
    k: int,
    *,
    scale=None,
    quality_weight: float = 0.25,
) -> list[int]:
    """Pick ``k`` indices balancing diversity and quality.

    Parameters
    ----------
    points:
        ``(n, d)`` candidate vectors.
    quality:
        Per-candidate objective key, lower = better.
    k:
        Selection size (all indices returned when ``n <= k``).
    scale:
        Optional per-feature divisors for the distance computation.
    quality_weight:
        Trade-off in the greedy step: each step maximises
        ``min_dist - quality_weight * normalised_quality``.
    """
    selected, _ = diverse_order(
        points, quality, k, scale=scale, quality_weight=quality_weight
    )
    return selected


def diverse_order(
    points: np.ndarray,
    quality: np.ndarray,
    k: int,
    *,
    scale=None,
    quality_weight: float = 0.25,
) -> tuple[list[int], list[float]]:
    """:func:`select_diverse` plus per-pick min-distance metadata.

    Returns ``(selected, min_dists)`` where ``min_dists[r]`` is the scaled
    distance from the rank-``r`` pick to its nearest earlier pick
    (``inf`` for the seed).  When ``n <= k`` the selection degenerates to
    the stable quality order, exactly as :func:`select_diverse` always
    has, and the distances are reported for that order.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    quality = np.asarray(quality, dtype=float).ravel()
    n = points.shape[0]
    if quality.shape[0] != n:
        raise CandidateSearchError("points and quality disagree on length")
    if k < 1:
        raise CandidateSearchError("k must be >= 1")
    scaled = _scaled(points, scale)
    if n <= k:
        order = [int(i) for i in np.argsort(quality, kind="stable")]
        min_dist = np.full(n, np.inf)
        dists: list[float] = []
        for pick in order:
            dists.append(float(min_dist[pick]))
            min_dist = np.minimum(
                min_dist, np.linalg.norm(scaled - scaled[pick], axis=1)
            )
        return order, dists
    spread = quality.max() - quality.min()
    normalised_quality = (
        (quality - quality.min()) / spread if spread > 0 else np.zeros(n)
    )
    selected = [int(np.argmin(quality))]
    dists = [float("inf")]
    # distance from every point to the nearest selected point
    min_dist = np.linalg.norm(scaled - scaled[selected[0]], axis=1)
    while len(selected) < k:
        score = min_dist - quality_weight * normalised_quality * (
            min_dist.max() if min_dist.max() > 0 else 1.0
        )
        score[selected] = -np.inf
        pick = int(np.argmax(score))
        selected.append(pick)
        dists.append(float(min_dist[pick]))
        min_dist = np.minimum(
            min_dist, np.linalg.norm(scaled - scaled[pick], axis=1)
        )
    return selected, dists


def select_diverse_batch(
    points: np.ndarray,
    quality: np.ndarray,
    group_sizes,
    ks,
    *,
    scale=None,
    quality_weight: float = 0.25,
) -> list[tuple[list[int], list[float]]]:
    """Run :func:`diverse_order` for many stacked cells in one pass.

    ``points``/``quality`` hold every cell's pool stacked group-contiguous;
    ``group_sizes[g]`` rows belong to cell ``g`` and ``ks[g]`` (or a single
    int shared by all cells) is its selection size.  Returns one
    ``(selected, min_dists)`` pair per cell with *cell-local* indices,
    bit-for-bit identical to the per-cell call: the same elementwise
    distance, normalisation and score arithmetic runs on the same
    operands, only batched across cells, and ties break on the first
    (lowest-index) maximum exactly like ``np.argmax``.  The only Python
    loop is over selection steps (``max(ks)``), never over cells.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    quality = np.asarray(quality, dtype=float).ravel()
    sizes = np.asarray(group_sizes, dtype=int).ravel()
    n_groups = sizes.shape[0]
    if np.isscalar(ks):
        k_arr = np.full(n_groups, int(ks), dtype=int)
    else:
        k_arr = np.asarray(ks, dtype=int).ravel()
    if k_arr.shape[0] != n_groups:
        raise CandidateSearchError("group_sizes and ks disagree on length")
    if n_groups and (sizes < 1).any():
        raise CandidateSearchError("group sizes must be >= 1")
    if n_groups and (k_arr < 1).any():
        raise CandidateSearchError("k must be >= 1")
    total = int(sizes.sum())
    if points.shape[0] != total or quality.shape[0] != total:
        raise CandidateSearchError(
            "points and quality must stack exactly group_sizes rows"
        )
    if not n_groups:
        return []
    scaled = _scaled(points, scale)
    starts = np.zeros(n_groups, dtype=int)
    np.cumsum(sizes[:-1], out=starts[1:])
    group_ids = np.repeat(np.arange(n_groups), sizes)

    # per-group quality stats; max/min are order-independent so reduceat
    # matches the per-cell quality.max()/quality.min() exactly
    q_min = np.minimum.reduceat(quality, starts)
    q_max = np.maximum.reduceat(quality, starts)
    spread = q_max - q_min
    has_spread = spread[group_ids] > 0
    denom = np.where(has_spread, spread[group_ids], 1.0)
    normalised_quality = np.where(
        has_spread, (quality - q_min[group_ids]) / denom, 0.0
    )

    # stable per-group quality order: primary key group, secondary quality;
    # lexsort is stable, so ties keep the original (lowest-index) order —
    # the same order np.argsort(quality, kind="stable") yields per cell
    quality_order = np.lexsort((quality, group_ids))

    small = sizes <= k_arr  # degenerate cells: selection == quality order
    n_steps = np.where(small, sizes, k_arr)
    taken = np.zeros(total, dtype=bool)
    min_dist = np.full(total, np.inf)
    picks: list[np.ndarray] = []
    pick_dists: list[np.ndarray] = []
    for step in range(int(n_steps.max())):
        active = n_steps > step
        step_pick = np.full(n_groups, -1, dtype=int)
        forced = active & small
        if step == 0:
            # seed = stable argmin(quality), for every cell at once
            step_pick[active] = quality_order[starts[active]]
        else:
            if forced.any():
                step_pick[forced] = quality_order[starts[forced] + step]
            greedy = active & ~small
            if greedy.any():
                max_dist = np.maximum.reduceat(min_dist, starts)
                score = min_dist - quality_weight * normalised_quality * (
                    np.where(max_dist > 0, max_dist, 1.0)[group_ids]
                )
                score[taken] = -np.inf
                # first-max per group: stable lexsort on (group, -score)
                # keeps the lowest index among ties, like np.argmax
                order = np.lexsort((-score, group_ids))
                step_pick[greedy] = order[starts[greedy]]
        dist_at_pick = np.full(n_groups, np.inf)
        dist_at_pick[active] = min_dist[step_pick[active]]
        taken[step_pick[active]] = True
        picks.append(step_pick)
        pick_dists.append(dist_at_pick)
        # one grouped distance update: every row measures against its own
        # cell's newest pick, the same np.linalg.norm(..., axis=1) rows
        # the per-cell loop computes
        row_active = active[group_ids]
        pick_rows = step_pick[group_ids]
        dist = np.linalg.norm(scaled - scaled[np.abs(pick_rows)], axis=1)
        min_dist[row_active] = np.minimum(
            min_dist[row_active], dist[row_active]
        )

    results: list[tuple[list[int], list[float]]] = []
    for g in range(n_groups):
        chosen = [
            int(picks[step][g] - starts[g])
            for step in range(int(n_steps[g]))
        ]
        dists = [float(pick_dists[step][g]) for step in range(int(n_steps[g]))]
        results.append((chosen, dists))
    return results


def select_greedy(quality: np.ndarray, k: int) -> list[int]:
    """Quality-only top-k (the non-diverse baseline for the ablation)."""
    quality = np.asarray(quality, dtype=float).ravel()
    if k < 1:
        raise CandidateSearchError("k must be >= 1")
    order = np.argsort(quality, kind="stable")
    return list(order[:k])


def min_pairwise_distance(points: np.ndarray, scale=None) -> float:
    """Smallest pairwise distance within a selection (diversity measure)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = points.shape[0]
    if n < 2:
        return float("inf")
    scaled = _scaled(points, scale)
    # one cdist-style broadcast replaces the former O(n^2) Python loop;
    # only the strict upper triangle holds distinct pairs
    dist = np.linalg.norm(scaled[:, None, :] - scaled[None, :, :], axis=2)
    return float(dist[np.triu_indices(n, k=1)].min())
