"""Drift-triggered streaming refresh scheduling.

PR 2 made :meth:`~repro.core.system.JustInTime.refresh` incremental; this
module decides *when* to call it.  A :class:`RefreshScheduler` polls an
append-only :class:`~repro.data.feed.DataFeed`, buffers arriving rows,
and opens a **refresh epoch** — one ``refresh()`` call over everything
buffered — when either

* a :class:`DriftGate` decides the pending rows have drifted away from
  the training history (MMD on standardised features, or label-shift
  against the most recent history window — the same RKHS machinery as
  :mod:`repro.temporal.drift`), or
* a fixed **cadence** has elapsed since the last refresh, or
* the pending buffer hits a row cap (back-pressure so a quiet gate can
  never let the buffer grow without bound).

Drift gating is the cheap path: assessing a batch costs two mean
embeddings, while a refresh refits every future model and recomputes
every stale (user × time-point) cell.  On a stationary stream the gate
never fires and the system does no work beyond buffering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TemporalDataset
from repro.data.feed import DataFeed
from repro.exceptions import ForecastError
from repro.ml.preprocessing import StandardScaler
from repro.temporal.embedding import (
    RBFKernel,
    WeightedSample,
    median_heuristic_gamma,
    mmd,
)

__all__ = ["DriftDecision", "DriftGate", "RefreshEpoch", "RefreshScheduler"]


@dataclass(frozen=True)
class DriftDecision:
    """One :meth:`DriftGate.assess` verdict over a pending batch."""

    #: MMD between the pending batch and the reference window (``None``
    #: when no MMD threshold is configured)
    mmd: float | None
    mmd_threshold: float | None
    #: absolute difference in positive-label rate vs the reference
    label_shift: float | None
    label_shift_threshold: float | None
    #: whether the batch was large enough to assess at all
    assessed: bool
    #: final verdict: any configured threshold exceeded
    drifted: bool


class DriftGate:
    """Decides whether pending rows drifted from the training history.

    Parameters
    ----------
    mmd_threshold:
        Fire when the MMD between the (standardised) pending batch and
        the reference window exceeds this.  Calibrate against
        :func:`repro.temporal.drift.mmd_drift_profile` of the history —
        a threshold around the profile's ceiling means "as different as
        the strongest year-over-year drift seen in training".
    label_shift_threshold:
        Fire when the positive-rate difference vs the reference window
        exceeds this (prior drift can move while covariates stay put).
    min_samples:
        Batches smaller than this are never assessed (``assessed=False``
        and ``drifted=False``): tiny-batch MMD is sampling noise, so the
        scheduler keeps buffering instead.
    reference_width:
        Width (in timestamp units) of the trailing history window used
        as the "present" reference distribution.
    """

    def __init__(
        self,
        mmd_threshold: float | None = None,
        label_shift_threshold: float | None = None,
        *,
        min_samples: int = 20,
        reference_width: float = 1.0,
    ):
        if mmd_threshold is None and label_shift_threshold is None:
            raise ForecastError(
                "DriftGate needs mmd_threshold and/or label_shift_threshold"
            )
        if reference_width <= 0:
            raise ForecastError("reference_width must be positive")
        self.mmd_threshold = mmd_threshold
        self.label_shift_threshold = label_shift_threshold
        self.min_samples = int(min_samples)
        self.reference_width = float(reference_width)
        # per-history RKHS setup (scaler + kernel + reference embedding):
        # rebuilt only when the history object changes, i.e. once per
        # refresh epoch, not once per poll.  The key is a strong
        # reference compared by identity — an id() key would collide
        # when CPython reuses a freed history's address, silently
        # assessing drift against a stale reference
        self._cache_history: TemporalDataset | None = None
        self._cache: tuple | None = None

    def _reference_setup(self, history: TemporalDataset):
        if self._cache_history is not history:
            lo, hi = history.span
            start = max(lo, hi - self.reference_width)
            reference = history.window(start, np.nextafter(hi, np.inf))
            scaler = StandardScaler().fit(history.X)
            kernel = RBFKernel(median_heuristic_gamma(scaler.transform(history.X)))
            embedding = WeightedSample.mean_embedding(
                scaler.transform(reference.X)
            )
            self._cache_history = history
            self._cache = (scaler, kernel, embedding, float(reference.y.mean()))
        return self._cache

    def assess(
        self,
        history: TemporalDataset,
        pending: TemporalDataset,
        weights: np.ndarray | None = None,
    ) -> DriftDecision:
        """Compare ``pending`` against the trailing window of ``history``.

        ``weights`` (optional, one non-negative value per pending row)
        turns both statistics into their weighted forms: the batch
        embedding becomes ``Σ w_i φ(x_i) / Σ w_i`` and the positive rate
        a weighted mean — the scheduler's exponentially-weighted pending
        window assesses recent arrivals more than stale buffered rows.
        """
        if len(pending) < self.min_samples:
            return DriftDecision(
                mmd=None,
                mmd_threshold=self.mmd_threshold,
                label_shift=None,
                label_shift_threshold=self.label_shift_threshold,
                assessed=False,
                drifted=False,
            )
        if weights is not None:
            weights = np.asarray(weights, dtype=float).ravel()
            if weights.shape[0] != len(pending):
                raise ForecastError(
                    f"{weights.shape[0]} weights for {len(pending)} pending rows"
                )
            total = float(weights.sum())
            if np.any(weights < 0) or total <= 0:
                raise ForecastError(
                    "weights must be non-negative with a positive sum"
                )
            weights = weights / total
        scaler, kernel, reference, reference_rate = self._reference_setup(history)
        observed_mmd = None
        if self.mmd_threshold is not None:
            standardised = scaler.transform(pending.X)
            batch = (
                WeightedSample.mean_embedding(standardised)
                if weights is None
                else WeightedSample(standardised, weights)
            )
            observed_mmd = float(mmd(kernel, reference, batch))
        shift = None
        if self.label_shift_threshold is not None:
            rate = (
                pending.y.mean()
                if weights is None
                else float(weights @ pending.y)
            )
            shift = float(abs(rate - reference_rate))
        drifted = (
            self.mmd_threshold is not None
            and observed_mmd is not None
            and observed_mmd > self.mmd_threshold
        ) or (
            self.label_shift_threshold is not None
            and shift is not None
            and shift > self.label_shift_threshold
        )
        return DriftDecision(
            mmd=observed_mmd,
            mmd_threshold=self.mmd_threshold,
            label_shift=shift,
            label_shift_threshold=self.label_shift_threshold,
            assessed=True,
            drifted=drifted,
        )


@dataclass(frozen=True)
class RefreshEpoch:
    """One scheduler-triggered refresh over the buffered rows."""

    index: int
    #: rows ingested by this epoch's refresh
    rows: int
    #: what opened the epoch: ``'drift'``, ``'cadence'``, ``'pending-cap'``
    #: or ``'flush'`` (explicit/final flush)
    trigger: str
    #: the gate verdict that (did or did not) fire, ``None`` without a gate
    drift: DriftDecision | None
    #: the underlying refresh outcome
    report: object


class RefreshScheduler:
    """Streaming refresh driver over one system and one feed.

    Parameters
    ----------
    system:
        A fitted :class:`~repro.core.system.JustInTime` with registered
        (or resumed) sessions and a training history.
    feed:
        Source of newly arrived labeled rows.
    gate:
        Optional :class:`DriftGate`; when given, drift fires a refresh
        regardless of cadence.
    cadence:
        Optional seconds (of ``clock``) between refreshes; elapsed
        cadence with pending rows fires a refresh even without drift.
        At least one of ``gate`` / ``cadence`` is required.
    min_batch:
        Buffer at least this many rows before any trigger may fire.
    max_pending_rows:
        Hard cap on the buffer; reaching it forces a refresh
        (back-pressure for quiet gates).
    warm_start:
        Forwarded to :meth:`JustInTime.refresh` (``None`` = the config
        default).
    clock:
        Monotonic-seconds source, injectable in tests.
    gate_mode:
        How the gate sees the pending rows.  ``'merged'`` (default, the
        original behaviour) assesses the whole concatenated buffer —
        which lets quiet buffered rows dilute a drifted batch below the
        threshold.  ``'batch'`` assesses each polled batch on arrival
        (small polls accumulate until ``gate.min_samples`` rows) and a
        drifted verdict **sticks** until the next epoch, so a drifted
        batch buried under later quiet arrivals still fires.  ``'ewma'``
        assesses the merged buffer under exponentially decaying weights
        (recent batches count more; see ``ewma_halflife``) — a softer
        compromise that still ages quiet rows out of the statistic.
    ewma_halflife:
        Half-life, in *batches*, of the ``'ewma'`` weights: a row's
        weight halves every this many batches that arrive after it.
    budget:
        Optional per-epoch compute budget, in cells: each inline epoch
        recomputes at most ``budget + carryover`` cells (highest
        priority first — see :meth:`JustInTime.refresh`), where the
        carry-over is the previous epoch's unspent budget, itself capped
        at one epoch's worth so an idle stretch cannot bank an unbounded
        burst.  Ignored when an external ``refresh`` executor is
        injected (the orchestrator runs its own durable budget through
        the store).
    refresh:
        The epoch executor, ``callable(data, warm_start) -> report``;
        defaults to ``system.refresh``.  The orchestrator substitutes
        refit + worker-pool dispatch here, reusing all the
        buffering/gating machinery above it.
    """

    GATE_MODES = ("merged", "batch", "ewma")

    def __init__(
        self,
        system,
        feed: DataFeed,
        *,
        gate: DriftGate | None = None,
        cadence: float | None = None,
        min_batch: int = 1,
        max_pending_rows: int | None = None,
        warm_start: bool | None = None,
        clock=time.monotonic,
        gate_mode: str = "merged",
        ewma_halflife: float = 2.0,
        budget: int | None = None,
        refresh=None,
    ):
        if gate is None and cadence is None:
            raise ForecastError(
                "RefreshScheduler needs a DriftGate and/or a cadence"
            )
        if cadence is not None and cadence < 0:
            raise ForecastError("cadence must be >= 0")
        if min_batch < 1:
            raise ForecastError("min_batch must be >= 1")
        if gate_mode not in self.GATE_MODES:
            raise ForecastError(
                f"gate_mode must be one of {self.GATE_MODES}, got {gate_mode!r}"
            )
        if gate_mode != "merged" and gate is None:
            raise ForecastError(
                f"gate_mode {gate_mode!r} needs a DriftGate"
            )
        if ewma_halflife <= 0:
            raise ForecastError("ewma_halflife must be positive")
        if budget is not None and budget < 1:
            raise ForecastError("budget must be >= 1 or None")
        self.system = system
        self.feed = feed
        self.gate = gate
        self.cadence = cadence
        self.min_batch = int(min_batch)
        self.max_pending_rows = max_pending_rows
        self.warm_start = warm_start
        self.clock = clock
        self.gate_mode = gate_mode
        self.ewma_halflife = float(ewma_halflife)
        self.budget = None if budget is None else int(budget)
        #: unspent budget carried into the next epoch (capped at one
        #: epoch's ``budget``)
        self.carryover = 0
        self._refresh = refresh
        self.epochs: list[RefreshEpoch] = []
        self._pending: list[TemporalDataset] = []
        self._pending_rows = 0
        self._last_refresh = float(clock())
        # last gate verdict, keyed on the buffer size it was computed
        # for: idle polls (feed returned nothing) re-use it instead of
        # re-embedding the whole unchanged pending buffer every poll
        self._assessed: tuple[int, DriftDecision] | None = None
        # 'batch' mode state: polled rows not yet assessed (arrivals
        # smaller than the gate's min_samples accumulate until one
        # assessment covers them) and the sticky drifted verdict
        self._unassessed: list[TemporalDataset] = []
        self._sticky: DriftDecision | None = None
        self._last_batch_decision: DriftDecision | None = None

    # ---------------------------------------------------------------- state

    @property
    def pending_rows(self) -> int:
        """Rows buffered but not yet refreshed into the system."""
        return self._pending_rows

    # ---------------------------------------------------------------- steps

    def poll_once(self) -> RefreshEpoch | None:
        """One scheduler step: poll the feed, maybe open an epoch.

        Returns the epoch if a refresh ran, else ``None`` (no new data,
        or data buffered below every trigger).
        """
        batch = self.feed.poll()
        if batch is not None and len(batch):
            self._pending.append(batch)
            self._pending_rows += len(batch)
            if self.gate is not None and self.gate_mode == "batch":
                self._assess_arrival(batch)
        if self._pending_rows < self.min_batch:
            return None
        decision = None
        trigger = None
        if self.gate is not None:
            decision = self._gate_decision()
            if decision is not None and decision.drifted:
                trigger = "drift"
        if trigger is None and self.cadence is not None:
            if float(self.clock()) - self._last_refresh >= self.cadence:
                trigger = "cadence"
        if trigger is None and self.max_pending_rows is not None:
            if self._pending_rows >= self.max_pending_rows:
                trigger = "pending-cap"
        if trigger is None:
            return None
        return self._open_epoch(trigger, decision)

    def _assess_arrival(self, batch: TemporalDataset) -> None:
        """'batch' mode: assess newly polled rows on arrival.

        Arrivals smaller than the gate's ``min_samples`` accumulate in
        an unassessed tail until one assessment can cover them; a
        drifted verdict sticks (``self._sticky``) until the next epoch,
        so quiet rows arriving later can never bury it.
        """
        self._unassessed.append(batch)
        tail = (
            self._unassessed[0]
            if len(self._unassessed) == 1
            else TemporalDataset.concat(self._unassessed)
        )
        if len(tail) < self.gate.min_samples:
            return
        decision = self.gate.assess(self.system.history, tail)
        self._unassessed = []
        self._last_batch_decision = decision
        if decision.drifted and self._sticky is None:
            self._sticky = decision

    def _gate_decision(self) -> DriftDecision | None:
        """The gate verdict for the current pending buffer, per mode."""
        if self.gate_mode == "batch":
            return (
                self._sticky
                if self._sticky is not None
                else self._last_batch_decision
            )
        if self._assessed is not None and self._assessed[0] == self._pending_rows:
            return self._assessed[1]  # buffer unchanged since last poll
        pending = TemporalDataset.concat(self._pending)
        weights = self._ewma_weights() if self.gate_mode == "ewma" else None
        decision = self.gate.assess(self.system.history, pending, weights=weights)
        self._assessed = (self._pending_rows, decision)
        return decision

    def _ewma_weights(self) -> np.ndarray:
        """Per-row weights decaying with batch age: the newest batch has
        weight 1, a batch ``a`` arrivals older ``0.5 ** (a / halflife)``.
        Ages are measured in buffered batches, so idle polls change
        nothing and the pending-size cache stays valid.

        ``TemporalDataset`` re-sorts rows by timestamp on construction,
        so the arrival-order weights are permuted by the same stable
        argsort :meth:`TemporalDataset.concat` applies — weight ``i``
        lands on the row it was computed for.
        """
        newest = len(self._pending) - 1
        raw = np.concatenate(
            [
                np.full(
                    len(batch),
                    0.5 ** ((newest - i) / self.ewma_halflife),
                )
                for i, batch in enumerate(self._pending)
            ]
        )
        timestamps = np.concatenate(
            [batch.timestamps for batch in self._pending]
        )
        return raw[np.argsort(timestamps, kind="stable")]

    def flush(self) -> RefreshEpoch | None:
        """Refresh whatever is pending right now, bypassing the gates
        (end of a finite stream, or operator-forced)."""
        if not self._pending_rows:
            return None
        return self._open_epoch("flush", None)

    def _open_epoch(self, trigger: str, decision) -> RefreshEpoch:
        data = TemporalDataset.concat(self._pending)
        if self._refresh is None:
            if self.budget is None:
                report = self.system.refresh(data, warm_start=self.warm_start)
            else:
                effective = self.budget + self.carryover
                report = self.system.refresh(
                    data, warm_start=self.warm_start, budget=effective
                )
                spent = int(getattr(report, "cells_recomputed", effective))
                self.carryover = min(max(0, effective - spent), self.budget)
        else:
            report = self._refresh(data, self.warm_start)
        epoch = RefreshEpoch(
            index=len(self.epochs),
            rows=len(data),
            trigger=trigger,
            drift=decision,
            report=report,
        )
        self.epochs.append(epoch)
        self._pending = []
        self._pending_rows = 0
        self._assessed = None
        self._unassessed = []
        self._sticky = None
        self._last_batch_decision = None
        self._last_refresh = float(self.clock())
        return epoch

    def run(
        self,
        *,
        max_polls: int | None = None,
        max_epochs: int | None = None,
        poll_interval: float = 0.0,
        sleep=time.sleep,
        on_epoch=None,
        flush_on_exhausted: bool = True,
    ) -> list[RefreshEpoch]:
        """Poll until the feed is exhausted or a budget is reached.

        ``on_epoch(epoch)`` is called after every refresh (the CLI daemon
        persists the refit system there).  With ``flush_on_exhausted`` a
        finite feed's sub-threshold tail still gets refreshed before the
        loop ends.  Returns the epochs run during *this* call.
        """
        first_epoch = len(self.epochs)
        polls = 0
        while True:
            if max_polls is not None and polls >= max_polls:
                break
            if max_epochs is not None and (
                len(self.epochs) - first_epoch >= max_epochs
            ):
                break
            epoch = self.poll_once()
            polls += 1
            if epoch is not None and on_epoch is not None:
                on_epoch(epoch)
            if self.feed.exhausted:
                if flush_on_exhausted:
                    final = self.flush()
                    if final is not None and on_epoch is not None:
                        on_epoch(final)
                break
            if epoch is None and poll_interval > 0:
                sleep(poll_interval)
        return self.epochs[first_epoch:]
