"""Candidate objectives: diff, gap and confidence (§II.A).

The adapted search of [5] "incorporat[es] diverse objectives (confidence,
gap and diff) ... as opposed to a single distance measure".  This module
defines the measurement of those three quantities for a candidate (one
shared definition with the constraints layer) and scalarisations used to
rank beam states and final candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.evaluate import l0_gap, l0_gap_batch, l2_diff, l2_diff_batch
from repro.exceptions import CandidateSearchError

__all__ = [
    "CandidateMetrics",
    "BatchCandidateMetrics",
    "measure",
    "measure_batch",
    "Objective",
    "OBJECTIVE_PRESETS",
]


@dataclass(frozen=True)
class CandidateMetrics:
    """The three special properties of one candidate.

    ``diff`` is measured in the (optionally scaled) l2 sense against the
    temporal input; ``gap`` is the modified-coordinate count;
    ``confidence`` is the model score ``M_t(x')``.
    """

    diff: float
    gap: int
    confidence: float


def measure(x_prime, x_base, confidence: float, diff_scale=None) -> CandidateMetrics:
    """Compute the metrics triple for candidate ``x_prime``."""
    return CandidateMetrics(
        diff=l2_diff(x_prime, x_base, diff_scale),
        gap=l0_gap(x_prime, x_base),
        confidence=float(confidence),
    )


@dataclass(frozen=True)
class BatchCandidateMetrics:
    """Metrics of ``n`` candidates as three aligned ``(n,)`` arrays.

    ``row(i)`` recovers the scalar :class:`CandidateMetrics` of one row,
    bit-identical to calling :func:`measure` on that row alone.
    """

    diff: np.ndarray
    gap: np.ndarray
    confidence: np.ndarray

    def __len__(self) -> int:
        return self.diff.shape[0]

    def row(self, i: int) -> CandidateMetrics:
        return CandidateMetrics(
            diff=float(self.diff[i]),
            gap=int(self.gap[i]),
            confidence=float(self.confidence[i]),
        )


def measure_batch(
    X_prime, x_base, confidence, diff_scale=None
) -> BatchCandidateMetrics:
    """Vectorized :func:`measure` over an ``(n, d)`` candidate matrix."""
    return BatchCandidateMetrics(
        diff=l2_diff_batch(X_prime, x_base, diff_scale),
        gap=l0_gap_batch(X_prime, x_base),
        confidence=np.asarray(confidence, dtype=float).ravel(),
    )


@dataclass(frozen=True)
class Objective:
    """Weighted scalarisation over (diff, gap, 1 - confidence).

    Lower is better.  ``key(metrics)`` is usable directly as a sort key.
    The weights express the trade-off a user cares about; presets cover
    the paper's three pure objectives plus a balanced default.
    """

    w_diff: float = 1.0
    w_gap: float = 0.0
    w_confidence: float = 0.0
    name: str = "custom"

    def __post_init__(self):
        if self.w_diff < 0 or self.w_gap < 0 or self.w_confidence < 0:
            raise CandidateSearchError("objective weights must be non-negative")
        if self.w_diff + self.w_gap + self.w_confidence == 0:
            raise CandidateSearchError("objective needs at least one positive weight")

    def key(self, metrics: CandidateMetrics) -> float:
        return (
            self.w_diff * metrics.diff
            + self.w_gap * metrics.gap
            + self.w_confidence * (1.0 - metrics.confidence)
        )

    def key_batch(self, metrics: BatchCandidateMetrics) -> np.ndarray:
        """Elementwise :meth:`key` over batch metrics (same op order, so
        the floats match the scalar path exactly)."""
        return (
            self.w_diff * metrics.diff
            + self.w_gap * metrics.gap
            + self.w_confidence * (1.0 - metrics.confidence)
        )

    def rank(self, metrics_list) -> np.ndarray:
        """Indices sorting ``metrics_list`` best-first under this objective."""
        keys = np.array([self.key(m) for m in metrics_list])
        return np.argsort(keys, kind="stable")


OBJECTIVE_PRESETS: dict[str, Objective] = {
    "diff": Objective(1.0, 0.0, 0.0, name="diff"),
    "gap": Objective(0.0, 1.0, 0.0, name="gap"),
    "confidence": Objective(0.0, 0.0, 1.0, name="confidence"),
    "balanced": Objective(0.5, 0.25, 0.25, name="balanced"),
}


def get_objective(objective: "str | Objective") -> Objective:
    """Resolve a preset name or pass an :class:`Objective` through."""
    if isinstance(objective, Objective):
        return objective
    try:
        return OBJECTIVE_PRESETS[objective]
    except KeyError:
        raise CandidateSearchError(
            f"unknown objective {objective!r};"
            f" presets: {sorted(OBJECTIVE_PRESETS)}"
        ) from None
