"""Decision-altering candidate generation (Definitions II.3, §II.A).

The generator searches for modifications ``x'`` of the (temporal) input
``x`` with ``x' ∈ C(x)`` and ``M_t(x') > δ_t``.  Finding an optimal
candidate is NP-hard for forests and neural networks, so — following the
paper's adaptation of Deutch & Frost [5] — the search is an iterative
beam search:

* model-dependent heuristics propose single-coordinate moves around each
  beam state (:mod:`repro.core.moves`);
* a beam of width ``beam_width`` keeps the most promising states, where
  "promising" blends proximity to the decision boundary, the user's
  objective, and a penalty for violated constraints (states may pass
  *through* invalid regions, but only valid, decision-altering points are
  collected as candidates);
* iteration stops at ``max_iter`` or after ``patience`` iterations
  without improving the best candidate (the paper observes empirical
  convergence "after a small number of iterations" — the bench measures
  this);
* the pool is reduced to a small *diverse* top-k
  (:mod:`repro.core.diversity`).

:func:`brute_force_tree_candidates` computes the exact minimal-``diff``
candidate for a single decision tree by enumerating positive leaves —
feasible because one tree partitions the space into boxes — and serves as
the optimality reference in tests and the beam ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.constraints.evaluate import ConstraintsFunction
from repro.core.diversity import diverse_order
from repro.core.moves import MoveProposer, default_proposers
from repro.core.objectives import (
    CandidateMetrics,
    Objective,
    get_objective,
    measure,
    measure_batch,
)
from repro.data.schema import DatasetSchema
from repro.exceptions import CandidateSearchError
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "Candidate",
    "SearchStats",
    "CandidateGenerator",
    "ENGINES",
    "register_engine",
    "engine_names",
    "search_counter_totals",
    "brute_force_tree_candidates",
]

#: Weight of the boundary-distance term in the beam heuristic.
_BOUNDARY_WEIGHT = 10.0
#: Per-violated-constraint penalty in the beam heuristic.
_VIOLATION_PENALTY = 5.0

#: Registry of candidate-search engines (the enum-registration idiom):
#: name → one-line description.  ``CandidateGenerator`` implements the
#: per-cell ``'batch'``/``'scalar'`` pair; cross-cell engines — the fused
#: multi-cell drain in :mod:`repro.core.fused` — register here so that
#: ``AdminConfig`` validates ``engine=`` eagerly without importing them.
ENGINES: dict[str, str] = {}


def register_engine(name: str, description: str) -> None:
    """Register a candidate-search engine name for config validation."""
    ENGINES[str(name)] = str(description)


def engine_names() -> list[str]:
    """Sorted names of all registered engines."""
    return sorted(ENGINES)


register_engine("batch", "per-cell vectorized beam search (default)")
register_engine("scalar", "row-at-a-time reference path")


@dataclass(frozen=True)
class Candidate:
    """One decision-altering candidate at one time point.

    ``plan_rank``/``plan_quality``/``plan_min_dist`` describe the
    candidate's place in its cell's stored diverse plan set: selection
    order under greedy max-min diversity, the objective key it was
    scored with, and the scaled distance to the nearest earlier pick
    (``None`` for the seed).  ``plan_rank`` is ``-1`` for candidates
    that never went through plan-set finalisation (legacy rows,
    ad-hoc constructions); such rows serialise exactly as before the
    metadata existed.
    """

    x: np.ndarray
    time: int
    metrics: CandidateMetrics
    plan_rank: int = -1
    plan_quality: float | None = None
    plan_min_dist: float | None = None

    @property
    def diff(self) -> float:
        return self.metrics.diff

    @property
    def gap(self) -> int:
        return self.metrics.gap

    @property
    def confidence(self) -> float:
        return self.metrics.confidence

    def changes(self, x_base, schema: DatasetSchema) -> dict[str, tuple[float, float]]:
        """``{feature: (from, to)}`` for every modified coordinate."""
        x_base = np.asarray(x_base, dtype=float).ravel()
        out = {}
        for i, name in enumerate(schema.names):
            if abs(self.x[i] - x_base[i]) > 1e-9:
                out[name] = (float(x_base[i]), float(self.x[i]))
        return out


@dataclass
class SearchStats:
    """Diagnostics of one ``generate`` call."""

    iterations: int = 0
    proposals_evaluated: int = 0
    valid_found: int = 0
    converged: bool = False
    best_key_history: list[float] = field(default_factory=list)
    #: proposals dropped by the rounded-row visited-set dedupe before any
    #: model/constraint evaluation (counted by every engine)
    dedupe_hits: int = 0
    #: rows whose decision score was served from the epoch-level
    #: cross-cell proposal cache (fused engine only; 0 elsewhere)
    cache_hits: int = 0
    #: rows the epoch cache had to score through the model (fused engine
    #: only; 0 elsewhere)
    cache_misses: int = 0


#: counter fields aggregated across cells by refresh / drain reports
SEARCH_COUNTER_FIELDS = (
    "iterations",
    "proposals_evaluated",
    "valid_found",
    "dedupe_hits",
    "cache_hits",
    "cache_misses",
)


def search_counter_totals(stats_iter) -> dict[str, int]:
    """Sum the :data:`SEARCH_COUNTER_FIELDS` over an iterable of
    :class:`SearchStats` (``None`` entries are skipped) — the per-epoch
    drain-efficiency summary exposed on refresh and worker reports."""
    totals = dict.fromkeys(SEARCH_COUNTER_FIELDS, 0)
    for stats in stats_iter:
        if stats is None:
            continue
        for name in SEARCH_COUNTER_FIELDS:
            totals[name] += int(getattr(stats, name, 0))
    return totals


@dataclass
class _BeamState:
    """Mutable state of one cell's batched beam search.

    Owned by :meth:`CandidateGenerator._generate_batch` and shared with
    the fused multi-cell engine, which holds one per active cell and
    advances them in lock-stepped rounds (cells drop out of the round
    set as ``done`` flips).
    """

    x_base: np.ndarray
    time: int
    rng: np.random.Generator
    stats: SearchStats
    pool: dict
    visited: set
    best_key: float
    pool_best: float
    beam: list
    stale: int = 0
    done: bool = False


class CandidateGenerator:
    """Beam-search generator of diverse top-k decision-altering candidates.

    Parameters
    ----------
    model:
        Fitted scorer ``M_t`` (Definition II.1).
    threshold:
        Decision threshold ``δ_t``.
    schema:
        Feature schema (drives move granularity and physical clipping).
    constraints:
        Joined admin+user constraints ``C_t``; ``None`` means
        unconstrained.
    k:
        Number of candidates to return (diverse top-k).
    beam_width:
        Beam size; defaults to ``k`` as in the paper ("a beam search with
        width k").
    max_iter / patience:
        Iteration budget and no-improvement stopping patience.
    objective:
        Preset name or :class:`~repro.core.objectives.Objective` used for
        beam ranking and the final quality key.
    diff_scale:
        Per-feature divisors for ``diff`` (typically training-set stds).
    proposers:
        Move proposers; defaults to capability-matched ones.
    random_state:
        Seeds the random exploration moves.
    engine:
        ``'batch'`` (default) evaluates every iteration's proposals as
        stacked arrays — vectorized constraints, metrics and ranking;
        ``'scalar'`` is the original row-at-a-time reference path.  Both
        return bit-identical candidates for the same seed.  Caveat: the
        batch loop calls each proposer once per iteration (over all beam
        states) while the scalar loop interleaves proposers per state,
        so with *custom* proposer lists in which more than one proposer
        consumes the RNG, the draw order — and hence the random moves —
        can differ between engines.  The default proposers have exactly
        one RNG consumer, where both orders coincide.
    """

    def __init__(
        self,
        model,
        threshold: float,
        schema: DatasetSchema,
        constraints: ConstraintsFunction | None = None,
        *,
        k: int = 8,
        beam_width: int | None = None,
        max_iter: int = 15,
        patience: int = 3,
        objective: str | Objective = "balanced",
        diff_scale=None,
        proposers: list[MoveProposer] | None = None,
        random_state: int | None = 0,
        engine: str = "batch",
    ):
        if k < 1:
            raise CandidateSearchError("k must be >= 1")
        if max_iter < 1:
            raise CandidateSearchError("max_iter must be >= 1")
        if patience < 1:
            raise CandidateSearchError("patience must be >= 1")
        self.model = model
        self.threshold = float(threshold)
        self.schema = schema
        self.constraints = constraints or ConstraintsFunction.unconstrained(schema)
        if diff_scale is None and self.constraints.diff_scale is not None:
            diff_scale = self.constraints.diff_scale
        self.diff_scale = diff_scale
        # metrics diff can be reused for the constraints' 'diff' variable
        # only when both layers measure in the same scaled space
        constraint_scale = self.constraints.diff_scale
        self._shared_diff_scale = (
            (diff_scale is None and constraint_scale is None)
            or (
                diff_scale is not None
                and constraint_scale is not None
                and np.array_equal(diff_scale, constraint_scale)
            )
        )
        self.k = k
        self.beam_width = beam_width or k
        self.max_iter = max_iter
        self.patience = patience
        self.objective = get_objective(objective)
        self.proposers = proposers if proposers is not None else default_proposers(model)
        self.random_state = random_state
        if engine not in ("batch", "scalar"):
            raise CandidateSearchError(
                f"engine must be 'batch' or 'scalar', got {engine!r}"
            )
        self.engine = engine
        self.last_stats_: SearchStats | None = None

    # ------------------------------------------------------------ internals

    @staticmethod
    def _state_key(x: np.ndarray) -> tuple:
        return tuple(np.round(x, 9))

    @staticmethod
    def _row_keys(X: np.ndarray) -> list[bytes]:
        """Rounded-row dedupe keys for a proposal matrix.

        Equivalent to hashing :meth:`_state_key` tuples: ``+ 0.0``
        normalises ``-0.0`` to ``+0.0`` so the byte keys collide exactly
        where tuple equality would.
        """
        R = np.round(np.atleast_2d(X), 9) + 0.0
        return [R[i].tobytes() for i in range(R.shape[0])]

    def _beam_key(
        self, metrics: CandidateMetrics, n_violations: int, pool_empty: bool
    ) -> float:
        """Beam ranking: smaller is more promising.

        While the pool is empty the objective term is down-weighted so the
        beam chases the decision boundary instead of hugging the input (a
        strongly rejected input sits on a flat zero-score plateau where
        only the boundary term can provide direction).
        """
        boundary = max(0.0, self.threshold - metrics.confidence)
        objective_weight = 0.1 if pool_empty else 1.0
        return (
            _BOUNDARY_WEIGHT * boundary
            + objective_weight * self.objective.key(metrics)
            + _VIOLATION_PENALTY * n_violations
        )

    # -------------------------------------------------------------- search

    def _prologue_rows(self, x_base, warm_start=None):
        """The clipped base vector and clipped warm matrix exactly as
        :meth:`_prologue` will rebuild them (warm matrix is ``None`` when
        no warm seeds exist).  The fused engine uses this to pre-score
        the prologue rows through the epoch cache before starting the
        cell."""
        x_clip = self.schema.clip(np.asarray(x_base, dtype=float).ravel())
        warm_matrix = (
            None
            if warm_start is None
            else np.atleast_2d(np.asarray(warm_start, dtype=float))
        )
        if warm_matrix is not None and warm_matrix.size:
            return x_clip, self.schema.clip_matrix(warm_matrix)
        return x_clip, None

    def _prologue(
        self,
        x_base,
        time: int,
        key_fn,
        warm_start=None,
        *,
        base_score=None,
        warm_scores=None,
    ):
        """Shared search setup: clip the input, seed the RNG, and pool
        the unmodified input if it already flips (the paper's Q1, "no
        modification").  ``key_fn`` is the engine's state-key function.

        ``warm_start`` is an optional ``(n, d)`` array (or list of
        vectors) of previously found candidates for this cell; each is
        clipped, revalidated under the *current* model and constraints
        (pooled only when still decision-altering and valid), and kept as
        an extra initial beam seed ranked by the beam key.  With
        ``warm_start=None`` the search is bit-identical to the historical
        cold path.

        ``base_score`` / ``warm_scores`` optionally inject the decision
        scores of the clipped base vector / warm matrix (as returned by
        :meth:`_prologue_rows`) instead of calling the model here — the
        fused engine scores the prologue rows of many cells in one
        grouped, cache-served call.  The injected values must equal what
        the model would return row-by-row (true for per-row-deterministic
        scorers such as the tree ensembles).
        """
        x_base = self.schema.clip(np.asarray(x_base, dtype=float).ravel())
        rng = np.random.default_rng(self.random_state)
        stats = SearchStats()
        pool: dict = {}
        visited: set = {key_fn(x_base)}
        if base_score is None:
            base_score = float(
                self.model.decision_score(x_base.reshape(1, -1))[0]
            )
        else:
            base_score = float(base_score)
        base_metrics = measure(x_base, x_base, base_score, self.diff_scale)
        if base_score > self.threshold and self.constraints.is_valid(
            x_base, x_base, confidence=base_score, time=time
        ):
            pool[key_fn(x_base)] = Candidate(x_base, time, base_metrics)
            stats.valid_found += 1
        seeds: list[tuple[float, int, np.ndarray]] = []
        warm_matrix = (
            None
            if warm_start is None
            else np.atleast_2d(np.asarray(warm_start, dtype=float))
        )
        if warm_matrix is not None and warm_matrix.size:
            W = self.schema.clip_matrix(warm_matrix)
            # one model call for all seeds; constraints stay per-row (the
            # seed lists are small — at most the stored k of the cell)
            if warm_scores is None:
                warm_scores = np.asarray(
                    self.model.decision_score(W), dtype=float
                ).ravel()
            else:
                warm_scores = np.asarray(warm_scores, dtype=float).ravel()
            for order in range(W.shape[0]):
                w = W[order]
                key = key_fn(w)
                if key in visited:
                    continue
                visited.add(key)
                score = float(warm_scores[order])
                metrics = measure(w, x_base, score, self.diff_scale)
                violations = self.constraints.violated(
                    w, x_base, confidence=score, time=time
                )
                stats.proposals_evaluated += 1
                if not violations and score > self.threshold:
                    pool[key] = Candidate(w, time, metrics)
                    stats.valid_found += 1
                seeds.append(
                    (self._beam_key(metrics, len(violations), not pool), order, w)
                )
            seeds.sort(key=lambda item: (item[0], item[1]))
        best_key = min(
            (self.objective.key(c.metrics) for c in pool.values()),
            default=np.inf,
        )
        beam = [x_base] + [w for _, _, w in seeds[: max(0, self.beam_width - 1)]]
        return x_base, rng, stats, pool, visited, best_key, beam

    def generate(self, x_base, time: int = 0, warm_start=None) -> list[Candidate]:
        """Return up to ``k`` diverse decision-altering candidates.

        ``x_base`` is the temporal input ``f(x, t)`` for this generator's
        time point; diff/gap are measured against it.  Dispatches to the
        vectorized batch engine unless ``engine='scalar'`` was requested.
        ``warm_start`` optionally seeds the beam from previously stored
        candidates (see :meth:`_prologue`); the incremental refresh uses
        it to resume the search near the old optimum instead of from the
        profile.
        """
        if self.engine == "batch":
            return self._generate_batch(x_base, time, warm_start)
        return self._generate_scalar(x_base, time, warm_start)

    def _generate_scalar(
        self, x_base, time: int = 0, warm_start=None
    ) -> list[Candidate]:
        """Row-at-a-time reference implementation (the pre-batch path)."""
        x_base, rng, stats, pool, visited, best_key, beam = self._prologue(
            x_base, time, self._state_key, warm_start
        )
        stale = 0
        for iteration in range(self.max_iter):
            stats.iterations = iteration + 1
            proposals: list[np.ndarray] = []
            for state in beam:
                for proposer in self.proposers:
                    proposals.extend(
                        proposer.propose(state, self.model, self.schema, rng)
                    )
            fresh: list[np.ndarray] = []
            for proposal in proposals:
                key = self._state_key(proposal)
                if key not in visited:
                    visited.add(key)
                    fresh.append(proposal)
            stats.dedupe_hits += len(proposals) - len(fresh)
            if not fresh:
                stats.converged = True
                break
            stats.proposals_evaluated += len(fresh)
            scores = self.model.decision_score(np.vstack(fresh))
            ranked: list[tuple[float, np.ndarray]] = []
            for proposal, score in zip(fresh, scores):
                metrics = measure(proposal, x_base, float(score), self.diff_scale)
                violations = self.constraints.violated(
                    proposal, x_base, confidence=float(score), time=time
                )
                if not violations and score > self.threshold:
                    pool[self._state_key(proposal)] = Candidate(
                        proposal, time, metrics
                    )
                    stats.valid_found += 1
                ranked.append(
                    (self._beam_key(metrics, len(violations), not pool), proposal)
                )
            ranked.sort(key=lambda pair: pair[0])
            beam = [proposal for _, proposal in ranked[: self.beam_width]]
            new_best = min(
                (self.objective.key(c.metrics) for c in pool.values()),
                default=np.inf,
            )
            stats.best_key_history.append(new_best)
            if new_best < best_key - 1e-12:
                best_key = new_best
                stale = 0
            else:
                stale += 1
                if stale >= self.patience and pool:
                    stats.converged = True
                    break
        self.last_stats_ = stats
        return self._finalise(pool)

    def _generate_batch(
        self, x_base, time: int = 0, warm_start=None
    ) -> list[Candidate]:
        """Array-native search loop.

        One iteration is: stack all proposals of the beam into an
        ``(m, d)`` matrix, dedupe by rounded-row byte keys, then compute
        scores, metrics, constraint-violation counts and beam keys as
        single array operations.  Every floating-point reduction matches
        the scalar path's op order, and ranking uses a *stable* top-k, so
        the returned candidates are bit-identical to
        :meth:`_generate_scalar` for the same seed.

        The loop body is factored into :meth:`_propose_step`,
        :meth:`_dedupe_step` and :meth:`_absorb_step` over a
        :class:`_BeamState`; the fused multi-cell engine
        (:mod:`repro.core.fused`) drives the same steps across many
        cells at once, with only the model-scoring call between them
        swapped for the grouped, cache-served variant.
        """
        state = self._begin_batch(x_base, time, warm_start)
        for _ in range(self.max_iter):
            state.stats.iterations += 1
            pair = self._dedupe_step(state, self._propose_step(state))
            if pair is None:
                break
            fresh, fresh_keys = pair
            scores = np.asarray(
                self.model.decision_score(fresh), dtype=float
            ).ravel()
            self._absorb_step(state, fresh, fresh_keys, scores)
            if state.done:
                break
        self.last_stats_ = state.stats
        return self._finalise(state.pool)

    # ------------------------------------------------- batched step kernel

    def _begin_batch(
        self, x_base, time: int, warm_start=None, *, base_score=None,
        warm_scores=None,
    ) -> "_BeamState":
        """Prologue → mutable :class:`_BeamState` for the batched loop."""
        x_base, rng, stats, pool, visited, best_key, beam = self._prologue(
            x_base,
            time,
            lambda x: self._row_keys(x)[0],
            warm_start,
            base_score=base_score,
            warm_scores=warm_scores,
        )
        # pool only ever grows, so the best pool key is a running minimum
        return _BeamState(
            x_base=x_base,
            time=time,
            rng=rng,
            stats=stats,
            pool=pool,
            visited=visited,
            best_key=best_key,
            pool_best=best_key,
            beam=beam,
        )

    def _propose_step(self, state: "_BeamState") -> list[np.ndarray]:
        """All proposal matrices for the current beam, in scalar order."""
        chunks = [
            proposer.propose_batch(state.beam, self.model, self.schema, state.rng)
            for proposer in self.proposers
        ]
        return self._interleave_chunks(chunks, len(state.beam))

    @staticmethod
    def _interleave_chunks(
        chunks: list[list[np.ndarray]], n_states: int
    ) -> list[np.ndarray]:
        """Re-interleave per-proposer batches state-major, matching the
        scalar loop's proposal order; empty matrices are dropped."""
        mats = [chunk[s] for s in range(n_states) for chunk in chunks]
        return [m for m in mats if m.shape[0]]

    def _dedupe_step(self, state: "_BeamState", mats: list[np.ndarray]):
        """Visited-set dedupe of one iteration's proposals.

        Returns ``(fresh, fresh_keys)`` — the unvisited rows and their
        byte keys — or ``None`` when the iteration produced nothing new,
        in which case the search is marked converged/done.
        """
        if not mats:
            state.stats.converged = True
            state.done = True
            return None
        proposals = np.vstack(mats)
        keys = self._row_keys(proposals)
        fresh_idx = []
        fresh_keys = []
        for i, key in enumerate(keys):
            if key not in state.visited:
                state.visited.add(key)
                fresh_idx.append(i)
                fresh_keys.append(key)
        state.stats.dedupe_hits += len(keys) - len(fresh_idx)
        if not fresh_idx:
            state.stats.converged = True
            state.done = True
            return None
        fresh = proposals[fresh_idx]
        state.stats.proposals_evaluated += fresh.shape[0]
        return fresh, fresh_keys

    def _absorb_step(
        self,
        state: "_BeamState",
        fresh: np.ndarray,
        fresh_keys: list[bytes],
        scores: np.ndarray,
    ) -> None:
        """Post-scoring remainder of one iteration: metrics, constraint
        counts, pool inserts, beam re-ranking and the patience check.
        Sets ``state.done`` when the search converged."""
        x_base, time, pool, stats = state.x_base, state.time, state.pool, state.stats
        n = fresh.shape[0]
        metrics = measure_batch(fresh, x_base, scores, self.diff_scale)
        violation_counts = self.constraints.violation_counts_batch(
            fresh,
            x_base,
            confidence=scores,
            time=time,
            diff=metrics.diff if self._shared_diff_scale else None,
            gap=metrics.gap,
        )
        valid = (violation_counts == 0) & (scores > self.threshold)
        objective_keys = self.objective.key_batch(metrics)
        # the scalar loop checks `not pool` after inserting each row,
        # so the objective down-weighting switches off as soon as any
        # earlier row (inclusive) entered the pool this iteration
        if pool:
            pool_empty = np.zeros(n, dtype=bool)
        else:
            pool_empty = np.cumsum(valid) == 0
        objective_weight = np.where(pool_empty, 0.1, 1.0)
        beam_keys = (
            _BOUNDARY_WEIGHT * np.maximum(0.0, self.threshold - scores)
            + objective_weight * objective_keys
            + _VIOLATION_PENALTY * violation_counts
        )
        for i in np.flatnonzero(valid):
            pool[fresh_keys[i]] = Candidate(
                fresh[i].copy(), time, metrics.row(int(i))
            )
            stats.valid_found += 1
        if valid.any():
            state.pool_best = min(
                state.pool_best, float(objective_keys[valid].min())
            )
        state.beam = [
            fresh[i] for i in self._stable_top(beam_keys, self.beam_width)
        ]
        new_best = state.pool_best
        stats.best_key_history.append(new_best)
        if new_best < state.best_key - 1e-12:
            state.best_key = new_best
            state.stale = 0
        else:
            state.stale += 1
            if state.stale >= self.patience and pool:
                stats.converged = True
                state.done = True

    @staticmethod
    def _stable_top(keys: np.ndarray, width: int) -> np.ndarray:
        """Indices of the ``width`` smallest keys, in stable sorted order.

        One ``argpartition`` plus a tie repair at the cut, equivalent to
        a full stable sort followed by ``[:width]`` (ties at the boundary
        resolve to the lowest original indices, like Python's stable
        ``list.sort`` in the scalar path).
        """
        n = keys.size
        if n <= width:
            take = np.arange(n)
        else:
            part = np.argpartition(keys, width - 1)[:width]
            cut = keys[part].max()
            smaller = np.flatnonzero(keys < cut)
            tied = np.flatnonzero(keys == cut)
            take = np.concatenate([smaller, tied[: width - smaller.size]])
        return take[np.argsort(keys[take], kind="stable")]

    def _finalise_pool(
        self, pool: dict[tuple, Candidate]
    ) -> tuple[list[Candidate], np.ndarray, np.ndarray] | None:
        """Stack a pool for plan-set selection (``None`` when empty)."""
        candidates = list(pool.values())
        if not candidates:
            return None
        quality = np.array([self.objective.key(c.metrics) for c in candidates])
        points = np.vstack([c.x for c in candidates])
        return candidates, quality, points

    def _finalise_pack(
        self,
        candidates: list[Candidate],
        quality: np.ndarray,
        chosen: list[int],
        min_dists: list[float],
    ) -> list[Candidate]:
        """Annotate the selected plan set and restore the quality order."""
        chosen_candidates = [
            replace(
                candidates[i],
                plan_rank=rank,
                plan_quality=float(quality[i]),
                plan_min_dist=float(dist) if np.isfinite(dist) else None,
            )
            for rank, (i, dist) in enumerate(zip(chosen, min_dists))
        ]
        chosen_candidates.sort(key=lambda c: self.objective.key(c.metrics))
        return chosen_candidates

    def _finalise(self, pool: dict[tuple, Candidate]) -> list[Candidate]:
        prepared = self._finalise_pool(pool)
        if prepared is None:
            return []
        candidates, quality, points = prepared
        chosen, min_dists = diverse_order(
            points, quality, self.k, scale=self.diff_scale
        )
        return self._finalise_pack(candidates, quality, chosen, min_dists)


# --------------------------------------------------------------------------
# exact reference for single trees
# --------------------------------------------------------------------------


def brute_force_tree_candidates(
    tree: DecisionTreeClassifier,
    threshold: float,
    x_base,
    schema: DatasetSchema,
    constraints: ConstraintsFunction | None = None,
    *,
    time: int = 0,
    diff_scale=None,
) -> list[Candidate]:
    """Exact candidates for a single tree, sorted by ``diff`` ascending.

    A decision tree partitions the input space into axis-aligned boxes
    (one per leaf).  For every leaf whose probability exceeds the
    threshold, the closest point of its box to ``x_base`` (coordinate-wise
    projection, honouring strict inequalities with a small margin) is the
    optimal candidate *within that leaf*; the global optimum is the best
    across leaves.  Used to verify beam-search quality.
    """
    x_base = schema.clip(np.asarray(x_base, dtype=float).ravel())
    constraints = constraints or ConstraintsFunction.unconstrained(schema)
    d = len(schema)
    results: list[Candidate] = []
    margin = 1e-6

    def leaf_boxes(node, lo, hi):
        if node.is_leaf:
            yield node, lo.copy(), hi.copy()
            return
        f, thr = node.feature, node.threshold
        # left: x[f] <= thr
        old = hi[f]
        hi[f] = min(hi[f], thr)
        if lo[f] <= hi[f]:
            yield from leaf_boxes(node.left, lo, hi)
        hi[f] = old
        # right: x[f] > thr
        old = lo[f]
        lo[f] = max(lo[f], np.nextafter(thr, np.inf) + margin * max(1, abs(thr)))
        if lo[f] <= hi[f]:
            yield from leaf_boxes(node.right, lo, hi)
        lo[f] = old

    lo0 = np.full(d, -np.inf)
    hi0 = np.full(d, np.inf)
    for leaf, lo, hi in leaf_boxes(tree.root_, lo0, hi0):
        if leaf.probability <= threshold:
            continue
        candidate = np.clip(x_base, lo, hi)
        candidate = schema.clip(candidate)
        # integer clipping may exit the box; nudge back inside where possible
        adjusted = np.clip(candidate, lo, hi)
        if not np.allclose(adjusted, candidate):
            candidate = schema.clip(adjusted)
            if not ((candidate >= lo - 1e-9) & (candidate <= hi + 1e-9)).all():
                continue
        score = float(tree.decision_score(candidate.reshape(1, -1))[0])
        if score <= threshold:
            continue
        if not constraints.is_valid(
            candidate, x_base, confidence=score, time=time
        ):
            continue
        results.append(
            Candidate(candidate, time, measure(candidate, x_base, score, diff_scale))
        )
    results.sort(key=lambda c: c.diff)
    return results
