"""Unified continuous refresh: drift → refit → worker-pool dispatch.

PR 3 shipped the streaming pieces as two separate operator verbs: a
``refresh-daemon`` that tails a feed and refreshes **inline**, and a
``refresh-workers`` pool that drains the staleness ledger out of
process.  The :class:`RefreshOrchestrator` closes that gap — one
process that runs the whole continuous-refresh loop:

1. tail a :class:`~repro.data.feed.DataFeed` and buffer arrivals
   (all the :class:`~repro.core.scheduler.RefreshScheduler` machinery:
   drift gate, cadence, pending cap, gate modes);
2. when an epoch opens, **refit** the future models on the merged
   history (:meth:`JustInTime.refit`) — every stored cell stamped under
   an old fingerprint is now stale in the ledger, but nothing is
   recomputed inline;
3. durably **checkpoint**: the refit models, the merged history and the
   feed cursor go into one atomic ``save_system`` write;
4. dispatch :func:`~repro.core.worker.run_worker_pool` — N worker
   processes drain the ledger under leases — and checkpoint again with
   the resulting store digest.

The two checkpoints bracket the drain, which is what makes a killed
orchestrator resumable **without re-ingesting or double-computing**:

* killed before checkpoint 3 — the previous save is intact (temp file +
  rename), the feed cursor still points at the unmerged rows, and the
  restarted orchestrator simply re-buffers them;
* killed during the drain — the saved system already holds the refit
  models and the advanced feed cursor; the restarted orchestrator finds
  stale cells in the ledger (:meth:`RefreshOrchestrator.recover`) and
  re-dispatches the pool, which recomputes **only** the cells the dead
  pool never finished (fresh cells left the stale set when they were
  upserted; in-flight cells come back once their leases expire);
* killed between the drain and checkpoint 4 — recovery sees a clean
  ledger and merely rewrites the final checkpoint.

Per-cell recomputes are deterministic, so however the loop is cut, the
final store contents are byte-identical to a one-shot ``refresh()``
over the merged stream (``CandidateStore.contents_digest`` — asserted
in the tests, the CI smoke and ``benchmarks/bench_orchestrator.py``).

**Multi-orchestrator HA** (``ha=True``): N orchestrator processes
campaign over the store's ``leader_lease`` — a singleton lease
arbitrated by the store-side clock, exactly like worker leases — and
only the winner runs the loop; the others block in :meth:`campaign`
until the leader's lease expires.  Every leadership-scoped write
(checkpoints, pool dispatch) first *renews* the lease under its fencing
``(node_id, epoch)`` token, so a deposed leader's late ``save_system``
or drain raises :class:`~repro.exceptions.LeadershipLost` instead of
silently merging over the new leader's state; the worker pool carries
the same token into its claim rounds.  A standby that takes over picks
up the dead leader's feed cursor and interrupted drain through the
ordinary two-checkpoint recovery path — the final store digest stays
byte-identical to a never-failed run
(``benchmarks/bench_failover.py``).  Each checkpoint also publishes a
health/metrics snapshot into the store
(:meth:`CandidateStore.set_orchestrator_metrics`) for the
``/v1/orchestrator`` endpoint and the ``orchestrator-status`` CLI verb.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.core.persistence import save_system
from repro.core.scheduler import DriftGate, RefreshEpoch, RefreshScheduler
from repro.core.worker import PoolReport, run_worker_pool
from repro.data.feed import DataFeed
from repro.exceptions import LeadershipLost, StorageError

__all__ = ["EpochOutcome", "RefreshOrchestrator"]

#: drift-decision history entries kept in the published metrics snapshot
_METRICS_DRIFT_WINDOW = 20


@dataclass(frozen=True)
class EpochOutcome:
    """What one orchestrated epoch did (``RefreshEpoch.report``)."""

    #: model-stale time indices reported by the refit
    stale_times: tuple
    #: rows merged into the history by this epoch
    rows: int
    #: the worker pool's aggregate drain report
    pool: PoolReport
    #: store content digest after the drain (the identity check value);
    #: ``None`` when digest checkpointing is disabled
    store_digest: str | None
    #: feed cursor persisted with this epoch (``None``: feed not resumable)
    feed_offset: int | None
    #: priority/budget/SLA outcome of this epoch — ``drained_by_tier``
    #: (hot/warm/cold cell counts by priority score), ``sla_violations``
    #: (escalated cells still stale after the drain),
    #: ``traffic_weighted`` (the store's traffic-weighted freshness
    #: snapshot) and ``budget`` (armed / remaining / carry-over).
    #: ``None`` when the orchestrator runs without budgets and SLAs.
    freshness: dict | None = None

    @property
    def cells_recomputed(self) -> int:
        return self.pool.cells_recomputed

    @property
    def candidates_written(self) -> int:
        return self.pool.candidates_written


class RefreshOrchestrator:
    """One-process driver of the feed → refit → pool-drain loop.

    Parameters
    ----------
    system:
        A fitted :class:`~repro.core.system.JustInTime` over a
        **file-backed** store (worker processes must be able to open
        their own connections to it).  Live sessions are *not* needed:
        workers recompute cells from the persisted session specs.
    feed:
        The arrival source.  Resumable feeds (:class:`CsvFeed`) have
        their cursor checkpointed inside every save.
    system_path:
        Where the system pickle lives; every checkpoint rewrites it
        atomically and the worker processes load it from there.
    db_path:
        The shared candidate-store database handed to the pool.
    gate / cadence / min_batch / max_pending_rows / gate_mode /
    ewma_halflife / warm_start / clock:
        Forwarded to the underlying
        :class:`~repro.core.scheduler.RefreshScheduler`.
    n_workers / db_backend / claim_batch / lease_seconds /
    shard_affinity / engine / start_method:
        Forwarded to :func:`~repro.core.worker.run_worker_pool`;
        ``engine='fused'`` makes every worker drain its claim batches
        through the cross-cell fused engine (digest-identical);
        ``shard_affinity=True`` pins worker *i* to shard ``i %
        n_shards`` so each epoch's drain exploits the store's per-shard
        parallel write path (digest-identical either way).
    budget:
        Optional per-epoch compute budget, in cells.  Each epoch arms
        the store's **durable** budget row with ``budget + carry-over``
        before dispatching the pool; every worker claim decrements it
        atomically, so the pool as a whole drains at most that many
        cells — highest priority first, the claim scan's order.  The
        unspent remainder carries into the next epoch (capped at one
        ``budget``) and both live in the checkpoint + store, so a
        ``kill -9`` anywhere preserves the queue position: a recovery
        drain continues against whatever budget the dead epoch had
        left.
    sla_epochs:
        Optional staleness SLA, in epochs: a cell continuously stale for
        this many completed epochs is **escalated** — the claim scan
        orders escalated cells ahead of every priority score, so heavy
        traffic can never starve a cold user forever.  Escalated cells
        still stale after the drain are counted as
        ``sla_violations`` on the epoch's freshness report.
    priority_halflife:
        Half-life (seconds) of the decayed per-user activity score
        folded from the serving tier's ``access_log`` at the top of
        every epoch (:meth:`CandidateStore.materialize_priorities`).
    checkpoint_digest:
        Whether the post-drain checkpoint records
        ``contents_digest()``.  The digest is the replica-comparison /
        identity-audit value, but computing it re-reads and hashes the
        **whole** store — O(total rows), not O(cells recomputed) — so
        very large deployments with small frequent epochs may turn it
        off; recovery never needs it.
    fault_hook:
        Test/benchmark instrumentation: ``callable(stage)`` invoked at
        ``'epoch-saved'`` (after the pre-drain checkpoint) and
        ``'epoch-complete'`` (after the post-drain checkpoint).  Raising
        from the hook simulates the orchestrator process dying at that
        point; production runs leave it ``None``.
    ha / node_id / leader_ttl:
        ``ha=True`` turns on store-backed leader election: the
        orchestrator only runs the loop while it holds the
        ``leader_lease`` seat (:meth:`campaign` blocks until it wins),
        heartbeats the lease on every checkpoint / dispatch / idle
        poll, and **fences** every leadership-scoped write on its
        ``(node_id, lease epoch)`` token — losing the seat raises
        :class:`~repro.exceptions.LeadershipLost` instead of writing.
        ``node_id`` names this campaigner (defaults to a
        pid+random-suffix identity); ``leader_ttl`` is the lease TTL in
        store-clock seconds — keep it above the poll interval, or an
        idle leader will be deposed between polls.
    """

    def __init__(
        self,
        system,
        feed: DataFeed,
        *,
        system_path: str | Path,
        db_path: str | Path,
        db_backend: str | None = None,
        n_workers: int = 2,
        gate: DriftGate | None = None,
        cadence: float | None = None,
        min_batch: int = 1,
        max_pending_rows: int | None = None,
        gate_mode: str = "merged",
        ewma_halflife: float = 2.0,
        warm_start: bool | None = None,
        claim_batch: int = 2,
        lease_seconds: float = 30.0,
        shard_affinity: bool = False,
        engine: str | None = None,
        start_method: str | None = None,
        budget: int | None = None,
        sla_epochs: int | None = None,
        priority_halflife: float = 3600.0,
        clock=time.monotonic,
        checkpoint_digest: bool = True,
        on_cells_refreshed=None,
        fault_hook=None,
        ha: bool = False,
        node_id: str | None = None,
        leader_ttl: float = 30.0,
    ):
        if n_workers < 1:
            raise StorageError("n_workers must be >= 1")
        if budget is not None and budget < 1:
            raise StorageError("budget must be >= 1 or None")
        if sla_epochs is not None and sla_epochs < 1:
            raise StorageError("sla_epochs must be >= 1 or None")
        if leader_ttl <= 0:
            raise StorageError("leader_ttl must be positive")
        if getattr(system.store.backend, "path", ":memory:") == ":memory:":
            raise StorageError(
                "the orchestrator needs a file-backed store: worker"
                " processes open their own connections to it"
            )
        self.system = system
        self.feed = feed
        self.system_path = Path(system_path)
        self.db_path = Path(db_path)
        self.db_backend = db_backend
        self.n_workers = int(n_workers)
        self.warm_start = warm_start
        self.claim_batch = int(claim_batch)
        self.lease_seconds = float(lease_seconds)
        self.shard_affinity = bool(shard_affinity)
        self.engine = engine
        self.start_method = start_method
        self.checkpoint_digest = bool(checkpoint_digest)
        #: optional ``callable(cells)`` invoked after each drain with the
        #: ``(user_id, time)`` cells the pool recomputed — a co-located
        #: serving tier hooks its rendered-insight cache here for *eager*
        #: invalidation (purely an optimisation: the cache re-validates
        #: every hit against the fingerprint ledger regardless)
        self.on_cells_refreshed = on_cells_refreshed
        self.fault_hook = fault_hook
        self.ha = bool(ha)
        self.node_id = (
            str(node_id)
            if node_id
            else f"orch-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self.leader_ttl = float(leader_ttl)
        #: fencing token of the held seat (``None`` while not leading)
        self.lease_epoch: int | None = None
        #: expired seats this node took over when winning a campaign —
        #: each one is a leader that died (or stalled past its TTL)
        self.lease_takeovers = 0
        # this process's drain totals, published with the metrics
        # snapshot (durable state — the epoch counter, carry-over,
        # stale-since — lives in the checkpoint instead)
        self._cells_drained = 0
        self._candidates_written = 0
        self._lost_leases = 0
        self._skipped_cells = 0
        self.budget = None if budget is None else int(budget)
        self.sla_epochs = None if sla_epochs is None else int(sla_epochs)
        self.priority_halflife = float(priority_halflife)
        state = dict(system.saved_extra.get("orchestrator") or {})
        self._epochs_completed = int(state.get("epochs", 0))
        #: unspent budget rolled into the next epoch (checkpointed)
        self._carryover = int(state.get("carryover", 0))
        #: first epoch index each currently-stale cell was seen stale at
        #: (checkpointed; drives SLA escalation)
        self._stale_since: dict[tuple[str, int], int] = {
            (str(u), int(t)): int(e)
            for u, t, e in state.get("stale_since", ())
        }
        self._recovered = False
        #: pool report of the startup :meth:`recover` drain, if one ran
        self.last_recovery: PoolReport | None = None
        self.scheduler = RefreshScheduler(
            system,
            feed,
            gate=gate,
            cadence=cadence,
            min_batch=min_batch,
            max_pending_rows=max_pending_rows,
            warm_start=warm_start,
            clock=clock,
            gate_mode=gate_mode,
            ewma_halflife=ewma_halflife,
            refresh=self._run_epoch,
        )

    # ------------------------------------------------------------- state

    @property
    def epochs(self) -> list[RefreshEpoch]:
        """Epochs run by this orchestrator (``report`` holds the
        :class:`EpochOutcome`)."""
        return self.scheduler.epochs

    @property
    def epochs_completed(self) -> int:
        """Durable epoch counter (survives restarts via the checkpoint)."""
        return self._epochs_completed

    @property
    def pending_rows(self) -> int:
        return self.scheduler.pending_rows

    @property
    def carryover(self) -> int:
        """Unspent budget rolled into the next epoch (0 without one)."""
        return self._carryover

    # -------------------------------------------------------- leadership

    def campaign(
        self, *, sleep=time.sleep, max_wait: float | None = None
    ) -> int:
        """Block until this node holds the leader seat; returns the
        fencing lease epoch.

        Re-campaigning while already leading just renews the seat
        (idempotent, like re-claiming one's own cell lease), so the CLI
        can campaign on a bare store handle first and the orchestrator
        instantly confirms the same seat here.  ``max_wait`` bounds the
        wait (``StorageError`` on timeout — tests and probes); ``None``
        campaigns forever, which is what a standby *is*.
        """
        store = self.system.store
        interval = max(self.leader_ttl / 4.0, 0.05)
        waited = 0.0
        while True:
            before = store.leader_status()
            epoch = store.acquire_leader_lease(
                self.node_id, ttl_seconds=self.leader_ttl
            )
            if epoch is not None:
                if (
                    before is not None
                    and str(before["leader_id"]) != self.node_id
                ):
                    # won by outliving someone else's expired seat
                    self.lease_takeovers += 1
                self.lease_epoch = int(epoch)
                return self.lease_epoch
            if max_wait is not None and waited >= max_wait:
                raise StorageError(
                    f"node {self.node_id!r} could not win leadership"
                    f" within {max_wait}s"
                )
            sleep(interval)
            waited += interval

    def resign(self) -> None:
        """Step down cleanly (expire the held lease so a standby takes
        over immediately); a no-op when not leading."""
        if self.lease_epoch is None:
            return
        self.system.store.resign_leader_lease(self.node_id, self.lease_epoch)
        self.lease_epoch = None

    def _fence(self) -> None:
        """Prove-and-extend leadership before a leadership-scoped write.

        Renewal is the proof: the conditional update only succeeds while
        ``(node_id, lease_epoch)`` is the live seat, so one store round
        trip both heartbeats the lease and fences the write.  Losing the
        seat raises :class:`LeadershipLost` — the caller's checkpoint or
        drain dispatch never happens.  No-op outside HA mode.
        """
        if not self.ha:
            return
        if self.lease_epoch is None:
            raise LeadershipLost(
                f"node {self.node_id!r} is not leading; campaign() first"
            )
        if not self.system.store.renew_leader_lease(
            self.node_id, self.lease_epoch, ttl_seconds=self.leader_ttl
        ):
            epoch = self.lease_epoch
            self.lease_epoch = None
            raise LeadershipLost(
                f"node {self.node_id!r} lost the leader lease (epoch"
                f" {epoch}): another orchestrator took over; this write"
                " was fenced"
            )

    def metrics_snapshot(self, phase: str = "idle") -> dict:
        """The health/metrics payload published at every checkpoint —
        what ``/v1/orchestrator`` and ``orchestrator-status`` surface."""
        drift = []
        for epoch in self.scheduler.epochs[-_METRICS_DRIFT_WINDOW:]:
            decision = epoch.drift
            drift.append(
                {
                    "trigger": epoch.trigger,
                    "rows": int(epoch.rows),
                    "assessed": (
                        None if decision is None else bool(decision.assessed)
                    ),
                    "drifted": (
                        None if decision is None else bool(decision.drifted)
                    ),
                    "mmd": (
                        None
                        if decision is None or decision.mmd is None
                        else float(decision.mmd)
                    ),
                    "label_shift": (
                        None
                        if decision is None or decision.label_shift is None
                        else float(decision.label_shift)
                    ),
                }
            )
        payload = {
            "node_id": self.node_id,
            "ha": self.ha,
            "lease_epoch": self.lease_epoch,
            "lease_takeovers": self.lease_takeovers,
            "phase": str(phase),
            "epochs_completed": self._epochs_completed,
            "cells_drained": self._cells_drained,
            "candidates_written": self._candidates_written,
            # claim contention: compute-finished-but-lease-gone rounds
            # (another claimant took the cell) + uncomputable skips
            "lost_leases": self._lost_leases,
            "skipped_cells": self._skipped_cells,
            "pending_rows": self.scheduler.pending_rows,
            "drift": drift,
            "budget": None
            if self.budget is None
            else {"budget": self.budget, "carryover": self._carryover},
            "sla": None
            if self.sla_epochs is None
            else {
                "sla_epochs": self.sla_epochs,
                "tracked_stale_cells": len(self._stale_since),
            },
        }
        return payload

    def _publish_metrics(self, phase: str) -> None:
        self.system.store.set_orchestrator_metrics(
            self.metrics_snapshot(phase)
        )

    # ------------------------------------------------------------ epochs

    def _checkpoint(self, phase: str, *, digest: str | None = None) -> None:
        """One atomic durable write of the orchestrator's full state:
        models + merged history (the pickle payload), the feed cursor,
        and the loop phase — a single temp-and-rename ``save_system``,
        so a crash can never leave the cursor ahead of the history it
        belongs to.  In HA mode the write is fenced: it only happens
        while this node still holds the leader seat."""
        self._fence()
        extra = dict(self.system.saved_extra)
        cursor = self.feed.checkpoint
        if cursor is not None:
            extra["feed_offset"] = int(cursor)
            # bind the cursor to its feed file: a byte offset applied to
            # a *different* feed would silently skip that file's head
            feed_path = getattr(self.feed, "path", None)
            if feed_path is not None:
                extra["feed_path"] = str(Path(feed_path).resolve())
        state = {"phase": phase, "epochs": self._epochs_completed}
        if digest is not None:
            state["store_digest"] = digest
        if self.budget is not None:
            state["carryover"] = int(self._carryover)
        if self._stale_since:
            state["stale_since"] = sorted(
                [u, t, e] for (u, t), e in self._stale_since.items()
            )
        extra["orchestrator"] = state
        # keep the in-memory copy in sync so later saves (ours or another
        # operator verb's) carry the cursor forward instead of wiping it
        self.system.saved_extra = extra
        save_system(self.system, self.system_path, extra=extra)
        # advisory health snapshot, after the durable write it describes
        self._publish_metrics(phase)

    def _epoch_digest(self) -> str | None:
        """The post-drain store digest, or ``None`` when disabled
        (``checkpoint_digest=False`` — the digest is an O(store-size)
        scan-and-hash, the only per-epoch cost not proportional to the
        recomputed cells)."""
        if not self.checkpoint_digest:
            return None
        return self.system.store.contents_digest()

    def _dispatch_pool(self) -> PoolReport:
        self._fence()
        track = self.budget is not None or self.sla_epochs is not None
        return run_worker_pool(
            self.system_path,
            self.db_path,
            n_workers=self.n_workers,
            db_backend=self.db_backend,
            warm_start=self.warm_start,
            claim_batch=self.claim_batch,
            lease_seconds=self.lease_seconds,
            shard_affinity=self.shard_affinity,
            engine=self.engine,
            start_method=self.start_method,
            stats_store=self.system.store if track else None,
            fingerprints=self.system.model_fingerprints if track else None,
            leader_token=(
                (self.node_id, self.lease_epoch) if self.ha else None
            ),
        )

    def _drain_and_checkpoint(self) -> tuple[PoolReport, str | None]:
        """The kill-safety epilogue — checkpoint ``'draining'`` →
        dispatch pool → digest → count the epoch → checkpoint ``'idle'``
        — shared verbatim by normal epochs and :meth:`recover`, so the
        two paths can never diverge on the checkpoint protocol.  The
        fault hooks fire in both, letting the fault-injection suite kill
        recovery drains too."""
        self._checkpoint("draining")
        if self.fault_hook is not None:
            self.fault_hook("epoch-saved")
        pool = self._dispatch_pool()
        self._cells_drained += pool.cells_recomputed
        self._candidates_written += pool.candidates_written
        self._lost_leases += sum(w.lost_leases for w in pool.workers)
        self._skipped_cells += len(pool.skipped_cells)
        if self.on_cells_refreshed is not None and pool.cells_recomputed:
            self.on_cells_refreshed(
                tuple(cell for worker in pool.workers for cell in worker.cells)
            )
        # fold the drain's outcome into the durable budget/SLA state
        # *before* the idle checkpoint, so the checkpointed carry-over
        # and stale-since map always describe the post-drain store
        if self.budget is not None:
            remaining = self.system.store.refresh_budget_remaining()
            self._carryover = min(int(remaining or 0), self.budget)
        if self._stale_since:
            still = set(
                self.system.store.stale_cells(self.system.model_fingerprints)
            )
            self._stale_since = {
                cell: first
                for cell, first in self._stale_since.items()
                if cell in still
            }
        digest = self._epoch_digest()
        self._epochs_completed += 1
        self._checkpoint("idle", digest=digest)
        if self.fault_hook is not None:
            self.fault_hook("epoch-complete")
        return pool, digest

    def _epoch_prologue(self) -> tuple[dict, list]:
        """Arm the epoch's priority/budget/SLA state before the drain:
        fold the serving tier's access log into decayed scores, escalate
        cells stale past their SLA, and arm the durable budget row with
        ``budget + carry-over``.  Returns ``(scores, overdue)`` for the
        post-drain freshness report."""
        store = self.system.store
        store.materialize_priorities(halflife_seconds=self.priority_halflife)
        scores = store.user_priorities()
        overdue: list[tuple[str, int]] = []
        if self.sla_epochs is not None:
            epoch = self._epochs_completed
            stale = store.stale_cells(self.system.model_fingerprints)
            self._stale_since = {
                cell: self._stale_since.get(cell, epoch) for cell in stale
            }
            overdue = sorted(
                cell
                for cell, first in self._stale_since.items()
                if epoch - first >= self.sla_epochs
            )
            store.clear_escalations()
            if overdue:
                store.escalate_cells(overdue)
        if self.budget is not None:
            store.set_refresh_budget(self.budget + self._carryover)
        else:
            # an operator restarting without a budget means *unlimited*:
            # drop any budget row a previously budgeted run left armed
            store.set_refresh_budget(None)
        return scores, overdue

    def _epoch_freshness(self, pool, scores, overdue) -> dict | None:
        """The epoch's priority/budget/SLA outcome (``None`` when the
        orchestrator runs without budgets and SLAs).  Tiers by score
        snapshot: ``hot`` ≥ 1 (at least one un-decayed access), ``warm``
        > 0, ``cold`` no recorded traffic."""
        if self.budget is None and self.sla_epochs is None:
            return None
        store = self.system.store
        tiers = {"hot": 0, "warm": 0, "cold": 0}
        for worker in pool.workers:
            for user_id, _t in worker.cells:
                score = scores.get(user_id, 0.0)
                tiers[
                    "hot" if score >= 1.0 else "warm" if score > 0.0 else "cold"
                ] += 1
        # _drain_and_checkpoint already pruned fresh cells; survivors of
        # the overdue list are the cells the SLA escalated and the
        # budgeted drain *still* could not reach
        violations = sum(1 for cell in overdue if cell in self._stale_since)
        freshness = {
            "drained_by_tier": tiers,
            "sla_violations": violations,
            "traffic_weighted": (
                pool.freshness
                if pool.freshness is not None
                else store.traffic_weighted_freshness(
                    self.system.model_fingerprints
                )
            ),
        }
        if self.budget is not None:
            freshness["budget"] = {
                "budget": self.budget,
                "remaining": store.refresh_budget_remaining(),
                "carryover": self._carryover,
            }
        return freshness

    def _run_epoch(self, data, warm_start) -> EpochOutcome:
        """The scheduler's epoch executor: refit → arm priority/budget →
        checkpoint → drain → checkpoint.  ``warm_start`` equals the
        scheduler's setting and is forwarded to the pool (already
        captured in ``self.warm_start``)."""
        stale = self.system.refit(data)
        scores, overdue = self._epoch_prologue()
        pool, digest = self._drain_and_checkpoint()
        return EpochOutcome(
            stale_times=tuple(stale),
            rows=len(data),
            pool=pool,
            store_digest=digest,
            feed_offset=self.feed.checkpoint,
            freshness=self._epoch_freshness(pool, scores, overdue),
        )

    # ----------------------------------------------------------- running

    def recover(self) -> PoolReport | None:
        """Finish a drain a previous orchestrator did not live to see.

        Stale cells in the ledger at startup mean the dead orchestrator
        already refit the models and durably advanced the feed cursor,
        but its pool never (fully) drained — so the one correct move is
        to drain now, **before** polling for new data.  Cells the dead
        pool completed are fresh and are not recomputed; cells still
        under a dead worker's lease come back when the lease expires.
        A clean ledger with a ``'draining'`` phase on record means the
        kill landed between the drain and its final checkpoint: only the
        checkpoint is rewritten.  Returns the recovery pool's report, or
        ``None`` if there was nothing to recover.

        Stale cells of users **without a resumable session spec** do not
        count: no pool can ever compute them (they surface as
        ``skipped_cells``), so treating them as an interrupted drain
        would dispatch a do-nothing pool — and bump the epoch counter —
        on every startup for as long as those users stay stale.

        A budgeted orchestrator's recovery drain runs against whatever
        the **durable budget row** still allows — the dead epoch's queue
        position is preserved, never reset.  Only an orchestrator
        configured *without* a budget clears a leftover row first
        (restarting unbudgeted means unlimited).
        """
        self._recovered = True
        if self.budget is None:
            self.system.store.set_refresh_budget(None)
        fingerprints = self.system.model_fingerprints
        state = dict(self.system.saved_extra.get("orchestrator") or {})
        resumable = {
            user_id
            for user_id, _, texts in self.system.store.load_session_specs()
            if texts is not None
        }
        recoverable = [
            cell
            for cell in self.system.store.stale_cells(fingerprints)
            if cell[0] in resumable
        ]
        if not recoverable:
            if state.get("phase") == "draining":
                self._epochs_completed += 1
                self._checkpoint("idle", digest=self._epoch_digest())
            return None
        # the pre-drain checkpoint also guarantees the saved pickle
        # carries the current (refit) models before workers load it
        pool, _ = self._drain_and_checkpoint()
        self.last_recovery = pool
        return pool

    def poll_once(self) -> RefreshEpoch | None:
        """One scheduler step (poll the feed, maybe run a full epoch)."""
        return self.scheduler.poll_once()

    def run(
        self,
        *,
        max_polls: int | None = None,
        max_epochs: int | None = None,
        poll_interval: float = 0.0,
        sleep=time.sleep,
        on_epoch=None,
        flush_on_exhausted: bool = True,
    ) -> list[RefreshEpoch]:
        """Recover any interrupted drain (unless :meth:`recover` already
        ran on this instance — the CLI calls it explicitly first to
        report the result), then poll until the feed is exhausted or a
        budget is reached (see :meth:`RefreshScheduler.run`).

        In HA mode, campaigns first (blocking until this node wins the
        seat) and heartbeats the lease on every idle poll — active
        polls renew it through their checkpoints' fences."""
        if self.ha:
            if self.lease_epoch is None:
                self.campaign(sleep=sleep)
            inner_sleep = sleep

            def sleep(seconds, _sleep=inner_sleep):
                self._fence()
                _sleep(seconds)

        if not self._recovered:
            self.recover()
        return self.scheduler.run(
            max_polls=max_polls,
            max_epochs=max_epochs,
            poll_interval=poll_interval,
            sleep=sleep,
            on_epoch=on_epoch,
            flush_on_exhausted=flush_on_exhausted,
        )
