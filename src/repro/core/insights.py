"""Insights: canned questions → SQL → verbal answers.

The demo's Queries screen offers predefined questions (the six from the
introduction); the Plans and Insights screen renders the answers "in the
form of verbal or graphic insights" (§I).  :class:`InsightEngine` is that
translation layer: it runs the Figure-2 SQL through :mod:`repro.db.queries`
and wraps results into :class:`Insight` objects carrying both structured
data and a human-readable rendering.

Every question also offers an *alternatives* view (``plans=k``): the
answering cell's stored diverse plan set — up to ``k`` recourse plans in
greedy max-min selection order, each with its objective quality and its
scaled distance to the nearest earlier pick.  The default ``plans=1``
keeps the classic single-plan answer, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.candidates import Candidate
from repro.core.objectives import CandidateMetrics
from repro.core.plans import Plan, build_plan
from repro.db import queries as canned
from repro.db.store import CandidateStore
from repro.exceptions import QueryError

__all__ = ["Insight", "InsightEngine", "PlanAlternative", "QUESTIONS"]

#: Catalog of predefined questions (id → UI title), as in the demo's
#: Queries screen.
QUESTIONS: dict[str, str] = {
    "q1": "No modification: when does reapplying unchanged get approved?",
    "q2": "Minimal features set: smallest set of features to modify?",
    "q3": "Dominant feature: does one feature alone work at all time points?",
    "q4": "Minimal overall modification: least total change that works?",
    "q5": "Maximal confidence: which change maximises approval chances?",
    "q6": "Turning point: from when is confidence > α always achievable?",
    "q7": "Affordable time: earliest approval within an effort budget?",
}


@dataclass(frozen=True)
class PlanAlternative:
    """One member of a stored diverse plan set.

    ``rank`` is the greedy max-min selection order (0 = the seed, the
    best plan under the objective), ``quality`` the objective key the
    plan was scored with (lower = better) and ``min_dist`` the scaled
    distance to the nearest earlier pick (``None`` for the seed).
    """

    plan: Plan
    rank: int
    quality: float | None
    min_dist: float | None


@dataclass(frozen=True)
class Insight:
    """Answer to one canned question."""

    question: str
    title: str
    answer: Any
    text: str
    plans: tuple[Plan, ...] = field(default=())
    #: the answering cell's diverse plan set (empty unless asked with
    #: ``plans=k > 1`` and the cell has stored plan-set metadata)
    alternatives: tuple[PlanAlternative, ...] = field(default=())

    def __str__(self) -> str:
        return self.text


class InsightEngine:
    """Per-user query/insight interface over the candidate store.

    Parameters
    ----------
    store:
        The populated candidate database.
    user_id:
        User whose candidates are queried.
    time_values:
        Calendar value per time index (``now + t·Δ``), used in renderings.
    """

    def __init__(
        self,
        store: CandidateStore,
        user_id: str,
        time_values: list[float],
    ):
        self.store = store
        self.user_id = user_id
        self.time_values = list(time_values)

    # ------------------------------------------------------------- helpers

    def _calendar(self, t: int) -> float:
        if 0 <= t < len(self.time_values):
            return self.time_values[t]
        return float(t)

    def _plan_from_row(self, row: dict[str, Any]) -> Plan:
        t = int(row["time"])
        base = self.store.temporal_input(self.user_id, t)
        x = self.store.row_to_vector(row)
        candidate = Candidate(
            x,
            t,
            CandidateMetrics(
                diff=float(row["diff"]),
                gap=int(row["gap"]),
                confidence=float(row["p"]),
            ),
        )
        return build_plan(
            candidate, base, self.store.schema, time_value=self._calendar(t)
        )

    def _alternatives(
        self, t: int | None, plans: int
    ) -> tuple[PlanAlternative, ...]:
        """The answering cell's stored plan set as alternatives.

        ``plans=1`` (the default) returns the empty tuple so classic
        single-plan answers stay byte-identical; legacy cells without
        plan-set metadata also come back empty.
        """
        if plans < 1:
            raise QueryError("plans must be >= 1")
        if plans == 1 or t is None:
            return ()
        rows = canned.prepared(self.store).plan_set(
            self.store.read, self.user_id, int(t), plans
        )
        return tuple(
            PlanAlternative(
                plan=self._plan_from_row(row),
                rank=int(row["plan_rank"]),
                quality=(
                    None
                    if row["plan_quality"] is None
                    else float(row["plan_quality"])
                ),
                min_dist=(
                    None
                    if row["plan_min_dist"] is None
                    else float(row["plan_min_dist"])
                ),
            )
            for row in rows
        )

    # ------------------------------------------------------------ questions

    def ask(self, question: str, **params) -> Insight:
        """Dispatch a canned question by id (``'q1'`` .. ``'q7'``).

        ``plans=k`` attaches the answering cell's diverse plan set as
        :attr:`Insight.alternatives` (``k=1``, the default, does not).
        """
        handlers = {
            "q1": self.no_modification,
            "q2": self.minimal_features_set,
            "q3": self.dominant_feature,
            "q4": self.minimal_overall_modification,
            "q5": self.maximal_confidence,
            "q6": self.turning_point,
            "q7": self.affordable_time,
        }
        try:
            handler = handlers[question]
        except KeyError:
            raise QueryError(
                f"unknown question {question!r}; available: {sorted(handlers)}"
            ) from None
        return handler(**params)

    def no_modification(self, plans: int = 1) -> Insight:
        t = canned.q1_no_modification(self.store, self.user_id)
        if t is None:
            text = (
                "No future time point in the horizon approves your"
                " application without modifications."
            )
        else:
            text = (
                f"Reapplying with no modifications is expected to be"
                f" APPROVED from time point t={t} (≈ {self._calendar(t):.1f})."
            )
        return Insight(
            "q1", QUESTIONS["q1"], t, text,
            alternatives=self._alternatives(t, plans),
        )

    def minimal_features_set(self, plans: int = 1) -> Insight:
        row = canned.q2_minimal_features_set(self.store, self.user_id)
        if row is None:
            return Insight(
                "q2", QUESTIONS["q2"], None, "No decision-altering candidate exists.",
                alternatives=self._alternatives(None, plans),
            )
        plan = self._plan_from_row(row)
        features = [c.feature for c in plan.changes]
        if not features:
            text = (
                f"No features need modification: reapply at t={plan.time}"
                f" (≈ {plan.time_value:.1f})."
            )
        else:
            text = (
                f"The smallest modification set has {len(features)}"
                f" feature(s): {', '.join(features)}.\n{plan.describe()}"
            )
        return Insight(
            "q2", QUESTIONS["q2"], row, text, (plan,),
            alternatives=self._alternatives(int(row["time"]), plans),
        )

    def dominant_feature(self, feature: str, plans: int = 1) -> Insight:
        result = canned.q3_dominant_feature(self.store, self.user_id, feature)
        covered = result["times"]
        horizon = result["all_times"]
        feature_plans = tuple(
            self._plan_from_row(row)
            for row in self._single_feature_rows(feature, covered)
        )
        if result["dominant"]:
            text = (
                f"Yes — modifying only '{feature}' can lead to APPROVAL at"
                f" every time point {covered}."
            )
        elif covered:
            missing = sorted(set(horizon) - set(covered))
            text = (
                f"'{feature}' alone works at time points {covered},"
                f" but not at {missing} — it is not dominant."
            )
        else:
            text = f"Modifying only '{feature}' never suffices in the horizon."
        if feature_plans:
            text += "\n" + "\n".join(plan.describe() for plan in feature_plans)
        return Insight(
            "q3", QUESTIONS["q3"], result, text, feature_plans,
            alternatives=self._alternatives(
                covered[0] if covered else None, plans
            ),
        )

    def _single_feature_rows(self, feature: str, times) -> list[dict[str, Any]]:
        """Best single-feature (or zero-change) candidate per covered time."""
        return canned.prepared(self.store).q3_plan_rows(
            self.store.read, self.user_id, feature, times
        )

    def minimal_overall_modification(self, plans: int = 1) -> Insight:
        row = canned.q4_minimal_overall_modification(self.store, self.user_id)
        if row is None:
            return Insight(
                "q4", QUESTIONS["q4"], None, "No decision-altering candidate exists.",
                alternatives=self._alternatives(None, plans),
            )
        plan = self._plan_from_row(row)
        text = (
            f"The minimal overall modification (diff = {plan.diff:.3f})"
            f" is at t={plan.time} (≈ {plan.time_value:.1f}).\n{plan.describe()}"
        )
        return Insight(
            "q4", QUESTIONS["q4"], row, text, (plan,),
            alternatives=self._alternatives(int(row["time"]), plans),
        )

    def maximal_confidence(self, plans: int = 1) -> Insight:
        row = canned.q5_maximal_confidence(self.store, self.user_id)
        if row is None:
            return Insight(
                "q5", QUESTIONS["q5"], None, "No decision-altering candidate exists.",
                alternatives=self._alternatives(None, plans),
            )
        plan = self._plan_from_row(row)
        text = (
            f"The best achievable confidence is {plan.confidence:.2f}"
            f" at t={plan.time} (≈ {plan.time_value:.1f}).\n{plan.describe()}"
        )
        return Insight(
            "q5", QUESTIONS["q5"], row, text, (plan,),
            alternatives=self._alternatives(int(row["time"]), plans),
        )

    # ---------------------------------------------------------- series
    # The Plans-and-Insights screen also shows *graphic* insights
    # (Figure 3b); these per-time-point series are their data.

    def confidence_series(self) -> list[tuple[int, float | None]]:
        """Best achievable confidence per time point (None = no candidate)."""
        return self._series("MAX(p)")

    def effort_series(self) -> list[tuple[int, float | None]]:
        """Minimal required effort (diff) per time point."""
        return self._series("MIN(diff)")

    def gap_series(self) -> list[tuple[int, float | None]]:
        """Fewest feature changes needed per time point."""
        return self._series("MIN(gap)")

    def count_series(self) -> list[tuple[int, float | None]]:
        """Number of stored candidates per time point."""
        return self._series("COUNT(*)", zero_when_empty=True)

    def _series(
        self, aggregate: str, zero_when_empty: bool = False
    ) -> list[tuple[int, float | None]]:
        rows = canned.prepared(self.store).series(
            self.store.read, self.user_id, aggregate
        )
        by_time = {int(r["time"]): float(r["v"]) for r in rows}
        default = 0.0 if zero_when_empty else None
        return [
            (t, by_time.get(t, default))
            for t in self.store.times_for(self.user_id)
        ]

    def affordable_time(self, budget: float = 1.0, plans: int = 1) -> Insight:
        row = canned.q7_affordable_time(self.store, self.user_id, budget)
        if row is None:
            return Insight(
                "q7",
                QUESTIONS["q7"],
                None,
                f"No approval is reachable within an effort budget of"
                f" {budget:.2f} at any time point.",
                alternatives=self._alternatives(None, plans),
            )
        plan = self._plan_from_row(row)
        text = (
            f"Within an effort budget of {budget:.2f}, the earliest approval"
            f" is at t={plan.time} (≈ {plan.time_value:.1f}).\n{plan.describe()}"
        )
        return Insight(
            "q7", QUESTIONS["q7"], row, text, (plan,),
            alternatives=self._alternatives(int(row["time"]), plans),
        )

    def turning_point(self, alpha: float = 0.8, plans: int = 1) -> Insight:
        t = canned.q6_turning_point(self.store, self.user_id, alpha)
        if t is None:
            text = (
                f"There is no time point after which confidence > {alpha:.2f}"
                " is always achievable."
            )
        else:
            text = (
                f"From time point t={t} (≈ {self._calendar(t):.1f}) onward,"
                f" some modification always achieves confidence > {alpha:.2f}."
            )
        return Insight(
            "q6", QUESTIONS["q6"], t, text,
            alternatives=self._alternatives(t, plans),
        )
