"""Fused multi-cell beam engine: one cross-cell vectorized drain.

:meth:`JustInTime.refresh` and the lease-coordinated workers both drain
stale (user × time-point) cells one at a time — the batch engine of
:class:`~repro.core.candidates.CandidateGenerator` vectorizes *within* a
cell, but every cell still pays its own model calls, proposal
construction and Python loop overhead.  In the paper's
many-users-few-features regime those per-cell costs dominate, and they
are massively redundant: every cell of a time point shares the same
model, the same split thresholds, the same per-t RNG seed, and (for
similar profiles) many identical candidate rows.

:func:`generate_fused` runs the beam searches of **many cells as one
fused loop**:

* cells advance in lock-stepped rounds with an **active-cell set** —
  each converges and exits on exactly the iteration its per-cell search
  would have, without holding the others back;
* per round, cells are grouped by ``(t, model)`` and their fresh
  proposal rows are scored through **one** ``decision_score`` call per
  group instead of one per cell;
* scored rows feed an **epoch-level proposal cache** keyed
  ``(model_fp, row_bytes)`` (:class:`EpochProposalCache`) — the per-beam
  rounded-row dedupe of ``candidates._row_keys`` hoisted across users,
  so two users proposing the same candidate row under the same model
  never score it twice.  ``model_fp`` is the invalidation signal: a
  refit changes the fingerprint and every stale entry simply stops
  matching;
* threshold moves for a whole group run through **one shared
  vectorized** :meth:`ThresholdMoveProposer.propose_batch` call (whose
  per-(feature, value) target memo now also works cross-cell);
* random moves exploit that cells of a time point share the per-t RNG
  seed: cells whose generators have consumed their streams identically
  so far draw **once** (through a representative's generator) and replay
  the recorded draws vectorized per cell, fast-forwarding the other
  cells' generators to the identical post-draw state;
* cells that are byte-identical as *search problems* — same ``t``,
  base row, warm seeds, search parameters and declared constraints
  identity — are computed **once** and replicated.

Bit-identity contract
---------------------
The fused engine reorders *which batches* rows are scored in, never the
per-row arithmetic: it drives the exact
``_propose_step → _dedupe_step → _absorb_step`` kernel of the per-cell
batch engine.  For per-row-deterministic scorers (the tree ensembles:
flat-array descent plus a fixed-order tree sum, invariant to batch
composition) the results — candidates, stats histories, store digests —
are byte-identical to per-cell generation.  Scorers whose batched
predictions depend on the batch's shape (e.g. BLAS-backed linear
algebra) may differ in the last ulp; keep those on the per-cell engine.

The per-cell batch path remains untouched as the bit-identity reference;
``tests/test_fused_engine.py`` asserts ``contents_digest()`` equality on
every store backend before the bench times anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.candidates import (
    Candidate,
    CandidateGenerator,
    SearchStats,
    register_engine,
    search_counter_totals,
)
from repro.core.diversity import select_diverse_batch
from repro.core.moves import RandomMoveProposer, ThresholdMoveProposer

__all__ = [
    "EpochProposalCache",
    "FusedCell",
    "FusedReport",
    "generate_fused",
]

register_engine(
    "fused",
    "cross-cell fused drain with an epoch-level proposal score cache",
)


@dataclass
class EpochProposalCache:
    """Cross-user decision-score cache keyed ``(model_fp, row_bytes)``.

    One instance lives for a drain epoch (a worker keeps it across claim
    batches; a refresh builds one per call).  Entries are only ever
    *correct*: the key includes the model content fingerprint, so a
    refit does not need to purge anything — stale entries stop matching.
    Rows offered without a fingerprint bypass the cache entirely.

    ``max_entries`` bounds memory: on overflow the table is dropped
    wholesale (counted in ``evictions``) rather than partially — epoch
    working sets are far below the cap in practice, and a rare full
    reset only costs recomputed scores, never correctness.
    """

    max_entries: int = 1_000_000
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _scores: dict = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self._scores)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def scores_for(self, model, fp, X, keys):
        """Decision scores for the rows of ``X`` (keys per row), served
        from the cache where known and scored through ``model`` (one
        call for all missing rows) otherwise.

        Returns ``(scores, hit_mask)``; with ``fp`` falsy the cache is
        bypassed and every row counts as uncached.
        """
        n = X.shape[0]
        hit_mask = np.zeros(n, dtype=bool)
        if not fp:
            scores = np.asarray(model.decision_score(X), dtype=float).ravel()
            return scores, hit_mask
        table = self._scores
        scores = np.empty(n, dtype=float)
        miss: list[int] = []
        # cells advance in lock-step, so different cells proposing the
        # same row usually do it in the *same* call — dedupe in-flight
        # rows too: the first occurrence is the scored representative,
        # repeats are hits served from it (dupes maps repeat → rep)
        first_seen: dict[bytes, int] = {}
        dupes: list[tuple[int, int]] = []
        for i, key in enumerate(keys):
            value = table.get((fp, key))
            if value is not None:
                scores[i] = value
                hit_mask[i] = True
                continue
            rep = first_seen.setdefault(key, i)
            if rep == i:
                miss.append(i)
            else:
                dupes.append((i, rep))
                hit_mask[i] = True
        if miss:
            idx = np.asarray(miss)
            fresh = np.asarray(
                model.decision_score(X[idx]), dtype=float
            ).ravel()
            scores[idx] = fresh
            if len(table) + len(miss) > self.max_entries:
                self.evictions += len(table)
                table.clear()
            for j, i in enumerate(miss):
                table[(fp, keys[i])] = float(fresh[j])
        for i, rep in dupes:
            scores[i] = scores[rep]
        self.hits += n - len(miss)
        self.misses += len(miss)
        return scores, hit_mask


@dataclass
class FusedCell:
    """One (user × time-point) cell submitted to the fused engine.

    ``cell_id`` is the caller's handle (unique per call — typically
    ``(user_id, t)``); ``generator`` is the cell's fully configured
    :class:`CandidateGenerator` (its ``engine`` setting is ignored — the
    fused loop drives the batch kernel directly).  ``model_fp`` keys the
    epoch cache; ``None`` disables caching for the cell's rows.

    ``constraints_key`` declares the identity of the cell's constraints
    for *cell-level* dedup: two cells with equal keys (and equal base /
    warm / parameter bytes) are asserted by the caller to evaluate
    constraints identically, so the engine searches once and replicates.
    ``None`` opts the cell out of dedup (never out of correctness).
    All cells of one call must come from the same system configuration —
    the key is not meaningful across systems.
    """

    cell_id: object
    t: int
    x_base: np.ndarray
    generator: CandidateGenerator
    model_fp: str | None = None
    warm_start: object | None = None
    constraints_key: object | None = None


@dataclass
class FusedReport:
    """Engine-level outcome of one :func:`generate_fused` call."""

    cells: int = 0
    #: distinct search problems actually run
    unique_cells: int = 0
    #: cells served by replicating an identical cell's results
    cells_deduped: int = 0
    #: lock-stepped rounds until the last cell converged
    rounds: int = 0
    #: grouped ``decision_score`` calls issued (cache misses only)
    model_calls: int = 0
    #: summed :class:`SearchStats` counters of the unique runs
    search: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "cells": self.cells,
            "unique_cells": self.unique_cells,
            "cells_deduped": self.cells_deduped,
            "rounds": self.rounds,
            "model_calls": self.model_calls,
        }
        out.update(self.search)
        return out


# ----------------------------------------------------------------- dedup


def _proposer_signature(proposer) -> tuple:
    """Hashable parameter summary of one proposer (search-identity part
    of the cell-dedup key).  Private/cache attributes are skipped."""
    params = tuple(
        sorted(
            (name, value)
            for name, value in vars(proposer).items()
            if not name.startswith("_")
            and isinstance(value, (int, float, str, bool, tuple))
        )
    )
    return (type(proposer).__name__, params)


def _cell_key(cell: FusedCell):
    """Byte-exact identity of a cell as a search problem, or ``None``
    when the cell opted out (no ``constraints_key``)."""
    if cell.constraints_key is None:
        return None
    gen = cell.generator
    base = np.asarray(cell.x_base, dtype=float).ravel() + 0.0
    if cell.warm_start is None:
        warm_bytes = b""
    else:
        W = np.atleast_2d(np.asarray(cell.warm_start, dtype=float)) + 0.0
        warm_bytes = W.tobytes() + repr(W.shape).encode()
    scale = gen.diff_scale
    return (
        cell.t,
        cell.model_fp if cell.model_fp is not None else ("model-id", id(gen.model)),
        base.tobytes(),
        warm_bytes,
        cell.constraints_key,
        gen.k,
        gen.beam_width,
        gen.max_iter,
        gen.patience,
        gen.threshold,
        gen.random_state,
        repr(gen.objective),
        None if scale is None else np.asarray(scale, dtype=float).tobytes(),
        tuple(_proposer_signature(p) for p in gen.proposers),
    )


def _copy_stats(stats: SearchStats) -> SearchStats:
    return replace(stats, best_key_history=list(stats.best_key_history))


# -------------------------------------------------------- fused proposals


class _Run:
    """One unique cell's live search: its generator plus beam state."""

    __slots__ = ("cell", "gen", "state", "result")

    def __init__(self, cell: FusedCell):
        self.cell = cell
        self.gen = cell.generator
        self.state = None
        self.result: list[Candidate] | None = None


def _rng_key(rng: np.random.Generator):
    """Hashable snapshot of a generator's exact stream position."""
    state = rng.bit_generator.state
    inner = state.get("state", {})
    return (
        state.get("bit_generator"),
        tuple(sorted((k, v) for k, v in inner.items())),
        state.get("has_uint32"),
        state.get("uinteger"),
    )


def _shared_random_proposals(
    proposer: RandomMoveProposer, schema, runs: list[_Run]
) -> dict[int, list[np.ndarray]]:
    """Random moves for runs whose RNG streams are at the same position.

    All runs share the per-t seed and have consumed their streams
    identically, so the draw *sequence* — which mutable coordinate, then
    either a categorical pick or a normal step — is common to all of
    them; only the resulting values differ (they depend on the beam
    states).  One representative generator performs the real draws
    (recording coordinate, kind and payload per proposal), the others'
    generators are fast-forwarded to the identical post-draw state, and
    every run materializes its proposals from the records as matrix
    operations whose per-row arithmetic equals the scalar
    :meth:`RandomMoveProposer.propose` exactly.

    Categorical draws rely on every beam state being schema-clipped
    (current value snapped onto the category grid, so the option count
    is the same for every run); a run that violates this — only possible
    with a custom non-clipping proposer in the mix — is detected and
    recomputed through its own untouched generator instead.
    """
    mutable = schema.mutable_indices()
    n_states = len(runs[0].state.beam)
    d = len(schema)
    empty = [np.empty((0, d)) for _ in range(n_states)]
    if mutable.size == 0:
        return {id(run): list(empty) for run in runs}

    rep = runs[0]
    rep_rng = rep.state.rng
    # pre-draw stream position: the divergence fallback rewinds a run
    # here and lets its own generator redo the draws (state dicts hold
    # only immutable ints, so sharing one snapshot across runs is safe)
    pre_state = rep_rng.bit_generator.state
    # records: (state index, coordinate, is_categorical, payload,
    #           option count at draw time — the replay-safety invariant)
    records: list[tuple[int, int, bool, float, int]] = []
    for s in range(n_states):
        x_rep = rep.state.beam[s]
        for _ in range(proposer.n_proposals):
            idx = int(rep_rng.choice(mutable))
            spec = schema[idx]
            if spec.dtype == "categorical" and spec.categories:
                options = [c for c in spec.categories if c != x_rep[idx]]
                if not options:
                    continue
                drawn = rep_rng.choice(options)
                records.append(
                    (s, idx, True, float(options.index(drawn)), len(options))
                )
            else:
                draw = float(rep_rng.normal(0.0, proposer.spread))
                records.append((s, idx, False, draw, 0))
    # the other runs made the same draws — jump their streams forward
    post_state = rep_rng.bit_generator.state
    for run in runs[1:]:
        run.state.rng.bit_generator.state = post_state

    if not records:
        return {id(run): list(empty) for run in runs}

    s_idx = np.array([r[0] for r in records])
    cols = np.array([r[1] for r in records])
    is_cat = np.array([r[2] for r in records])
    payload = np.array([r[3] for r in records])
    opt_count = np.array([r[4] for r in records])
    m = len(records)
    rows = np.arange(m)
    # per-coordinate schema steps; NaN/0 → the scalar path's fallback
    steps = np.full(d, np.nan)
    for j in range(d):
        step = schema[j].step
        if step is not None:
            steps[j] = float(step)
    cat_cols = sorted({int(c) for c in cols[is_cat]})
    categories = {
        c: np.asarray(schema[c].categories, dtype=float) for c in cat_cols
    }

    out: dict[int, list[np.ndarray]] = {}
    for run in runs:
        S = np.vstack(run.state.beam)
        candidates = S[s_idx]
        current = candidates[rows, cols]
        new_values = np.empty(m)
        num = ~is_cat
        if num.any():
            vals = current[num]
            col_steps = steps[cols[num]]
            use_step = np.isfinite(col_steps) & (col_steps != 0.0)
            base_step = np.where(
                use_step, col_steps, np.maximum(np.abs(vals) * 0.01, 1.0)
            )
            new_values[num] = vals + payload[num] * base_step
        ok = np.ones(m, dtype=bool)
        for c in cat_cols:
            rows_c = is_cat & (cols == c)
            C = categories[c]
            mask = C[None, :] != current[rows_c, None]
            # replay safety: this run's option list must be as long as
            # the representative's was at draw time
            ok[rows_c] = mask.sum(axis=1) == opt_count[rows_c]
            pick = payload[rows_c].astype(int)
            cum = np.cumsum(mask, axis=1)
            sel = mask & (cum == pick[:, None] + 1)
            new_values[rows_c] = C[np.argmax(sel, axis=1)]
        if not ok.all():
            # stream divergence: this run's categorical state fell off
            # the category grid, so the shared draws do not model its
            # own RNG consumption — rewind its generator to the pre-draw
            # position and let it redo the draws itself (exact per-cell
            # path; the run leaves the shared subgroup automatically
            # next round because its stream position now differs)
            run.state.rng.bit_generator.state = pre_state
            out[id(run)] = proposer.propose_batch(
                run.state.beam, None, schema, run.state.rng
            )
            continue
        candidates[rows, cols] = new_values
        clipped = schema.clip_matrix(candidates)
        keep = clipped[rows, cols] != current
        kept = clipped[keep]
        kept_states = s_idx[keep]
        bounds = np.searchsorted(kept_states, np.arange(1, n_states))
        out[id(run)] = np.split(kept, bounds)
    return out


def _group_proposals(group: list[_Run]) -> dict[int, list[np.ndarray]]:
    """One round of proposals for every run of a ``(t, model)`` group,
    as per-run ``chunks`` lists (one list of per-state matrices per
    proposer slot) ready for ``_interleave_chunks``.

    Proposer slots whose instances agree across the group run fused
    (one shared threshold call / shared random draws); anything else
    falls back to the run's own proposer — bit-identical either way.
    """
    gen0 = group[0].gen
    chunks: dict[int, list] = {id(run): [] for run in group}
    uniform = all(
        len(run.gen.proposers) == len(gen0.proposers)
        and run.gen.schema is gen0.schema
        for run in group
    )
    if not uniform:
        for run in group:
            chunks[id(run)] = [
                proposer.propose_batch(
                    run.state.beam, run.gen.model, run.gen.schema, run.state.rng
                )
                for proposer in run.gen.proposers
            ]
        return chunks
    for j in range(len(gen0.proposers)):
        slot = [run.gen.proposers[j] for run in group]
        lead = slot[0]
        if isinstance(lead, ThresholdMoveProposer) and all(
            type(p) is ThresholdMoveProposer
            and p.n_nearest == lead.n_nearest
            and p.n_far == lead.n_far
            for p in slot
        ):
            # threshold moves are RNG-free and depend only on
            # (state, thresholds): one vectorized call over every beam
            # state of the group, served by one shared target memo
            states = [s for run in group for s in run.state.beam]
            mats = lead.propose_batch(
                states, gen0.model, gen0.schema, group[0].state.rng
            )
            offset = 0
            for run in group:
                width = len(run.state.beam)
                chunks[id(run)].append(mats[offset : offset + width])
                offset += width
        elif isinstance(lead, RandomMoveProposer) and all(
            type(p) is RandomMoveProposer
            and p.n_proposals == lead.n_proposals
            and p.spread == lead.spread
            for p in slot
        ):
            # subgroup by exact stream position and beam width; within a
            # subgroup one generator draws for everyone
            subgroups: dict[tuple, list[_Run]] = {}
            order: list[tuple] = []
            for run in group:
                key = (len(run.state.beam), _rng_key(run.state.rng))
                if key not in subgroups:
                    subgroups[key] = []
                    order.append(key)
                subgroups[key].append(run)
            for key in order:
                sub = subgroups[key]
                shared = _shared_random_proposals(lead, gen0.schema, sub)
                for run in sub:
                    chunks[id(run)].append(shared[id(run)])
        else:
            for run in group:
                chunks[id(run)].append(
                    run.gen.proposers[j].propose_batch(
                        run.state.beam,
                        run.gen.model,
                        run.gen.schema,
                        run.state.rng,
                    )
                )
    return chunks


# --------------------------------------------------------------- engine


def _group_active(runs: list[_Run]) -> list[list[_Run]]:
    """Group runs by ``(t, model identity, fingerprint)``, preserving
    submission order within and across groups."""
    groups: dict[tuple, list[_Run]] = {}
    order: list[tuple] = []
    for run in runs:
        key = (run.cell.t, id(run.gen.model), run.cell.model_fp)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(run)
    return [groups[key] for key in order]


def _attribute_cache_counters(state, hit_mask, lo, hi) -> None:
    hits = int(hit_mask[lo:hi].sum())
    state.stats.cache_hits += hits
    state.stats.cache_misses += (hi - lo) - hits


def _finalise_batch(finished: list[_Run]) -> None:
    """Select the finishing runs' diverse plan sets in one stacked pass.

    Bit-identical to calling ``run.gen._finalise(run.state.pool)`` per
    run (:func:`select_diverse_batch` replays the exact per-cell greedy
    arithmetic), but the pools of every cell finishing this round are
    stacked and selected together — grouped by distance scale, since
    the scaled pairwise distances are shared across the whole stack.
    """
    groups: dict = {}
    for run in finished:
        prepared = run.gen._finalise_pool(run.state.pool)
        if prepared is None:
            run.result = []
            continue
        candidates, quality, points = prepared
        scale = run.gen.diff_scale
        key = (
            points.shape[1],
            None
            if scale is None
            else np.asarray(scale, dtype=float).tobytes(),
        )
        groups.setdefault(key, []).append((run, candidates, quality, points))
    for entries in groups.values():
        selections = select_diverse_batch(
            np.vstack([points for _, _, _, points in entries]),
            np.concatenate([quality for _, _, quality, _ in entries]),
            [points.shape[0] for _, _, _, points in entries],
            [run.gen.k for run, _, _, _ in entries],
            scale=entries[0][0].gen.diff_scale,
        )
        for (run, candidates, quality, _), (chosen, dists) in zip(
            entries, selections
        ):
            run.result = run.gen._finalise_pack(candidates, quality, chosen, dists)


def generate_fused(
    cells, *, cache: EpochProposalCache | None = None, on_round=None
) -> tuple[dict, FusedReport]:
    """Run many cells' beam searches as one fused, cache-served loop.

    ``cells`` is an iterable of :class:`FusedCell` with unique
    ``cell_id``s.  Returns ``(results, report)`` where ``results`` maps
    ``cell_id -> (candidates, SearchStats)`` — per cell exactly what
    ``cell.generator.generate(...)`` would have produced — and
    ``report`` is the engine-level :class:`FusedReport`.  ``cache``
    carries the epoch-level score cache across calls (a worker passes
    one per drain); by default each call gets a private cache.

    ``on_round``, if given, is a zero-argument callable invoked at the
    top of every lock-stepped round.  A fused call over a large claim
    can outlive a lease that was taken before it started, so lease-based
    callers use this as a heartbeat (the worker drain renews its claim's
    leases here); rounds are the natural cadence — seconds apart even
    for epoch-sized claims.  The hook must not mutate cells or beams;
    results are byte-identical with or without it.
    """
    cells = list(cells)
    report = FusedReport(cells=len(cells))
    results: dict = {}
    if not cells:
        return results, report
    if cache is None:
        cache = EpochProposalCache()

    # ---- cell-level dedup: identical search problems run once
    runs: list[_Run] = []
    run_of_cell: list[int] = []
    seen: dict[tuple, int] = {}
    for cell in cells:
        key = _cell_key(cell)
        if key is not None and key in seen:
            run_of_cell.append(seen[key])
            continue
        if key is not None:
            seen[key] = len(runs)
        run_of_cell.append(len(runs))
        runs.append(_Run(cell))
    report.unique_cells = len(runs)
    report.cells_deduped = len(cells) - len(runs)

    # ---- fused prologue: score every cell's base + warm rows through
    # the cache, one grouped model call per (t, model) for the misses
    for group in _group_active(runs):
        gen0 = group[0].gen
        fp = group[0].cell.model_fp
        rows: list[np.ndarray] = []
        keys: list[bytes] = []
        spans: list[tuple[_Run, int, int, bool]] = []
        for run in group:
            x_clip, W = run.gen._prologue_rows(run.cell.x_base, run.cell.warm_start)
            lo = len(keys)
            rows.append(x_clip.reshape(1, -1))
            keys.append(run.gen._row_keys(x_clip)[0])
            if W is not None:
                rows.append(W)
                keys.extend(run.gen._row_keys(W))
            spans.append((run, lo, len(keys), W is not None))
        X = np.vstack(rows)
        scores, hit_mask = cache.scores_for(gen0.model, fp, X, keys)
        if not fp or not hit_mask.all():
            report.model_calls += 1
        for run, lo, hi, has_warm in spans:
            run.state = run.gen._begin_batch(
                run.cell.x_base,
                run.cell.t,
                run.cell.warm_start,
                base_score=float(scores[lo]),
                warm_scores=scores[lo + 1 : hi] if has_warm else None,
            )
            _attribute_cache_counters(run.state, hit_mask, lo, hi)

    # ---- lock-stepped rounds over the active-cell set
    active = list(runs)
    while active:
        if on_round is not None:
            on_round()
        report.rounds += 1
        for group in _group_active(active):
            gen0 = group[0].gen
            fp = group[0].cell.model_fp
            for run in group:
                run.state.stats.iterations += 1
            chunks = _group_proposals(group)
            pending: list[tuple[_Run, np.ndarray, list[bytes]]] = []
            for run in group:
                mats = run.gen._interleave_chunks(
                    chunks[id(run)], len(run.state.beam)
                )
                pair = run.gen._dedupe_step(run.state, mats)
                if pair is None:
                    continue
                pending.append((run, pair[0], pair[1]))
            if not pending:
                continue
            # one grouped, cache-served scoring call for the whole group
            X = np.vstack([fresh for _, fresh, _ in pending])
            keys = [key for _, _, fkeys in pending for key in fkeys]
            scores, hit_mask = cache.scores_for(gen0.model, fp, X, keys)
            if not fp or not hit_mask.all():
                report.model_calls += 1
            offset = 0
            for run, fresh, fkeys in pending:
                n = fresh.shape[0]
                _attribute_cache_counters(run.state, hit_mask, offset, offset + n)
                run.gen._absorb_step(
                    run.state, fresh, fkeys, scores[offset : offset + n]
                )
                offset += n
        # asynchronous exit: finished cells leave the round set, and every
        # cell finishing this round gets its diverse plan set selected in
        # one stacked batch instead of a per-cell Python loop
        still_active: list[_Run] = []
        finished: list[_Run] = []
        for run in active:
            if run.state.done or run.state.stats.iterations >= run.gen.max_iter:
                run.gen.last_stats_ = run.state.stats
                finished.append(run)
            else:
                still_active.append(run)
        _finalise_batch(finished)
        active = still_active

    # ---- fan results back out (deduped cells get fresh copies)
    for cell, run_index in zip(cells, run_of_cell):
        run = runs[run_index]
        if cell is run.cell:
            results[cell.cell_id] = (run.result, run.state.stats)
        else:
            results[cell.cell_id] = (
                [replace(c, x=c.x.copy()) for c in run.result],
                _copy_stats(run.state.stats),
            )
    report.search = search_counter_totals(run.state.stats for run in runs)
    report.search["cells_deduped"] = report.cells_deduped
    return results, report
