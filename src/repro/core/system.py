"""The JustInTime system facade (Figure 1).

Wires the full architecture together:

* an administrator configures the horizon (T, Δ), the forecasting
  strategy, the model class and global domain constraints
  (:class:`AdminConfig`);
* :meth:`JustInTime.fit` runs the models generator over the timestamped
  training data — performed once, independent of any user;
* :meth:`JustInTime.create_session` registers a user profile plus
  preference constraints, projects the profile through the temporal
  update function, runs one candidates generator per time point (they are
  independent; here they run sequentially and deterministically), and
  stores temporal inputs and candidates in the relational store;
* :meth:`JustInTime.refresh` keeps the service *alive*: as new
  timestamped data arrives the models are re-forecast, the per-time-point
  content fingerprints are diffed, and only the stale (user × time-point)
  cells are recomputed and upserted — registered :class:`UserSession`
  objects survive and see the updated candidates;
* the returned :class:`UserSession` exposes the canned-question interface
  and expert SQL passthrough.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.constraints.domain import schema_domain_constraints
from repro.constraints.evaluate import ConstraintsFunction
from repro.core.candidates import (
    ENGINES,
    Candidate,
    CandidateGenerator,
    engine_names,
    search_counter_totals,
)
from repro.core.fused import FusedCell, generate_fused
from repro.core.insights import Insight, InsightEngine
from repro.core.objectives import OBJECTIVE_PRESETS, Objective, get_objective
from repro.core.plans import Plan, build_plan
from repro.data.dataset import TemporalDataset
from repro.data.schema import DatasetSchema
from repro.db.backends import StoreBackend
from repro.db.store import CandidateStore
from repro.exceptions import CandidateSearchError, ForecastError
from repro.temporal.forecast import (
    STRATEGY_NAMES,
    ForecastStrategy,
    FutureModels,
    ModelsGenerator,
)
from repro.temporal.update import TemporalUpdateFunction

__all__ = ["AdminConfig", "JustInTime", "RefreshReport", "UserSession"]


@dataclass
class AdminConfig:
    """System-administrator configuration (the demo's admin UI).

    ``T`` and ``delta`` "control the amount and time intervals between
    future time points" (§I); the rest selects the forecasting strategy,
    model class, threshold calibration and search budget.
    """

    T: int = 5
    delta: float = 1.0
    strategy: str | ForecastStrategy = "edd"
    model_factory: object | None = None
    threshold_method: str = "fixed"
    fixed_threshold: float = 0.5
    target_rate: float | None = None
    k: int = 8
    beam_width: int | None = None
    max_iter: int = 15
    patience: int = 3
    objective: str | Objective = "balanced"
    random_state: int = 0
    #: candidates generators per (user, time point) are independent
    #: (§II.B: "they can be executed in parallel"); n_jobs > 1 runs them
    #: on one shared thread pool.  Results are identical to sequential
    #: execution (per-t seeds).
    n_jobs: int = 1
    #: candidate-search engine: 'batch' (per-cell vectorized), 'scalar'
    #: (row-at-a-time reference) or 'fused' (cross-cell vectorized drain
    #: with an epoch-level proposal cache, :mod:`repro.core.fused`); all
    #: produce identical candidates.
    engine: str = "batch"
    #: seed refreshed cells' beams from the previously stored candidates
    #: (clipped + revalidated under the new model).  A robustness
    #: feature, not a speed one: still-valid old candidates can never be
    #: lost to an unlucky fresh search, at ~1.5× the refresh wall-clock
    #: (the wider initial beam explores more; see
    #: benchmarks/bench_incremental_refresh.py).  Disable for the
    #: bit-identical-to-cold-recompute reference path.
    warm_start: bool = True
    #: with warm start on, seed only the top-m stored candidates of each
    #: cell (ranked by the configured objective) instead of all of them —
    #: trims the warm beam's extra exploration while keeping the best old
    #: optima as anchors.  ``None`` seeds every stored candidate.
    warm_top_m: int | None = None
    #: tighter no-improvement patience for warm-started cell searches
    #: (a beam resumed near the old optimum converges in fewer stale
    #: iterations than a cold search deserves).  ``None`` keeps
    #: :attr:`patience`.
    warm_patience: int | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Eager validation: fail at configuration time, not deep inside
        the search, and name the allowed values."""
        if isinstance(self.engine, str) and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r};"
                f" allowed values: {engine_names()}"
            )
        if isinstance(self.strategy, str) and self.strategy not in STRATEGY_NAMES:
            raise ValueError(
                f"unknown strategy {self.strategy!r};"
                f" allowed values: {sorted(STRATEGY_NAMES)}"
                " (or pass a ForecastStrategy instance)"
            )
        if isinstance(self.objective, str) and self.objective not in OBJECTIVE_PRESETS:
            raise ValueError(
                f"unknown objective {self.objective!r};"
                f" allowed values: {sorted(OBJECTIVE_PRESETS)}"
                " (or pass an Objective instance)"
            )
        if self.warm_top_m is not None and self.warm_top_m < 1:
            raise ValueError(
                f"warm_top_m must be >= 1 or None, got {self.warm_top_m}"
            )
        if self.warm_patience is not None and self.warm_patience < 1:
            raise ValueError(
                f"warm_patience must be >= 1 or None, got {self.warm_patience}"
            )


@dataclass(frozen=True)
class RefreshReport:
    """Outcome of one :meth:`JustInTime.refresh` pass."""

    #: time indices whose model fingerprint changed (cells recomputed)
    stale_times: tuple[int, ...]
    #: time indices whose model content was unchanged (cells untouched)
    fresh_times: tuple[int, ...]
    #: registered sessions the refresh covered
    n_users: int
    #: (user × stale time point) cells recomputed
    cells_recomputed: int
    #: candidate rows written back in the bulk upsert
    candidates_written: int
    #: whether the beams were warm-started from stored candidates
    warm_start: bool
    #: ledger-stale cells belonging to users with *no* registered session
    #: (their stored candidates stay outdated until the session is
    #: resumed — alert on this)
    skipped_stale_cells: int = 0
    #: summed per-cell search counters (iterations, proposals_evaluated,
    #: dedupe_hits, cache_hits, cache_misses, ...) of the recompute —
    #: the drain-efficiency view; ``None`` when nothing was recomputed
    search: dict | None = None
    #: stale cells a refresh ``budget`` deferred to a later epoch (they
    #: stay stale in the ledger); 0 on unbudgeted refreshes
    deferred_cells: int = 0
    #: post-refresh :meth:`CandidateStore.traffic_weighted_freshness`
    #: snapshot — only populated on budgeted refreshes (the scan is
    #: O(store) and the unbudgeted path always ends fully fresh)
    freshness: dict | None = None


class JustInTime:
    """End-to-end system: models generator + candidates generators + DB.

    Parameters
    ----------
    schema:
        Feature schema of the application domain.
    update_function:
        Temporal update function (Definition II.4).
    config:
        Admin configuration; defaults are the demo-scale settings.
    domain_constraints:
        Global constraints imposed on all users; defaults to the
        schema-derived integrity constraints.
    store_path:
        SQLite path or ``':memory:'``.
    store_backend:
        Store backend name (``'sqlite'``, ``'memory'``, ``'sharded'``) or
        :class:`~repro.db.backends.StoreBackend` instance; ``None`` infers
        from ``store_path``.
    n_shards:
        Shard count for the sharded backend.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        update_function: TemporalUpdateFunction,
        config: AdminConfig | None = None,
        domain_constraints: ConstraintsFunction | None = None,
        store_path: str | Path = ":memory:",
        store_backend: str | StoreBackend | None = None,
        n_shards: int = 4,
    ):
        self.schema = schema
        self.update_function = update_function
        self.config = config or AdminConfig()
        self._explicit_domain = domain_constraints
        self.store = CandidateStore(
            schema, store_path, backend=store_backend, n_shards=n_shards
        )
        self.future_models: FutureModels | None = None
        self.diff_scale: np.ndarray | None = None
        self.domain_constraints: ConstraintsFunction | None = None
        #: session registry: UserSession objects survive refreshes
        self.sessions: dict[str, UserSession] = {}
        self._history: TemporalDataset | None = None
        #: caller state restored by :func:`load_system` (e.g. the refresh
        #: daemon's feed cursor, persisted atomically with the history)
        self.saved_extra: dict = {}

    # ----------------------------------------------------------------- fit

    def _fit_models(
        self, history: TemporalDataset, now: float | None
    ) -> FutureModels:
        cfg = self.config
        generator = ModelsGenerator(
            T=cfg.T,
            delta=cfg.delta,
            strategy=cfg.strategy,
            model_factory=cfg.model_factory,
            threshold_method=cfg.threshold_method,
            fixed_threshold=cfg.fixed_threshold,
            target_rate=cfg.target_rate,
            random_state=cfg.random_state,
        )
        return generator.generate(history, now=now)

    def fit(self, history: TemporalDataset, now: float | None = None) -> "JustInTime":
        """Run the models generator (user-independent, done once)."""
        if history.schema != self.schema:
            raise ForecastError("history schema does not match system schema")
        self.future_models = self._fit_models(history, now)
        self._history = history
        scale = history.X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.diff_scale = scale
        domain = self._explicit_domain or schema_domain_constraints(self.schema)
        # rebuild with the diff scale attached so user constraints on
        # 'diff' are interpreted in scaled units consistently
        self.domain_constraints = ConstraintsFunction(
            self.schema, list(domain.constraints), diff_scale=self.diff_scale
        )
        return self

    @property
    def time_values(self) -> list[float]:
        """Calendar value of each time index t = 0 .. T."""
        self._require_fitted()
        return [fm.time_value for fm in self.future_models]

    @property
    def history(self) -> TemporalDataset | None:
        """The training history the current models were fitted on
        (``None`` for systems loaded from pre-refresh saves)."""
        return self._history

    @property
    def model_fingerprints(self) -> dict[int, str]:
        """``{t: content fingerprint}`` of the current future models
        (missing fingerprints — pre-fingerprint pickles — map to ``''``,
        the store ledger's always-stale value)."""
        self._require_fitted()
        return {
            t: fp or "" for t, fp in self.future_models.fingerprints.items()
        }

    def _require_fitted(self) -> None:
        if self.future_models is None:
            raise ForecastError("JustInTime is not fitted; call fit() first")

    # -------------------------------------------------------------- users

    def create_session(
        self,
        user_id: str,
        profile: dict[str, float] | np.ndarray,
        user_constraints=None,
    ) -> "UserSession":
        """Register a user and generate their candidate database rows.

        ``user_constraints`` may be a :class:`ConstraintsFunction`, a list
        of DSL strings / :class:`ScopedConstraint` items, or ``None``.
        Existing rows for ``user_id`` are replaced (the demo lets a
        participant revise preferences and re-run).
        """
        return self.create_sessions([(user_id, profile, user_constraints)])[0]

    def create_sessions(self, users) -> "list[UserSession]":
        """Register a batch of users and generate all their candidates.

        ``users`` is an iterable of ``(user_id, profile)`` or
        ``(user_id, profile, user_constraints)`` tuples (or dicts with
        those keys).  All (user × time-point) candidates generators are
        independent, so they are scheduled as one flat task list on a
        single shared executor (``AdminConfig.n_jobs`` workers) instead
        of a pool per user, and all database rows are written in one
        transaction.  Candidates are identical to calling
        :meth:`create_session` per user, in order.
        """
        self._require_fitted()
        cfg = self.config
        specs = [self._user_spec(user) for user in users]
        seen: set[str] = set()
        for user_id, _, _ in specs:
            if user_id in seen:
                raise CandidateSearchError(
                    f"duplicate user_id {user_id!r} in create_sessions batch"
                )
            seen.add(user_id)
        prepared = [
            (
                user_id,
                x,
                self.update_function.trajectory(x, cfg.T),
                self._join_constraints(user_constraints),
            )
            for user_id, x, user_constraints in specs
        ]

        def run_one(task):
            user_index, future_model = task
            _, _, trajectory, constraints = prepared[user_index]
            t = future_model.t
            generator = self._cell_generator(t, constraints)
            return generator.generate(trajectory[t], time=t), generator.last_stats_

        tasks = [
            (user_index, future_model)
            for user_index in range(len(prepared))
            for future_model in self.future_models
        ]
        if getattr(cfg, "engine", "batch") == "fused":
            fingerprints = self.model_fingerprints
            fused_cells = [
                FusedCell(
                    cell_id=(user_index, future_model.t),
                    t=future_model.t,
                    x_base=prepared[user_index][2][future_model.t],
                    generator=self._cell_generator(
                        future_model.t, prepared[user_index][3]
                    ),
                    model_fp=fingerprints.get(future_model.t) or None,
                    constraints_key=self._constraints_cache_key(
                        self._constraint_texts(specs[user_index][2])
                    ),
                )
                for user_index, future_model in tasks
            ]
            outcome, _fused_report = generate_fused(fused_cells)
            results = [
                outcome[(user_index, future_model.t)]
                for user_index, future_model in tasks
            ]
        else:
            results = self._run_tasks(run_one, tasks)

        sessions: list[UserSession] = []
        per_user = len(self.future_models)
        bulk_rows = []
        spec_rows = []
        for user_index, (user_id, x, trajectory, constraints) in enumerate(prepared):
            user_results = results[user_index * per_user : (user_index + 1) * per_user]
            all_candidates: list[Candidate] = []
            stats = []
            for found, search_stats in user_results:
                stats.append(search_stats)
                all_candidates.extend(found)
            bulk_rows.append((user_id, trajectory, all_candidates))
            texts = self._constraint_texts(specs[user_index][2])
            spec_rows.append((user_id, x, texts))
            session = UserSession(
                system=self,
                user_id=user_id,
                profile=x,
                trajectory=trajectory,
                constraints=constraints,
                candidates=all_candidates,
                search_stats=stats,
            )
            session.constraints_key = self._constraints_cache_key(texts)
            sessions.append(session)
        self.store.store_sessions(
            bulk_rows, fingerprints=self.model_fingerprints, specs=spec_rows
        )
        for session in sessions:
            self.sessions[session.user_id] = session
        return sessions

    def drop_session(self, user_id: str) -> None:
        """Fully forget a user: registry entry plus every store row.

        This is the deletion API — calling ``store.clear_user`` alone
        while the session stays registered would let the next refresh
        recompute (resurrect) the user's cells from the live session.
        """
        self.sessions.pop(str(user_id), None)
        self.store.clear_user(str(user_id))

    def get_session(self, user_id: str) -> "UserSession":
        """Look up a registered (live) session by user id."""
        try:
            return self.sessions[str(user_id)]
        except KeyError:
            raise CandidateSearchError(
                f"no registered session for user {user_id!r};"
                " call create_session or resume_sessions first"
            ) from None

    def resume_sessions(self, include_opaque: bool = False) -> "list[UserSession]":
        """Rehydrate sessions persisted in the store into the registry.

        A long-running service restarts: the store still holds every
        user's temporal inputs, candidates and session spec (profile +
        DSL constraint texts).  Users already present in the registry are
        left untouched.

        Specs whose constraints were *not* serialisable (opaque
        :class:`ConstraintsFunction` objects rather than DSL strings) are
        **skipped** by default: resuming them would drop the user's
        preferences, and a later refresh would overwrite their
        preference-respecting candidates with unconstrained ones.  Their
        rows stay in the store (and show up as stale in the ledger once
        models move on); pass ``include_opaque=True`` to knowingly resume
        them under domain constraints only.  Returns the newly restored
        sessions.
        """
        self._require_fitted()
        restored: list[UserSession] = []
        for user_id, profile, texts in self.store.load_session_specs():
            if user_id in self.sessions:
                continue
            if texts is None and not include_opaque:
                continue
            session = UserSession(
                system=self,
                user_id=user_id,
                profile=profile,
                trajectory=self.update_function.trajectory(profile, self.config.T),
                constraints=self._join_constraints(texts),
                candidates=self.store.load_candidates(user_id),
                search_stats=[],
            )
            session.constraints_key = self._constraints_cache_key(texts)
            self.sessions[user_id] = session
            restored.append(session)
        return restored

    # ------------------------------------------------------------ refresh

    def refit(
        self,
        new_data: TemporalDataset | None = None,
        *,
        now: float | None = None,
        history: TemporalDataset | None = None,
    ) -> tuple[int, ...]:
        """Re-forecast on fresh data **without recomputing any cells**.

        Steps 1–2 of :meth:`refresh`: merge ``new_data`` into the
        fit-time history (or take a complete ``history``), refit the
        future models with the same seeds and ``now``, and diff the
        per-time-point content fingerprints.  Returns the model-stale
        time indices.

        The store ledger is left untouched, which is the point: every
        cell stamped under an old fingerprint now reads as stale in
        :meth:`CandidateStore.stale_cells`, so the recompute work can be
        drained by a lease-coordinated worker pool
        (:mod:`repro.core.worker`) instead of this process.  Call
        :func:`~repro.core.persistence.save_system` after ``refit`` so
        workers load the refit models.
        """
        self._require_fitted()
        if history is None:
            if self._history is None:
                raise ForecastError(
                    "refit needs the training history; this system was"
                    " loaded without one — pass history= explicitly"
                )
            history = self._history
        if new_data is not None:
            history = self._merge_history(history, new_data)
        if history.schema != self.schema:
            raise ForecastError("history schema does not match system schema")
        old_models = self.future_models
        self.future_models = self._fit_models(
            history, now if now is not None else old_models.now
        )
        self._history = history
        return tuple(self.future_models.stale_against(old_models))

    def refresh(
        self,
        new_data: TemporalDataset | None = None,
        *,
        now: float | None = None,
        history: TemporalDataset | None = None,
        warm_start: bool | None = None,
        budget: int | None = None,
    ) -> RefreshReport:
        """Re-forecast on fresh data and recompute only the stale cells.

        The paper's system is a living service: models are re-forecast as
        new timestamped data arrives, and stored temporal insights must
        track the *current* forecast.  A full cold recompute of every
        (user × time-point) cell is wasteful when most models did not
        actually change, so refresh:

        1. refits the future models on ``history + new_data`` (same
           seeds, same ``now`` unless overridden);
        2. diffs per-time-point content fingerprints against the previous
           models, and adds any individual cells the store ledger marks
           stale (per-cell invalidations via ``clear_user``, rows
           stamped under an older model);
        3. recomputes only those (user, t) cells of every registered
           session through the shared executor — warm-starting each beam
           from the user's previously stored candidates unless disabled;
        4. writes all recomputed cells back in one bulk upsert
           transaction, leaving untouched cells' rows byte-identical.

        ``new_data`` is merged into the fit-time history; alternatively
        pass a complete ``history``.  ``warm_start`` overrides
        :attr:`AdminConfig.warm_start` for this call; with warm start
        disabled, recomputed cells are bit-identical to a cold
        recompute.  The fit-time ``diff_scale`` is intentionally kept so
        stored ``diff`` values stay comparable across refreshes.

        ``budget`` caps the recompute at that many cells, **highest
        priority first** (the store's ``user_priority`` scores, ties in
        the deterministic (user, time) claim order); the cells beyond
        the budget keep their old ledger fingerprints, stay stale, and
        are reported as ``deferred_cells`` — the next refresh (or a
        worker drain) picks them up.  ``None`` (the default) recomputes
        everything, unchanged from before.
        """
        cfg = self.config
        stale = self.refit(new_data, now=now, history=history)
        fresh = tuple(t for t in range(len(self.future_models)) if t not in stale)
        warm = bool(cfg.warm_start if warm_start is None else warm_start)
        sessions = list(self.sessions.values())
        # cells to recompute: every registered session at each model-stale
        # time point, plus individual cells the store ledger marks stale
        # (clear_user(uid, time=t) invalidations, rows written under an
        # older model than the one loaded)
        cell_times: dict[str, set[int]] = {
            session.user_id: set(stale) for session in sessions
        }
        fingerprints = self.model_fingerprints
        ledger = self.store.ledger_snapshot()  # one scan serves both loops
        skipped = 0
        for user_id, cells in ledger.items():
            for t, fp in cells.items():
                if t not in fingerprints or fp == (fingerprints[t] or ""):
                    continue
                if user_id in cell_times and 0 <= t < len(self.future_models):
                    cell_times[user_id].add(t)
                else:
                    # stored cells of users without a live session: they
                    # stay stale until resumed — surfaced, never silently
                    # dropped
                    skipped += 1
        horizon = set(range(len(self.future_models)))
        for session in sessions:
            # cells absent from the ledger entirely (the user's rows were
            # cleared while the session stayed live) have no fingerprint
            # to mismatch — treat them as stale so the store is restored
            cell_times[session.user_id] |= horizon - set(
                ledger.get(session.user_id, ())
            )
        deferred = 0
        if budget is not None:
            budget = int(budget)
            if budget < 0:
                raise ForecastError("budget must be >= 0 or None")
            flat = [
                (user_id, t)
                for user_id, times in cell_times.items()
                for t in times
            ]
            if len(flat) > budget:
                scores = self.store.user_priorities()
                flat.sort(
                    key=lambda cell: (
                        -scores.get(cell[0], 0.0), cell[0], cell[1]
                    )
                )
                deferred = len(flat) - budget
                kept: dict[str, set[int]] = {
                    user_id: set() for user_id in cell_times
                }
                for user_id, t in flat[:budget]:
                    kept[user_id].add(t)
                cell_times = kept
        if not sessions or not any(cell_times.values()):
            return RefreshReport(
                tuple(stale), fresh, len(sessions), 0, 0, warm, skipped,
                deferred_cells=deferred,
                freshness=(
                    self.store.traffic_weighted_freshness(fingerprints)
                    if budget is not None
                    else None
                ),
            )

        def run_one(task):
            session, t, warm_vectors = task
            use_warm = warm_vectors is not None and warm_vectors.size > 0
            generator = self._cell_generator(
                t, session.constraints, warm=use_warm
            )
            found = generator.generate(
                session.trajectory[t], time=t, warm_start=warm_vectors
            )
            return found, generator.last_stats_

        # warm vectors are prefetched here, on the calling thread: the
        # sqlite3 connection must not be touched from executor workers
        tasks = [
            (
                session,
                t,
                self._warm_vectors(session.user_id, t) if warm else None,
            )
            for session in sessions
            for t in sorted(cell_times[session.user_id])
        ]
        if getattr(cfg, "engine", "batch") == "fused":
            fused_cells = []
            for session, t, warm_vectors in tasks:
                use_warm = warm_vectors is not None and warm_vectors.size > 0
                fused_cells.append(
                    FusedCell(
                        cell_id=(session.user_id, t),
                        t=t,
                        x_base=session.trajectory[t],
                        generator=self._cell_generator(
                            t, session.constraints, warm=use_warm
                        ),
                        model_fp=fingerprints.get(t) or None,
                        warm_start=warm_vectors,
                        constraints_key=getattr(
                            session, "constraints_key", None
                        ),
                    )
                )
            outcome, _fused_report = generate_fused(fused_cells)
            results = [
                outcome[(session.user_id, t)] for session, t, _ in tasks
            ]
        else:
            results = self._run_tasks(run_one, tasks)

        cells = [
            (session.user_id, t, found, session.trajectory[t])
            for (session, t, _), (found, _) in zip(tasks, results)
        ]
        written = self.store.upsert_cells(cells, fingerprints=fingerprints)

        by_session: dict[str, dict[int, tuple]] = {}
        for (session, t, _), result in zip(tasks, results):
            by_session.setdefault(session.user_id, {})[t] = result
        for session in sessions:
            by_time = by_session.get(session.user_id, {})
            rebuilt: list[Candidate] = []
            for t in range(len(self.future_models)):
                if t in by_time:
                    rebuilt.extend(by_time[t][0])
                else:
                    rebuilt.extend(c for c in session.candidates if c.time == t)
            session.candidates = rebuilt
            if by_time:
                # resumed sessions start with empty stats; pad so the
                # recompute's diagnostics are recorded either way
                while len(session.search_stats) < len(self.future_models):
                    session.search_stats.append(None)
                for t, (_, search_stats) in by_time.items():
                    session.search_stats[t] = search_stats
        return RefreshReport(
            tuple(stale),
            fresh,
            len(sessions),
            len(cells),
            written,
            warm,
            skipped,
            search=search_counter_totals(stats for _, stats in results),
            deferred_cells=deferred,
            freshness=(
                self.store.traffic_weighted_freshness(fingerprints)
                if budget is not None
                else None
            ),
        )

    def _merge_history(
        self, history: TemporalDataset, new_data: TemporalDataset
    ) -> TemporalDataset:
        if new_data.schema != self.schema:
            raise ForecastError("new_data schema does not match system schema")
        return TemporalDataset.concat([history, new_data])

    # ------------------------------------------------------------ helpers

    def _warm_vectors(self, user_id: str, t: int) -> np.ndarray:
        """Stored candidate vectors seeding one cell's warm beam.

        With :attr:`AdminConfig.warm_top_m` set, only the m best stored
        candidates (by the configured objective) are seeded — the
        ROADMAP warm-start tuning: the old optima still anchor the beam,
        without the full stored set widening the explored frontier.
        """
        m = getattr(self.config, "warm_top_m", None)
        if m is None:
            return self.store.cell_vectors(user_id, t)
        candidates = self.store.load_candidates(user_id, time=t)
        if not candidates:
            return np.empty((0, len(self.schema)))
        objective = get_objective(self.config.objective)
        ranked = sorted(candidates, key=lambda c: objective.key(c.metrics))
        return np.vstack([c.x for c in ranked[:m]])

    def _cell_generator(
        self, t: int, constraints: ConstraintsFunction, *, warm: bool = False
    ) -> CandidateGenerator:
        """One (user, t) cell's candidates generator — the per-t seed
        formula makes any recompute of the cell deterministic.  ``warm``
        marks a search actually seeded with stored candidates, which may
        run under the tighter :attr:`AdminConfig.warm_patience`."""
        cfg = self.config
        future_model = self.future_models[t]
        patience = cfg.patience
        if warm and getattr(cfg, "warm_patience", None) is not None:
            patience = cfg.warm_patience
        # getattr: AdminConfig objects unpickled from pre-batch saves
        # lack the field.  Cross-cell engines ('fused') orchestrate cells
        # outside the generator, which itself always runs the per-cell
        # batch kernel.
        engine = getattr(cfg, "engine", "batch")
        if engine not in ("batch", "scalar"):
            engine = "batch"
        return CandidateGenerator(
            future_model.model,
            future_model.threshold,
            self.schema,
            constraints,
            k=cfg.k,
            beam_width=cfg.beam_width,
            max_iter=cfg.max_iter,
            patience=patience,
            objective=cfg.objective,
            diff_scale=self.diff_scale,
            random_state=cfg.random_state + 7919 * (t + 1),
            engine=engine,
        )

    def _run_tasks(self, run_one, tasks) -> list:
        """Run independent (user × time-point) tasks on the shared executor."""
        cfg = self.config
        if cfg.n_jobs > 1 and len(tasks) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=cfg.n_jobs) as pool:
                return list(pool.map(run_one, tasks))
        return [run_one(task) for task in tasks]

    @staticmethod
    def _constraint_texts(user_constraints) -> list | None:
        """JSON-able constraint entries for persistence, or ``None`` when
        not serialisable (opaque :class:`ConstraintsFunction` objects).

        DSL strings pass through; ASTs render to DSL (the pretty-printer
        round-trips through the parser); :class:`ScopedConstraint` items
        become ``{"expr", "times", "label"}`` dicts.
        """
        from repro.constraints.ast import BoolExpr
        from repro.constraints.evaluate import ScopedConstraint

        if user_constraints is None:
            return []
        if not isinstance(user_constraints, (list, tuple)):
            return None
        entries: list = []
        for item in user_constraints:
            if isinstance(item, str):
                entries.append(item)
            elif isinstance(item, ScopedConstraint):
                entries.append(
                    {
                        "expr": str(item.expr),
                        "times": (
                            None if item.times is None else sorted(item.times)
                        ),
                        "label": item.label,
                    }
                )
            elif isinstance(item, BoolExpr):
                entries.append(str(item))
            else:
                return None
        return entries

    @staticmethod
    def _constraints_cache_key(texts) -> str | None:
        """Deterministic identity of serialisable constraint texts.

        Feeds the fused engine's cell-dedup key; ``None`` (opaque
        constraints) opts the cell out of deduplication entirely.
        """
        return None if texts is None else json.dumps(texts, sort_keys=True)

    def _user_spec(self, user) -> tuple[str, np.ndarray, object]:
        """Normalise one ``create_sessions`` entry to (id, vector, constraints)."""
        if isinstance(user, dict):
            user_id = user["user_id"]
            profile = user["profile"]
            user_constraints = user.get("user_constraints")
        else:
            if len(user) not in (2, 3):
                raise CandidateSearchError(
                    "each user must be (user_id, profile) or"
                    " (user_id, profile, user_constraints)"
                )
            user_id, profile = user[0], user[1]
            user_constraints = user[2] if len(user) == 3 else None
        x = (
            self.schema.vector(profile)
            if isinstance(profile, dict)
            else np.asarray(profile, dtype=float).ravel()
        )
        if x.size != len(self.schema):
            raise CandidateSearchError(
                f"profile has {x.size} entries, schema expects {len(self.schema)}"
            )
        return str(user_id), x, user_constraints

    def _join_constraints(self, user_constraints) -> ConstraintsFunction:
        self._require_fitted()
        if user_constraints is None:
            return self.domain_constraints
        if isinstance(user_constraints, ConstraintsFunction):
            return self.domain_constraints.conjoin(user_constraints)
        fn = ConstraintsFunction(self.schema, diff_scale=self.diff_scale)
        for item in user_constraints:
            if isinstance(item, dict):
                # rehydrated ScopedConstraint spec (see _constraint_texts)
                fn.add(
                    item["expr"],
                    times=item.get("times"),
                    label=item.get("label", ""),
                )
            else:
                # ConstraintsFunction.add accepts DSL text, ASTs and
                # pre-scoped constraints alike
                fn.add(item)
        return self.domain_constraints.conjoin(fn)


class UserSession:
    """One user's view: profile, constraints, candidates, insights."""

    def __init__(
        self,
        system: JustInTime,
        user_id: str,
        profile: np.ndarray,
        trajectory: np.ndarray,
        constraints: ConstraintsFunction,
        candidates: list[Candidate],
        search_stats: list,
    ):
        self.system = system
        self.user_id = user_id
        self.profile = profile
        self.trajectory = trajectory
        self.constraints = constraints
        self.candidates = candidates
        self.search_stats = search_stats
        # Deterministic identity of the session's constraints, set by the
        # session factories when the constraint list is serialisable; the
        # fused engine uses it as part of its cell-dedup key.
        self.constraints_key: str | None = None
        self.engine = InsightEngine(
            system.store, user_id, system.time_values
        )

    # ------------------------------------------------------------ insights

    def ask(self, question: str, **params) -> Insight:
        """Answer one canned question (``'q1'`` .. ``'q6'``)."""
        return self.engine.ask(question, **params)

    def all_insights(self, alpha: float = 0.8, feature: str | None = None) -> list[Insight]:
        """Answer every canned question (Q3 needs a feature; defaults to
        the first mutable one)."""
        if feature is None:
            mutable = self.system.schema.mutable_indices()
            if mutable.size == 0:
                raise CandidateSearchError(
                    "all_insights needs a feature for Q3, but the schema has"
                    " no mutable features; pass feature= explicitly"
                )
            feature = self.system.schema.names[int(mutable[0])]
        return [
            self.ask("q1"),
            self.ask("q2"),
            self.ask("q3", feature=feature),
            self.ask("q4"),
            self.ask("q5"),
            self.ask("q6", alpha=alpha),
        ]

    def sql(self, query: str, params=()):
        """Expert passthrough to the candidate database."""
        return self.system.store.sql(query, params)

    # -------------------------------------------------------------- plans

    def plans(self, time: int | None = None) -> list[Plan]:
        """All stored candidates as plans, optionally for one time point."""
        plans = []
        for candidate in self.candidates:
            if time is not None and candidate.time != time:
                continue
            base = self.trajectory[candidate.time]
            plans.append(
                build_plan(
                    candidate,
                    base,
                    self.system.schema,
                    time_value=self.system.time_values[candidate.time],
                )
            )
        return plans

    def current_score(self) -> float:
        """Present-model score of the unmodified profile (t = 0)."""
        return self.system.future_models.score(self.trajectory[0], 0)

    def is_rejected_now(self) -> bool:
        """Whether the present model rejects the unmodified profile."""
        fm = self.system.future_models[0]
        return not fm.decides_positive(self.trajectory[0].reshape(1, -1))[0]
