"""The JustInTime system facade (Figure 1).

Wires the full architecture together:

* an administrator configures the horizon (T, Δ), the forecasting
  strategy, the model class and global domain constraints
  (:class:`AdminConfig`);
* :meth:`JustInTime.fit` runs the models generator over the timestamped
  training data — performed once, independent of any user;
* :meth:`JustInTime.create_session` registers a user profile plus
  preference constraints, projects the profile through the temporal
  update function, runs one candidates generator per time point (they are
  independent; here they run sequentially and deterministically), and
  stores temporal inputs and candidates in the relational store;
* the returned :class:`UserSession` exposes the canned-question interface
  and expert SQL passthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.constraints.domain import schema_domain_constraints
from repro.constraints.evaluate import ConstraintsFunction
from repro.core.candidates import Candidate, CandidateGenerator
from repro.core.insights import Insight, InsightEngine
from repro.core.objectives import Objective
from repro.core.plans import Plan, build_plan
from repro.data.dataset import TemporalDataset
from repro.data.schema import DatasetSchema
from repro.db.store import CandidateStore
from repro.exceptions import CandidateSearchError, ForecastError
from repro.temporal.forecast import ForecastStrategy, FutureModels, ModelsGenerator
from repro.temporal.update import TemporalUpdateFunction

__all__ = ["AdminConfig", "JustInTime", "UserSession"]


@dataclass
class AdminConfig:
    """System-administrator configuration (the demo's admin UI).

    ``T`` and ``delta`` "control the amount and time intervals between
    future time points" (§I); the rest selects the forecasting strategy,
    model class, threshold calibration and search budget.
    """

    T: int = 5
    delta: float = 1.0
    strategy: str | ForecastStrategy = "edd"
    model_factory: object | None = None
    threshold_method: str = "fixed"
    fixed_threshold: float = 0.5
    target_rate: float | None = None
    k: int = 8
    beam_width: int | None = None
    max_iter: int = 15
    patience: int = 3
    objective: str | Objective = "balanced"
    random_state: int = 0
    #: candidates generators per (user, time point) are independent
    #: (§II.B: "they can be executed in parallel"); n_jobs > 1 runs them
    #: on one shared thread pool.  Results are identical to sequential
    #: execution (per-t seeds).
    n_jobs: int = 1
    #: candidate-search engine: 'batch' (vectorized) or 'scalar'
    #: (row-at-a-time reference); both produce identical candidates.
    engine: str = "batch"
    extra: dict = field(default_factory=dict)


class JustInTime:
    """End-to-end system: models generator + candidates generators + DB.

    Parameters
    ----------
    schema:
        Feature schema of the application domain.
    update_function:
        Temporal update function (Definition II.4).
    config:
        Admin configuration; defaults are the demo-scale settings.
    domain_constraints:
        Global constraints imposed on all users; defaults to the
        schema-derived integrity constraints.
    store_path:
        SQLite path or ``':memory:'``.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        update_function: TemporalUpdateFunction,
        config: AdminConfig | None = None,
        domain_constraints: ConstraintsFunction | None = None,
        store_path: str | Path = ":memory:",
    ):
        self.schema = schema
        self.update_function = update_function
        self.config = config or AdminConfig()
        self._explicit_domain = domain_constraints
        self.store = CandidateStore(schema, store_path)
        self.future_models: FutureModels | None = None
        self.diff_scale: np.ndarray | None = None
        self.domain_constraints: ConstraintsFunction | None = None

    # ----------------------------------------------------------------- fit

    def fit(self, history: TemporalDataset, now: float | None = None) -> "JustInTime":
        """Run the models generator (user-independent, done once)."""
        if history.schema != self.schema:
            raise ForecastError("history schema does not match system schema")
        cfg = self.config
        generator = ModelsGenerator(
            T=cfg.T,
            delta=cfg.delta,
            strategy=cfg.strategy,
            model_factory=cfg.model_factory,
            threshold_method=cfg.threshold_method,
            fixed_threshold=cfg.fixed_threshold,
            target_rate=cfg.target_rate,
            random_state=cfg.random_state,
        )
        self.future_models = generator.generate(history, now=now)
        scale = history.X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.diff_scale = scale
        domain = self._explicit_domain or schema_domain_constraints(self.schema)
        # rebuild with the diff scale attached so user constraints on
        # 'diff' are interpreted in scaled units consistently
        self.domain_constraints = ConstraintsFunction(
            self.schema, list(domain.constraints), diff_scale=self.diff_scale
        )
        return self

    @property
    def time_values(self) -> list[float]:
        """Calendar value of each time index t = 0 .. T."""
        self._require_fitted()
        return [fm.time_value for fm in self.future_models]

    def _require_fitted(self) -> None:
        if self.future_models is None:
            raise ForecastError("JustInTime is not fitted; call fit() first")

    # -------------------------------------------------------------- users

    def create_session(
        self,
        user_id: str,
        profile: dict[str, float] | np.ndarray,
        user_constraints=None,
    ) -> "UserSession":
        """Register a user and generate their candidate database rows.

        ``user_constraints`` may be a :class:`ConstraintsFunction`, a list
        of DSL strings / :class:`ScopedConstraint` items, or ``None``.
        Existing rows for ``user_id`` are replaced (the demo lets a
        participant revise preferences and re-run).
        """
        return self.create_sessions([(user_id, profile, user_constraints)])[0]

    def create_sessions(self, users) -> "list[UserSession]":
        """Register a batch of users and generate all their candidates.

        ``users`` is an iterable of ``(user_id, profile)`` or
        ``(user_id, profile, user_constraints)`` tuples (or dicts with
        those keys).  All (user × time-point) candidates generators are
        independent, so they are scheduled as one flat task list on a
        single shared executor (``AdminConfig.n_jobs`` workers) instead
        of a pool per user, and all database rows are written in one
        transaction.  Candidates are identical to calling
        :meth:`create_session` per user, in order.
        """
        self._require_fitted()
        cfg = self.config
        specs = [self._user_spec(user) for user in users]
        seen: set[str] = set()
        for user_id, _, _ in specs:
            if user_id in seen:
                raise CandidateSearchError(
                    f"duplicate user_id {user_id!r} in create_sessions batch"
                )
            seen.add(user_id)
        prepared = [
            (
                user_id,
                x,
                self.update_function.trajectory(x, cfg.T),
                self._join_constraints(user_constraints),
            )
            for user_id, x, user_constraints in specs
        ]

        def run_one(task):
            user_index, future_model = task
            _, _, trajectory, constraints = prepared[user_index]
            t = future_model.t
            generator = CandidateGenerator(
                future_model.model,
                future_model.threshold,
                self.schema,
                constraints,
                k=cfg.k,
                beam_width=cfg.beam_width,
                max_iter=cfg.max_iter,
                patience=cfg.patience,
                objective=cfg.objective,
                diff_scale=self.diff_scale,
                random_state=cfg.random_state + 7919 * (t + 1),
                # getattr: AdminConfig objects unpickled from pre-batch
                # saves lack the field
                engine=getattr(cfg, "engine", "batch"),
            )
            return generator.generate(trajectory[t], time=t), generator.last_stats_

        tasks = [
            (user_index, future_model)
            for user_index in range(len(prepared))
            for future_model in self.future_models
        ]
        if cfg.n_jobs > 1 and len(tasks) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=cfg.n_jobs) as pool:
                results = list(pool.map(run_one, tasks))
        else:
            results = [run_one(task) for task in tasks]

        sessions: list[UserSession] = []
        per_user = len(self.future_models)
        bulk_rows = []
        for user_index, (user_id, x, trajectory, constraints) in enumerate(prepared):
            user_results = results[user_index * per_user : (user_index + 1) * per_user]
            all_candidates: list[Candidate] = []
            stats = []
            for found, search_stats in user_results:
                stats.append(search_stats)
                all_candidates.extend(found)
            bulk_rows.append((user_id, trajectory, all_candidates))
            sessions.append(
                UserSession(
                    system=self,
                    user_id=user_id,
                    profile=x,
                    trajectory=trajectory,
                    constraints=constraints,
                    candidates=all_candidates,
                    search_stats=stats,
                )
            )
        self.store.store_sessions(bulk_rows)
        return sessions

    def _user_spec(self, user) -> tuple[str, np.ndarray, object]:
        """Normalise one ``create_sessions`` entry to (id, vector, constraints)."""
        if isinstance(user, dict):
            user_id = user["user_id"]
            profile = user["profile"]
            user_constraints = user.get("user_constraints")
        else:
            if len(user) not in (2, 3):
                raise CandidateSearchError(
                    "each user must be (user_id, profile) or"
                    " (user_id, profile, user_constraints)"
                )
            user_id, profile = user[0], user[1]
            user_constraints = user[2] if len(user) == 3 else None
        x = (
            self.schema.vector(profile)
            if isinstance(profile, dict)
            else np.asarray(profile, dtype=float).ravel()
        )
        if x.size != len(self.schema):
            raise CandidateSearchError(
                f"profile has {x.size} entries, schema expects {len(self.schema)}"
            )
        return str(user_id), x, user_constraints

    def _join_constraints(self, user_constraints) -> ConstraintsFunction:
        self._require_fitted()
        if user_constraints is None:
            return self.domain_constraints
        if isinstance(user_constraints, ConstraintsFunction):
            return self.domain_constraints.conjoin(user_constraints)
        fn = ConstraintsFunction(self.schema, diff_scale=self.diff_scale)
        for item in user_constraints:
            # ConstraintsFunction.add accepts DSL text, ASTs and
            # pre-scoped constraints alike
            fn.add(item)
        return self.domain_constraints.conjoin(fn)


class UserSession:
    """One user's view: profile, constraints, candidates, insights."""

    def __init__(
        self,
        system: JustInTime,
        user_id: str,
        profile: np.ndarray,
        trajectory: np.ndarray,
        constraints: ConstraintsFunction,
        candidates: list[Candidate],
        search_stats: list,
    ):
        self.system = system
        self.user_id = user_id
        self.profile = profile
        self.trajectory = trajectory
        self.constraints = constraints
        self.candidates = candidates
        self.search_stats = search_stats
        self.engine = InsightEngine(
            system.store, user_id, system.time_values
        )

    # ------------------------------------------------------------ insights

    def ask(self, question: str, **params) -> Insight:
        """Answer one canned question (``'q1'`` .. ``'q6'``)."""
        return self.engine.ask(question, **params)

    def all_insights(self, alpha: float = 0.8, feature: str | None = None) -> list[Insight]:
        """Answer every canned question (Q3 needs a feature; defaults to
        the first mutable one)."""
        if feature is None:
            mutable = self.system.schema.mutable_indices()
            if mutable.size == 0:
                raise CandidateSearchError(
                    "all_insights needs a feature for Q3, but the schema has"
                    " no mutable features; pass feature= explicitly"
                )
            feature = self.system.schema.names[int(mutable[0])]
        return [
            self.ask("q1"),
            self.ask("q2"),
            self.ask("q3", feature=feature),
            self.ask("q4"),
            self.ask("q5"),
            self.ask("q6", alpha=alpha),
        ]

    def sql(self, query: str, params=()):
        """Expert passthrough to the candidate database."""
        return self.system.store.sql(query, params)

    # -------------------------------------------------------------- plans

    def plans(self, time: int | None = None) -> list[Plan]:
        """All stored candidates as plans, optionally for one time point."""
        plans = []
        for candidate in self.candidates:
            if time is not None and candidate.time != time:
                continue
            base = self.trajectory[candidate.time]
            plans.append(
                build_plan(
                    candidate,
                    base,
                    self.system.schema,
                    time_value=self.system.time_values[candidate.time],
                )
            )
        return plans

    def current_score(self) -> float:
        """Present-model score of the unmodified profile (t = 0)."""
        return self.system.future_models.score(self.trajectory[0], 0)

    def is_rejected_now(self) -> bool:
        """Whether the present model rejects the unmodified profile."""
        fm = self.system.future_models[0]
        return not fm.decides_positive(self.trajectory[0].reshape(1, -1))[0]
