"""Model-dependent move proposers for the candidate search.

The algorithm of [5] "applies model-dependent heuristics" to walk from the
rejected input toward the decision boundary.  Each proposer suggests
single-coordinate modifications of the current search state:

* :class:`ThresholdMoveProposer` — for tree ensembles: the score surface
  only changes when a feature crosses a split threshold, so the proposer
  jumps each mutable feature just past its nearest thresholds on either
  side (the classic tree-counterfactual heuristic).
* :class:`GradientMoveProposer` — for differentiable scorers exposing
  ``score_gradient``: moves coordinates in the direction that increases
  the score, at several step sizes.
* :class:`RandomMoveProposer` — model-agnostic exploration: perturbs a
  random mutable coordinate by a schema-scaled amount.  Keeps the search
  complete-ish when the structured heuristics stall.

Moves never touch immutable features and are clipped to schema bounds, so
every proposal is at least physically plausible before constraint
checking.

Batched path
------------
:meth:`MoveProposer.propose_batch` emits the proposals of *all* beam
states in one call, returning one ``(m_i, d)`` matrix per state.  The
default implementation loops over :meth:`propose` (bit-identical,
including the RNG draw order — only one default proposer consumes the
RNG, and it draws state-by-state in both paths);
:class:`ThresholdMoveProposer` overrides it with a fully vectorized
implementation (searchsorted threshold lookup + one matrix clip).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import DatasetSchema
from repro.exceptions import CandidateSearchError

__all__ = [
    "MoveProposer",
    "ThresholdMoveProposer",
    "GradientMoveProposer",
    "RandomMoveProposer",
    "default_proposers",
]

#: Relative margin used when stepping across a split threshold.
_CROSS_MARGIN = 1e-3


class MoveProposer:
    """Suggests modified vectors around a search state."""

    def propose(
        self,
        x_current: np.ndarray,
        model,
        schema: DatasetSchema,
        rng: np.random.Generator,
    ) -> list[np.ndarray]:
        raise NotImplementedError

    def propose_batch(
        self,
        states: list[np.ndarray],
        model,
        schema: DatasetSchema,
        rng: np.random.Generator,
    ) -> list[np.ndarray]:
        """Proposals for every state: one ``(m_i, d)`` matrix per state.

        The default delegates to :meth:`propose` state-by-state, which
        preserves the exact RNG draw order of the scalar search loop.
        """
        d = len(schema)
        out = []
        for state in states:
            proposals = self.propose(state, model, schema, rng)
            if proposals:
                out.append(np.asarray(proposals, dtype=float).reshape(-1, d))
            else:
                out.append(np.empty((0, d)))
        return out


def _feature_margin(value: float) -> float:
    """Small absolute step proportional to the value scale."""
    return max(abs(value) * _CROSS_MARGIN, 1e-6)


def _quantile_spread(values: np.ndarray, n: int) -> np.ndarray:
    """Up to ``n`` values spread evenly (by rank) across ``values``."""
    if n == 0 or values.size == 0:
        return np.empty(0)
    if values.size <= n:
        return values
    idx = np.unique(np.linspace(0, values.size - 1, n).round().astype(int))
    return values[idx]


class ThresholdMoveProposer(MoveProposer):
    """Jump mutable features across the model's split thresholds.

    Ensemble scores only change when a feature crosses a split, so
    candidate values per feature are "just past" thresholds.  Proposals
    combine the ``n_nearest`` thresholds on each side of the current value
    (local refinement) with ``n_far`` quantile-spread thresholds across
    the full per-feature range (long jumps) — without the long jumps the
    search cannot escape the flat zero-score plateau around a strongly
    rejected input.

    Parameters
    ----------
    n_nearest:
        Thresholds tried immediately on each side of the current value.
    n_far:
        Additional quantile-spread thresholds per direction.
    """

    def __init__(self, n_nearest: int = 3, n_far: int = 4):
        if n_nearest < 1:
            raise CandidateSearchError("n_nearest must be >= 1")
        if n_far < 0:
            raise CandidateSearchError("n_far must be >= 0")
        self.n_nearest = n_nearest
        self.n_far = n_far
        self._cache_model = None
        self._cache_thresholds: dict[int, np.ndarray] | None = None
        self._targets_memo: dict[tuple, np.ndarray] = {}

    def _thresholds(self, model) -> dict[int, np.ndarray]:
        if model is not self._cache_model:
            if not hasattr(model, "split_thresholds"):
                raise CandidateSearchError(
                    f"{type(model).__name__} exposes no split_thresholds;"
                    " use GradientMoveProposer or RandomMoveProposer"
                )
            self._cache_model = model
            # sort defensively: both the nearest-k slicing and the batch
            # searchsorted lookup require ascending thresholds, which a
            # duck-typed model may not guarantee
            self._cache_thresholds = {
                feature: np.sort(values)
                for feature, values in model.split_thresholds().items()
            }
            self._targets_memo = {}
        return self._cache_thresholds

    def _targets_for(self, value: float, feature_thresholds: np.ndarray) -> np.ndarray:
        """Candidate values for one feature: nearest and quantile-spread
        thresholds on both sides of ``value``, margin-shifted past the
        split.  Shared by the scalar and batch paths so their proposals
        cannot drift apart.  ``feature_thresholds`` is sorted, so the
        strict >/< splits are two binary searches.

        Memoized per ``(feature thresholds, value)``: a beam revisits the
        same feature values constantly, and the fused multi-cell engine
        shares one proposer across every cell of a time point, so the
        same lookups recur across users.  The memo is invalidated with
        the threshold cache when the model changes; callers never mutate
        the returned array (every consumer copies via ``concatenate``).
        """
        memo_key = (id(feature_thresholds), float(value))
        cached = self._targets_memo.get(memo_key)
        if cached is not None:
            return cached
        targets = self._targets_uncached(value, feature_thresholds)
        self._targets_memo[memo_key] = targets
        return targets

    def _targets_uncached(
        self, value: float, feature_thresholds: np.ndarray
    ) -> np.ndarray:
        margin = _feature_margin(value)
        first_above = np.searchsorted(
            feature_thresholds, value + 1e-12, side="right"
        )
        first_at_or_above = np.searchsorted(
            feature_thresholds, value - 1e-12, side="left"
        )
        above = feature_thresholds[first_above:]
        below = feature_thresholds[:first_at_or_above]
        return np.concatenate(
            [
                above[: self.n_nearest] + margin,
                below[-self.n_nearest:] - margin,
                _quantile_spread(above[self.n_nearest:], self.n_far) + margin,
                _quantile_spread(below[: -self.n_nearest or None], self.n_far)
                - margin,
            ]
        )

    def propose(self, x_current, model, schema, rng) -> list[np.ndarray]:
        thresholds = self._thresholds(model)
        proposals: list[np.ndarray] = []
        for idx in schema.mutable_indices():
            feature_thresholds = thresholds.get(int(idx))
            if feature_thresholds is None or feature_thresholds.size == 0:
                continue
            value = x_current[idx]
            targets = self._targets_for(value, feature_thresholds)
            for target in targets:
                candidate = x_current.copy()
                candidate[idx] = target
                candidate = schema.clip(candidate)
                # integer rounding can undo a crossing; nudge one unit
                if candidate[idx] == x_current[idx]:
                    candidate[idx] = x_current[idx] + np.sign(target - value)
                    candidate = schema.clip(candidate)
                    if candidate[idx] == x_current[idx]:
                        continue
                proposals.append(candidate)
        return proposals

    def propose_batch(self, states, model, schema, rng) -> list[np.ndarray]:
        """Vectorized multi-state proposal: identical rows and row order
        to calling :meth:`propose` per state, but candidate
        materialization, clipping and the integer-rounding nudge run as
        matrix operations over all (state, feature, target) rows at once.
        """
        thresholds = self._thresholds(model)
        d = len(schema)
        if not len(states):
            return []
        S = np.atleast_2d(np.asarray(states, dtype=float))
        mutable = schema.mutable_indices()
        state_of, col_of, target_chunks = [], [], []
        for si in range(S.shape[0]):
            for idx in mutable:
                feature_thresholds = thresholds.get(int(idx))
                if feature_thresholds is None or feature_thresholds.size == 0:
                    continue
                targets = self._targets_for(S[si, idx], feature_thresholds)
                if targets.size:
                    state_of.append(np.full(targets.size, si))
                    col_of.append(np.full(targets.size, idx))
                    target_chunks.append(targets)
        if not target_chunks:
            return [np.empty((0, d)) for _ in range(S.shape[0])]
        state_of = np.concatenate(state_of)
        col_of = np.concatenate(col_of)
        targets = np.concatenate(target_chunks)
        m = targets.size
        rows = np.arange(m)
        candidates = S[state_of]
        original = candidates[rows, col_of]
        candidates[rows, col_of] = targets
        candidates = schema.clip_matrix(candidates)
        # integer rounding can undo a crossing; nudge one unit and re-clip
        undone = candidates[rows, col_of] == original
        keep = np.ones(m, dtype=bool)
        if undone.any():
            which = rows[undone]
            candidates[which, col_of[undone]] = original[undone] + np.sign(
                targets[undone] - original[undone]
            )
            candidates[which] = schema.clip_matrix(candidates[which])
            keep[which] = candidates[which, col_of[undone]] != original[undone]
        candidates = candidates[keep]
        state_of = state_of[keep]
        # rows were appended state-major, so one split recovers per-state
        bounds = np.searchsorted(state_of, np.arange(1, S.shape[0]))
        return np.split(candidates, bounds)


class GradientMoveProposer(MoveProposer):
    """Per-coordinate steps along the model's score gradient.

    ``step_fractions`` scale the per-feature move relative to the
    feature's schema ``step`` (or 1% of the current magnitude when the
    schema gives none).
    """

    def __init__(self, step_fractions: tuple[float, ...] = (1.0, 4.0, 16.0)):
        if not step_fractions:
            raise CandidateSearchError("step_fractions must be non-empty")
        self.step_fractions = step_fractions

    def propose(self, x_current, model, schema, rng) -> list[np.ndarray]:
        if not hasattr(model, "score_gradient"):
            raise CandidateSearchError(
                f"{type(model).__name__} exposes no score_gradient;"
                " use ThresholdMoveProposer or RandomMoveProposer"
            )
        gradient = np.asarray(model.score_gradient(x_current), dtype=float)
        proposals: list[np.ndarray] = []
        for idx in schema.mutable_indices():
            direction = np.sign(gradient[idx])
            if direction == 0:
                continue
            spec = schema[int(idx)]
            base_step = spec.step or max(abs(x_current[idx]) * 0.01, 1.0)
            for fraction in self.step_fractions:
                candidate = x_current.copy()
                candidate[idx] = x_current[idx] + direction * base_step * fraction
                candidate = schema.clip(candidate)
                if candidate[idx] != x_current[idx]:
                    proposals.append(candidate)
        return proposals


class RandomMoveProposer(MoveProposer):
    """Schema-scaled random single-coordinate perturbations."""

    def __init__(self, n_proposals: int = 8, spread: float = 4.0):
        if n_proposals < 1:
            raise CandidateSearchError("n_proposals must be >= 1")
        self.n_proposals = n_proposals
        self.spread = spread

    def propose(self, x_current, model, schema, rng) -> list[np.ndarray]:
        mutable = schema.mutable_indices()
        if mutable.size == 0:
            return []
        proposals: list[np.ndarray] = []
        for _ in range(self.n_proposals):
            idx = int(rng.choice(mutable))
            spec = schema[idx]
            if spec.dtype == "categorical" and spec.categories:
                options = [c for c in spec.categories if c != x_current[idx]]
                if not options:
                    continue
                new_value = float(rng.choice(options))
            else:
                base_step = spec.step or max(abs(x_current[idx]) * 0.01, 1.0)
                new_value = x_current[idx] + rng.normal(0.0, self.spread) * base_step
            candidate = x_current.copy()
            candidate[idx] = new_value
            candidate = schema.clip(candidate)
            if candidate[idx] != x_current[idx]:
                proposals.append(candidate)
        return proposals


def default_proposers(model) -> list[MoveProposer]:
    """Pick proposers matching the model's capabilities.

    Tree ensembles get threshold moves, differentiable models get gradient
    moves; both are backed by random exploration.
    """
    proposers: list[MoveProposer] = []
    if hasattr(model, "split_thresholds"):
        proposers.append(ThresholdMoveProposer())
    if hasattr(model, "score_gradient"):
        proposers.append(GradientMoveProposer())
    proposers.append(RandomMoveProposer())
    return proposers
