"""Persistence of fitted JustInTime systems.

The paper's deployment is long-lived: "an initial configuration is
performed by a system administrator", the models generator runs once, and
users interact later.  That requires the fitted system to outlive the
process.  :func:`save_system` / :func:`load_system` pickle everything
except the sqlite connection (the store is re-opened from its own path on
load, or fresh in-memory when the original was in-memory).

All models are pure numpy/Python objects, so pickling is stable across
processes with the same library version.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.core.system import JustInTime
from repro.exceptions import StorageError

__all__ = ["save_system", "load_system"]

#: v1 lacked ``history``; v2 adds it so a loaded system can ``refresh``
#: on incremental data without being handed the full history again.
#: (The optional ``extra`` key is backward/forward compatible within v2.)
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_system(
    system: JustInTime, path: str | Path, extra: dict | None = None
) -> None:
    """Serialise a (typically fitted) system to ``path``.

    The candidate store's *contents* are not pickled — candidates live in
    the store's own database file (persist them by constructing the
    system with a file-backed ``store_path``).

    ``extra`` is an optional dict of caller state persisted **in the
    same file** and restored as :attr:`JustInTime.saved_extra` — e.g.
    the refresh daemon's feed byte offset, which must move atomically
    with the merged history (two separate files could disagree after a
    crash, double- or under-ingesting the feed).  ``None`` (the
    default) preserves the system's current :attr:`saved_extra`, so a
    `refresh`/`refresh-workers` re-save of a daemon-managed system does
    not wipe the daemon's feed cursor; pass a dict (possibly empty) to
    replace it.  The payload is written to a temp file and renamed into
    place, so a crash mid-save leaves the previous save intact.
    """
    if extra is None:
        extra = getattr(system, "saved_extra", None)
    payload = {
        "version": _FORMAT_VERSION,
        "schema": system.schema,
        "update_function": system.update_function,
        "config": system.config,
        "explicit_domain": system._explicit_domain,
        "future_models": system.future_models,
        "diff_scale": system.diff_scale,
        "domain_constraints": system.domain_constraints,
        "history": system._history,
        "extra": dict(extra) if extra else {},
    }
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def load_system(
    path: str | Path,
    store_path: str | Path = ":memory:",
    store_backend=None,
) -> JustInTime:
    """Reconstruct a system saved by :func:`save_system`.

    ``store_path`` points at the candidate database to attach (the same
    file the original system used, or a fresh one); ``store_backend``
    selects its backend as in :class:`JustInTime`.
    """
    path = Path(path)
    with path.open("rb") as handle:
        payload = pickle.load(handle)
    version = payload.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise StorageError(
            f"unsupported system file version {version!r}"
            f" (expected one of {_SUPPORTED_VERSIONS})"
        )
    system = JustInTime(
        payload["schema"],
        payload["update_function"],
        payload["config"],
        domain_constraints=payload["explicit_domain"],
        store_path=store_path,
        store_backend=store_backend,
    )
    system.future_models = payload["future_models"]
    system.diff_scale = payload["diff_scale"]
    system.domain_constraints = payload["domain_constraints"]
    system._history = payload.get("history")
    system.saved_extra = dict(payload.get("extra") or {})
    return system
