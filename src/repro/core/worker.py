"""Lease-coordinated refresh workers: drain stale cells across processes.

:meth:`JustInTime.refresh` recomputes stale cells inline; at service
scale the recompute is the expensive part (one beam search per stale
(user × time-point) cell), and the cells are embarrassingly parallel.
This module turns the store's staleness ledger into a **work queue**:

1. the coordinator refits the models (:meth:`JustInTime.refit`) and
   saves the system — every stored cell stamped under an old fingerprint
   is now stale;
2. N worker *processes* each load the saved system, open their own
   connection to the shared store, and run :func:`drain_stale_cells`:
   claim a few stale cells under a lease
   (:meth:`CandidateStore.claim_stale_cells` — atomic across processes),
   recompute them from the persisted session specs, upsert, release,
   repeat until the ledger is clean;
3. leases expire, so a worker that dies mid-cell merely delays that
   cell until another worker reclaims it — no cell is lost and none is
   computed twice while a lease is live.

Every cell's recompute is deterministic (per-t seeds, spec-rehydrated
constraints), so the final store contents are **byte-identical** to a
single-process ``refresh()`` no matter how cells were distributed —
``CandidateStore.contents_digest`` asserts exactly that in the tests,
the CI smoke and ``benchmarks/bench_streaming_refresh.py``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.candidates import search_counter_totals
from repro.core.fused import EpochProposalCache, FusedCell, generate_fused
from repro.core.persistence import load_system
from repro.exceptions import StorageError

__all__ = ["PoolReport", "WorkerReport", "drain_stale_cells", "run_worker_pool"]


@dataclass
class WorkerReport:
    """Outcome of one worker's :func:`drain_stale_cells` run."""

    worker_id: str
    #: (user, time) cells this worker recomputed and released
    cells: list = field(default_factory=list)
    #: candidate rows this worker upserted
    candidates_written: int = 0
    #: stale cells claimed but not computable by anyone — no persisted
    #: session spec, or opaque (non-serialised) constraints; released
    #: and excluded from this worker's further claims
    skipped_cells: list = field(default_factory=list)
    #: claims whose lease had already expired and been taken over by
    #: another worker before the compute started (crash-recovery path)
    lost_leases: int = 0
    #: summed :class:`~repro.core.candidates.SearchStats` counters over
    #: every cell this worker computed (plus ``cells_deduped`` on the
    #: fused engine) — the work performed, including computes whose
    #: lease was lost before the upsert
    search: dict = field(default_factory=dict)


@dataclass(frozen=True)
class PoolReport:
    """Aggregate outcome of :func:`run_worker_pool`."""

    workers: tuple
    cells_recomputed: int
    candidates_written: int
    #: distinct uncomputable cells observed across the pool
    skipped_cells: tuple
    #: per-key sum of the workers' :attr:`WorkerReport.search` counters
    search: dict = field(default_factory=dict)
    #: post-drain :meth:`CandidateStore.traffic_weighted_freshness`
    #: snapshot (``stats_store``/``fingerprints`` given to
    #: :func:`run_worker_pool`); ``None`` otherwise
    freshness: dict | None = None


def drain_stale_cells(
    system,
    *,
    worker_id: str | None = None,
    claim_batch: int = 2,
    lease_seconds: float = 30.0,
    warm_start: bool | None = None,
    max_cells: int | None = None,
    claim_schema: str | None = None,
    engine: str | None = None,
    leader_token: tuple | None = None,
    clock=None,
    sleep=time.sleep,
) -> WorkerReport:
    """Claim → recompute → upsert → release until the ledger is clean.

    ``system`` is a fitted :class:`~repro.core.system.JustInTime` whose
    store is (typically) shared with other workers.  Cells are claimed
    in small batches under ``lease_seconds`` leases and recomputed from
    the *persisted* session specs — profile and DSL constraint texts —
    so a worker process needs no live :class:`UserSession` objects.
    Users without a resumable spec are skipped (released + reported),
    mirroring :meth:`JustInTime.resume_sessions`.

    ``warm_start`` overrides :attr:`AdminConfig.warm_start`; the
    bit-identical-to-``refresh()`` reference path is ``warm_start=False``
    on both sides (and warm runs are identical too, since warm seeds
    come from the same stored rows either way).  ``max_cells`` bounds
    this worker's total work (tests); ``clock`` injects the lease clock
    and defaults to the **store-side** clock
    (:meth:`CandidateStore.clock_now`), so workers on hosts with skewed
    wall clocks still agree on lease expiry.

    ``claim_schema`` pins this worker's **shard affinity**: claims
    drain that schema's stale cells first, so on a sharded store each
    worker's upserts land on its own shard file's write connection and
    never serialise against the other workers (the per-shard parallel
    write path).  Workers fall through to foreign shards once their own
    is clean, so the drain still finishes everything.  The final store
    contents are byte-identical either way — cells are deterministic,
    only the claim order changes.

    When a claim comes back empty but computable stale cells remain
    under **live foreign leases**, the worker waits (``sleep``, in small
    steps) instead of exiting: if the holder finishes, the cells leave
    the stale set and the drain ends; if the holder crashed, their
    leases expire and this worker reclaims the cells — the
    crash-recovery guarantee would be vacuous if survivors exited while
    the crashed worker's leases were still ticking.

    ``engine`` overrides :attr:`AdminConfig.engine` for the drain.  With
    ``'fused'``, each claim batch is recomputed as **one**
    :func:`~repro.core.fused.generate_fused` call — every cell's beam
    advances in lock-step, model scoring is grouped across cells, and an
    :class:`~repro.core.fused.EpochProposalCache` persists across claim
    batches so identical proposal rows seen under the same model
    fingerprint are never re-scored.  Surviving cells are written in one
    grouped ``upsert_cells`` transaction.  The store contents stay
    byte-identical to the per-cell drain.

    ``leader_token`` — a ``(node_id, lease_epoch)`` pair from the
    dispatching HA orchestrator — fences the drain on the leader seat:
    each claim round first verifies the pair still holds the store's
    ``leader_lease`` (:meth:`CandidateStore.verify_leader`) and the
    worker stops claiming the moment it does not.  A deposed leader's
    pool therefore winds down instead of computing cells on behalf of a
    leadership that no longer exists; its outstanding leases expire and
    the new leader's own pool picks the cells up.
    """
    system._require_fitted()
    cfg = system.config
    store = system.store
    if clock is None:
        clock = store.clock_now
    if worker_id is None:
        worker_id = f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    warm = bool(cfg.warm_start if warm_start is None else warm_start)
    engine_name = engine if engine is not None else getattr(cfg, "engine", "batch")
    fused = engine_name == "fused"
    # one cache for the whole drain: claim batches under the same model
    # fingerprints keep hitting rows scored in earlier batches
    epoch_cache = EpochProposalCache() if fused else None
    fingerprints = system.model_fingerprints
    specs = {
        user_id: (profile, texts)
        for user_id, profile, texts in store.load_session_specs()
    }
    trajectories: dict[str, object] = {}
    constraints: dict[str, object] = {}
    constraint_keys: dict[str, str | None] = {}
    all_stats: list = []
    cells_deduped = 0
    report = WorkerReport(worker_id=worker_id)
    unrecoverable: set[tuple[str, int]] = set()

    def prepare(user_id: str, t: int) -> bool:
        """Spec-check + lease renewal + per-user hydration for one claim.

        Returns ``True`` when the cell is ready to compute; skip/lost
        bookkeeping already done otherwise.
        """
        spec = specs.get(user_id)
        if spec is None or spec[1] is None:
            # not recomputable by any worker: hand the lease back and
            # never claim the cell again (it stays stale until the
            # user's session is recreated — surfaced, like refresh's
            # skipped_stale_cells)
            unrecoverable.add((user_id, t))
            store.release_cells(worker_id, [(user_id, t)])
            report.skipped_cells.append((user_id, t))
            return False
        # re-arm the lease for the compute ahead; a failed renewal
        # means it expired and another worker owns the cell now
        renewed = store.renew_leases(
            worker_id,
            [(user_id, t)],
            lease_seconds=lease_seconds,
            now=clock(),
        )
        if not renewed:
            report.lost_leases += 1
            return False
        if user_id not in trajectories:
            profile, texts = spec
            trajectories[user_id] = system.update_function.trajectory(
                profile, cfg.T
            )
            constraints[user_id] = system._join_constraints(texts)
            constraint_keys[user_id] = system._constraints_cache_key(texts)
        return True

    while True:
        if leader_token is not None and not store.verify_leader(
            str(leader_token[0]), int(leader_token[1]), now=clock()
        ):
            # the dispatching orchestrator was deposed: stop claiming on
            # its behalf — the new leader's own pool owns the drain now
            break
        budget = (
            claim_batch
            if max_cells is None
            else min(claim_batch, max_cells - len(report.cells))
        )
        if budget < 1:
            break
        claimed = store.claim_stale_cells(
            fingerprints,
            worker_id,
            limit=budget,
            lease_seconds=lease_seconds,
            now=clock(),
            exclude=unrecoverable,
            prefer_schema=claim_schema,
        )
        if not claimed:
            if store.refresh_budget_remaining() == 0:
                # the epoch's durable compute budget is spent: remaining
                # stale cells are *deferred*, not leased — waiting here
                # would spin forever (nothing will free more budget
                # until the orchestrator re-arms it next epoch)
                store.prune_expired_leases(now=clock())
                break
            if not store.has_stale_cells(fingerprints, exclude=unrecoverable):
                # queue genuinely drained; sweep expired lease rows left
                # behind by workers that died after upserting a cell but
                # before releasing it (the cell is fresh, so nothing
                # would ever claim — and thereby clean up — its lease)
                store.prune_expired_leases(now=clock())
                break
            # remaining stale cells are leased to other workers: wait for
            # them to finish (cells go fresh) or crash (leases expire and
            # the next claim picks the cells up)
            sleep(min(1.0, max(float(lease_seconds) / 4.0, 0.05)))
            continue
        if fused:
            ready = [(u, t) for u, t in claimed if prepare(u, t)]
            if not ready:
                continue
            fused_cells = []
            for user_id, t in ready:
                warm_vectors = (
                    system._warm_vectors(user_id, t) if warm else None
                )
                use_warm = warm_vectors is not None and warm_vectors.size > 0
                fused_cells.append(
                    FusedCell(
                        cell_id=(user_id, t),
                        t=t,
                        x_base=trajectories[user_id][t],
                        generator=system._cell_generator(
                            t, constraints[user_id], warm=use_warm
                        ),
                        model_fp=fingerprints.get(t) or None,
                        warm_start=warm_vectors,
                        constraints_key=constraint_keys[user_id],
                    )
                )
            # heartbeat: one fused call computes the *whole* claim before
            # anything is written, so with an epoch-sized claim_batch the
            # compute can outlive lease_seconds — and an expired lease is
            # never renewed (another worker may have reclaimed the cell),
            # which would lose every cell and re-claim the same batch
            # forever.  Renewing the claim's leases each lock-stepped
            # round (one bulk call, seconds apart) keeps them live for
            # the duration of the compute.
            def heartbeat(cells=ready):
                store.renew_leases(
                    worker_id,
                    cells,
                    lease_seconds=lease_seconds,
                    now=clock(),
                )

            outcome, fused_report = generate_fused(
                fused_cells, cache=epoch_cache, on_round=heartbeat
            )
            cells_deduped += fused_report.cells_deduped
            all_stats.extend(stats for _, stats in outcome.values())
            # the lock-stepped compute may have outlived the leases:
            # re-verify ownership per cell before writing — cells whose
            # lease expired belong to another worker now
            survivors = []
            rows = []
            for user_id, t in ready:
                if not store.renew_leases(
                    worker_id,
                    [(user_id, t)],
                    lease_seconds=lease_seconds,
                    now=clock(),
                ):
                    report.lost_leases += 1
                    continue
                found, _ = outcome[(user_id, t)]
                rows.append(
                    (user_id, t, found, trajectories[user_id][t])
                )
                survivors.append((user_id, t))
            if rows:
                # one grouped transaction for the whole claim batch
                report.candidates_written += store.upsert_cells(
                    rows, fingerprints=fingerprints
                )
                store.release_cells(worker_id, survivors)
                report.cells.extend(survivors)
            continue
        for user_id, t in claimed:
            if not prepare(user_id, t):
                continue
            trajectory = trajectories[user_id]
            warm_vectors = system._warm_vectors(user_id, t) if warm else None
            use_warm = warm_vectors is not None and warm_vectors.size > 0
            generator = system._cell_generator(
                t, constraints[user_id], warm=use_warm
            )
            found = generator.generate(
                trajectory[t], time=t, warm_start=warm_vectors
            )
            all_stats.append(generator.last_stats_)
            # the compute may have outlived the lease (loaded machine,
            # search longer than lease_seconds): re-verify ownership
            # before writing — if the lease expired, another worker has
            # (or will) recompute the cell, and writing here would
            # double-report the work
            if not store.renew_leases(
                worker_id,
                [(user_id, t)],
                lease_seconds=lease_seconds,
                now=clock(),
            ):
                report.lost_leases += 1
                continue
            report.candidates_written += store.upsert_cells(
                [(user_id, t, found, trajectory[t])], fingerprints=fingerprints
            )
            store.release_cells(worker_id, [(user_id, t)])
            report.cells.append((user_id, t))
    report.search = search_counter_totals(all_stats)
    report.search["cells_deduped"] = cells_deduped
    return report


def worker_main(
    system_path: str,
    db_path: str,
    worker_id: str,
    *,
    db_backend: str | None = None,
    warm_start: bool | None = None,
    claim_batch: int = 2,
    lease_seconds: float = 30.0,
    affinity_index: int | None = None,
    engine: str | None = None,
    leader_token: tuple | None = None,
    result_path: str | None = None,
) -> WorkerReport:
    """Process entry point: load the saved system, drain, report.

    Each worker opens its **own** sqlite connection(s) to the shared
    store — connections are never shared across processes.
    ``affinity_index`` pins the worker to shard ``index % n_shards``
    (its claims drain that shard first, so its per-shard write
    connection never contends with the other workers').  With
    ``result_path`` set, a JSON summary is written for the coordinator.
    """
    system = load_system(
        system_path, store_path=db_path, store_backend=db_backend
    )
    claim_schema = None
    if affinity_index is not None:
        schemas = system.store.backend.schemas()
        claim_schema = schemas[int(affinity_index) % len(schemas)]
    try:
        report = drain_stale_cells(
            system,
            worker_id=worker_id,
            claim_batch=claim_batch,
            lease_seconds=lease_seconds,
            warm_start=warm_start,
            claim_schema=claim_schema,
            engine=engine,
            leader_token=leader_token,
        )
    finally:
        system.store.close()
    if result_path is not None:
        payload = {
            "worker_id": report.worker_id,
            "cells": [[u, t] for u, t in report.cells],
            "candidates_written": report.candidates_written,
            "skipped_cells": [[u, t] for u, t in report.skipped_cells],
            "lost_leases": report.lost_leases,
            "search": report.search,
        }
        Path(result_path).write_text(json.dumps(payload))
    return report


def _pool_context(start_method: str | None):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    # fork shares the parent's already-loaded interpreter state, so
    # worker startup is milliseconds instead of a fresh import chain;
    # fall back to spawn where fork does not exist (Windows) — the
    # module-level worker_main is spawn-safe
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_worker_pool(
    system_path: str | Path,
    db_path: str | Path,
    *,
    n_workers: int,
    db_backend: str | None = None,
    warm_start: bool | None = None,
    claim_batch: int = 2,
    lease_seconds: float = 30.0,
    shard_affinity: bool = False,
    engine: str | None = None,
    start_method: str | None = None,
    timeout: float | None = None,
    stats_store=None,
    fingerprints: dict[int, str] | None = None,
    leader_token: tuple | None = None,
) -> PoolReport:
    """Spawn ``n_workers`` processes draining one shared store.

    The saved system at ``system_path`` must already hold the *refit*
    models (run :meth:`JustInTime.refit` + ``save_system`` first — the
    ``refresh-workers`` CLI verb does both).  ``shard_affinity=True``
    pins worker *i* to shard ``i % n_shards`` so each worker's upserts
    commit on a distinct shard file (the parallel write path); the
    store contents are byte-identical either way.  Raises
    :class:`StorageError` if any worker exits non-zero; cells leased by
    a crashed worker are recovered by the survivors once the lease
    expires, so a partial pool failure leaves the store consistent,
    merely unfinished.

    ``stats_store`` + ``fingerprints`` (the coordinator's open store
    and current model fingerprints) attach a post-drain
    traffic-weighted freshness snapshot to the report — how much of the
    read traffic a *budgeted* (possibly partial) drain left fresh.

    ``leader_token`` fences every worker's claim rounds on the
    dispatching orchestrator's leader seat (see
    :func:`drain_stale_cells`) — pass it when the pool runs on behalf
    of an HA leader.
    """
    if n_workers < 1:
        raise StorageError("n_workers must be >= 1")
    ctx = _pool_context(start_method)
    with tempfile.TemporaryDirectory(prefix="repro-pool-") as tmp:
        procs = []
        result_paths = []
        for i in range(n_workers):
            result_path = str(Path(tmp) / f"worker-{i}.json")
            result_paths.append(result_path)
            procs.append(
                ctx.Process(
                    target=worker_main,
                    args=(str(system_path), str(db_path), f"worker-{i}"),
                    kwargs=dict(
                        db_backend=db_backend,
                        warm_start=warm_start,
                        claim_batch=claim_batch,
                        lease_seconds=lease_seconds,
                        affinity_index=i if shard_affinity else None,
                        engine=engine,
                        leader_token=leader_token,
                        result_path=result_path,
                    ),
                )
            )
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout)
        # a worker still alive after its join window timed out: kill it
        # *before* raising — an orphan would keep writing to the shared
        # store (and into this soon-to-be-deleted result directory)
        # while the caller believes the pool is done
        for proc in procs:
            if proc.exitcode is None:
                proc.terminate()
                proc.join(5.0)
                if proc.exitcode is None:
                    proc.kill()
                    proc.join()
        failures = [
            f"worker-{i} exitcode {proc.exitcode}"
            for i, proc in enumerate(procs)
            if proc.exitcode != 0
        ]
        if failures:
            raise StorageError(
                f"worker pool failed: {', '.join(failures)}"
            )
        reports = []
        for result_path in result_paths:
            payload = json.loads(Path(result_path).read_text())
            reports.append(
                WorkerReport(
                    worker_id=payload["worker_id"],
                    cells=[(u, int(t)) for u, t in payload["cells"]],
                    candidates_written=int(payload["candidates_written"]),
                    skipped_cells=[
                        (u, int(t)) for u, t in payload["skipped_cells"]
                    ],
                    lost_leases=int(payload["lost_leases"]),
                    # .get: summaries written by pre-fused worker builds
                    search=payload.get("search", {}),
                )
            )
    skipped = sorted({cell for r in reports for cell in r.skipped_cells})
    search_totals: dict = {}
    for r in reports:
        for key, value in (r.search or {}).items():
            search_totals[key] = search_totals.get(key, 0) + int(value)
    freshness = None
    if stats_store is not None and fingerprints is not None:
        freshness = stats_store.traffic_weighted_freshness(fingerprints)
    return PoolReport(
        workers=tuple(reports),
        cells_recomputed=sum(len(r.cells) for r in reports),
        candidates_written=sum(r.candidates_written for r in reports),
        skipped_cells=tuple(skipped),
        search=search_totals,
        freshness=freshness,
    )
