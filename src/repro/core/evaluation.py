"""Counterfactual-quality evaluation.

The counterfactual-explanation literature scores candidate sets on four
standard axes; this module computes them for a JustInTime session so the
benches (and downstream users) can compare configurations quantitatively:

* **validity** — fraction of stored candidates that genuinely flip the
  decision of their time point's model (should be 1.0 by construction;
  asserting it guards the whole pipeline);
* **proximity** — mean scaled l2 distance (``diff``) to the temporal
  input, lower is better;
* **sparsity** — mean number of modified features (``gap``);
* **diversity** — mean over time points of the minimum pairwise scaled
  distance within the candidate set.

Plus the temporal quantity unique to this system:

* **earliest_time** — the first time point with any candidate, and
* **effort_trend** — the slope of min-``diff`` over time (negative means
  waiting genuinely reduces required effort).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.diversity import min_pairwise_distance

__all__ = ["CandidateSetReport", "evaluate_session"]


@dataclass(frozen=True)
class CandidateSetReport:
    """Quality summary of one user's candidate database."""

    n_candidates: int
    validity: float
    proximity: float
    sparsity: float
    diversity: float
    earliest_time: int | None
    effort_trend: float | None

    def describe(self) -> str:
        lines = [
            f"candidates  : {self.n_candidates}",
            f"validity    : {self.validity:.3f}",
            f"proximity   : {self.proximity:.3f} (mean scaled diff)",
            f"sparsity    : {self.sparsity:.2f} features changed on average",
            f"diversity   : {self.diversity:.3f} (mean min pairwise spread)",
            f"earliest t  : {self.earliest_time}",
        ]
        if self.effort_trend is not None:
            direction = "falls" if self.effort_trend < 0 else "rises"
            lines.append(
                f"effort trend: {self.effort_trend:+.4f} per time step"
                f" (required effort {direction} over time)"
            )
        return "\n".join(lines)


def evaluate_session(session) -> CandidateSetReport:
    """Score a :class:`~repro.core.system.UserSession`'s candidates.

    Validity re-scores every candidate against its own time point's model
    and threshold — an end-to-end audit of Definition II.3.
    """
    system = session.system
    candidates = session.candidates
    if not candidates:
        return CandidateSetReport(0, 0.0, 0.0, 0.0, 0.0, None, None)
    by_time: dict[int, list] = {}
    for candidate in candidates:
        by_time.setdefault(candidate.time, []).append(candidate)
    # one model call per time point instead of one per candidate — the
    # audit over a large store is model-bound, and batch scoring is
    # bit-identical to row-at-a-time scoring for the tree ensembles
    valid = 0
    for t, group in by_time.items():
        future_model = system.future_models[t]
        scores = np.asarray(
            future_model.model.decision_score(np.vstack([c.x for c in group])),
            dtype=float,
        ).ravel()
        valid += int(np.count_nonzero(scores > future_model.threshold))
    proximity = float(np.mean([c.diff for c in candidates]))
    sparsity = float(np.mean([c.gap for c in candidates]))
    spreads = []
    for group in by_time.values():
        if len(group) >= 2:
            points = np.vstack([c.x for c in group])
            spreads.append(
                min_pairwise_distance(points, scale=system.diff_scale)
            )
    diversity = float(np.mean(spreads)) if spreads else 0.0
    earliest = min(by_time)
    effort_trend = None
    if len(by_time) >= 2:
        times = np.array(sorted(by_time))
        min_diffs = np.array([min(c.diff for c in by_time[t]) for t in times])
        effort_trend = float(np.polyfit(times, min_diffs, deg=1)[0])
    return CandidateSetReport(
        n_candidates=len(candidates),
        validity=valid / len(candidates),
        proximity=proximity,
        sparsity=sparsity,
        diversity=diversity,
        earliest_time=earliest,
        effort_trend=effort_trend,
    )
