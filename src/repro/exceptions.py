"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can
catch any library failure with a single ``except`` clause while still
being able to distinguish the subsystem that raised it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NotFittedError(ReproError):
    """An estimator method requiring a fitted model was called before ``fit``."""


class ValidationError(ReproError):
    """Input data failed structural validation (shape, dtype, range)."""


class ConstraintError(ReproError):
    """A constraint expression is malformed or cannot be evaluated."""


class ConstraintParseError(ConstraintError):
    """The constraints DSL text could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class SchemaError(ReproError):
    """A dataset schema is inconsistent or a feature reference is unknown."""


class ForecastError(ReproError):
    """The models generator could not produce a future model."""


class CandidateSearchError(ReproError):
    """The candidates generator was configured inconsistently."""


class StorageError(ReproError):
    """The candidate database rejected an operation."""


class LeadershipLost(StorageError):
    """This orchestrator's leader lease was taken over (or expired):
    the write it was about to perform on behalf of its leadership was
    fenced instead of silently merging over the new leader's state."""


class QueryError(ReproError):
    """A canned or user query is invalid for the current database."""
