"""Wire format of the serving tier.

One canonical JSON serialization shared by the HTTP API and the CLI's
``--json`` output mode, so "the same answer" is checkable as *byte*
equality: ``dumps`` sorts keys and strips whitespace, and the payload
builders normalise every value to plain JSON types deterministically
(sqlite3.Row → dict, numpy scalars → float/int, tuples → lists).

The bundle payload carries the user's fingerprint ledger alongside the
insights — a client (or test) can therefore verify exactly which model
state each answer was rendered under, which is what the cache-freshness
assertions key on.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.insights import Insight, PlanAlternative
from repro.core.plans import FeatureChange, Plan

__all__ = [
    "alternative_payload",
    "bundle_payload",
    "dumps",
    "insight_payload",
    "orchestrator_payload",
    "plan_payload",
]

#: candidate-row columns that are storage metadata, not answer content:
#: ``id`` is the sqlite rowid (reassigned on every cell rewrite) and the
#: ``plan_*`` columns describe the stored plan set, which the wire
#: format carries in the dedicated ``alternatives`` field instead
_ROW_METADATA_COLUMNS = frozenset(
    {"id", "plan_rank", "plan_quality", "plan_min_dist"}
)


def dumps(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace — byte-stable for
    equal payloads regardless of construction order."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _scalar(value: Any) -> Any:
    """Normalise numpy scalars / sqlite values to plain JSON types."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    # numpy integer/floating expose item(); anything else goes to str
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def plan_payload(plan: Plan) -> dict[str, Any]:
    """A :class:`Plan` as plain JSON data (text rendering included)."""
    return {
        "time": int(plan.time),
        "time_value": float(plan.time_value),
        "confidence": float(plan.confidence),
        "diff": float(plan.diff),
        "gap": int(plan.gap),
        "changes": [_change_payload(change) for change in plan.changes],
        "text": plan.describe(),
    }


def _change_payload(change: FeatureChange) -> dict[str, Any]:
    return {
        "feature": change.feature,
        "from": float(change.from_value),
        "to": float(change.to_value),
    }


def alternative_payload(alternative: PlanAlternative) -> dict[str, Any]:
    """One stored plan-set member: the plan plus its selection metadata."""
    return {
        "rank": int(alternative.rank),
        "quality": (
            None if alternative.quality is None else float(alternative.quality)
        ),
        "min_dist": (
            None
            if alternative.min_dist is None
            else float(alternative.min_dist)
        ),
        "plan": plan_payload(alternative.plan),
    }


def insight_payload(insight: Insight) -> dict[str, Any]:
    """An :class:`Insight` as plain JSON data.

    Row answers drop the ``id`` column — it is a storage artifact (the
    sqlite rowid, reassigned whenever a refresh rewrites a cell), so
    keeping it would make byte-identical model states serialize
    differently, the same reason ``contents_digest()`` excludes it —
    and the plan-set metadata columns, which travel in ``alternatives``.

    ``alternatives`` is emitted only when non-empty (``plans=k > 1``
    requests), so default answers stay byte-identical to the
    pre-plan-set wire format.
    """
    answer = insight.answer
    if isinstance(answer, dict):
        answer = {key: _scalar(value) if not isinstance(value, list) else
                  [_scalar(v) for v in value] for key, value in answer.items()
                  if key not in _ROW_METADATA_COLUMNS}
    else:
        answer = _scalar(answer)
    payload = {
        "question": insight.question,
        "title": insight.title,
        "answer": answer,
        "text": insight.text,
        "plans": [plan_payload(plan) for plan in insight.plans],
    }
    if insight.alternatives:
        payload["alternatives"] = [
            alternative_payload(a) for a in insight.alternatives
        ]
    return payload


def bundle_payload(
    user_id: str,
    insights: dict[str, Insight],
    ledger: dict[int, str],
    freshness: float | None = None,
) -> dict[str, Any]:
    """The per-user insight bundle: every requested question's answer
    plus the fingerprint ledger the answers were computed under.

    ``freshness`` (seconds — the age of the *oldest* cell backing the
    answers, from the store's ``refreshed_at`` stamps) adds an optional
    ``meta.freshness`` field.  It is off by default and omitted when
    ``None`` so the payload stays byte-identical to the pre-freshness
    wire format unless a caller explicitly asks.
    """
    payload = {
        "user": str(user_id),
        "ledger": {str(t): fp for t, fp in sorted(ledger.items())},
        "insights": {
            qid: insight_payload(insight)
            for qid, insight in sorted(insights.items())
        },
    }
    if freshness is not None:
        payload["meta"] = {"freshness": float(freshness)}
    return payload


def orchestrator_payload(store) -> dict[str, Any]:
    """Orchestrator health/metrics as plain JSON — the body of the
    ``/v1/orchestrator`` endpoint and of the CLI's
    ``orchestrator-status`` verb, built from durable store state only
    (leader seat, last checkpointed metrics snapshot, budget,
    freshness), so any process that can open the store can answer.

    ``leader`` (or the whole payload's inner fields) is ``None`` until
    a node campaigns / an orchestrator checkpoints — a deployment
    without HA still gets budget and freshness.
    """
    from repro.exceptions import StorageError

    now = store.clock_now()
    leader = store.leader_status(now=now)
    snapshot = store.orchestrator_metrics()
    try:
        freshness = store.freshness_report()
    except StorageError:
        freshness = None
    return {
        "now": float(now),
        "leader": leader,
        "metrics": None if snapshot is None else snapshot["metrics"],
        "metrics_updated_at": (
            None if snapshot is None else snapshot["updated_at"]
        ),
        "budget_remaining": store.refresh_budget_remaining(),
        "freshness": freshness,
    }
