"""Per-shard read-only replica connections for the serving tier.

Writers already scale (dedicated per-shard write connections, PR 5);
this module gives *readers* the same property: a bounded pool of
read-only connections per shard, opened through the backend's
:meth:`~repro.db.backends.StoreBackend.replica_connection` dialect seam
(``mode=ro`` + ``PRAGMA query_only``), so N concurrent readers never
touch — let alone contend with — the router or the write connections.

:class:`ReplicaStoreView` is the duck-typed read-only store facade a
checked-out replica is wrapped in: it exposes exactly the surface the
canned queries and :class:`~repro.core.insights.InsightEngine` consume
(``read`` / ``placeholder`` / ``schema`` / ``times_for`` /
``cell_fingerprints`` / ``temporal_input`` / ``row_to_vector``), so the
serving tier runs the *same* query and rendering code as the direct
store path — answer identity is by construction, not by parallel
implementation.

Topology changes are survived per checkout: acquiring a replica
re-validates it against the live store (backend identity catches an
online ``rebalance()`` having swapped in a whole new layout; an inode
probe catches the shard *file* having been atomically replaced under an
open handle) and transparently reopens when stale.  In-memory backends
have no separately-openable files; there the pool degrades to the
store's own router connection behind a mutex — correct, just not
concurrent, which is fine for tests and demos.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from contextlib import contextmanager
from queue import LifoQueue

import numpy as np

from repro.db.store import CandidateStore
from repro.exceptions import StorageError

__all__ = ["ReplicaPool", "ReplicaStoreView"]


class ReplicaStoreView:
    """Read-only store facade over one replica connection.

    Implements the read surface of :class:`CandidateStore` the query
    and insight layers use.  For sharded backends the connection points
    directly at the user's shard file (tables under ``main``), skipping
    the router's ``UNION ALL`` views — valid because every query the
    serving tier runs is scoped to a single user, and a user's rows
    live in exactly one shard.
    """

    def __init__(self, conn: sqlite3.Connection, schema, placeholder: str):
        self._conn = conn
        self.schema = schema
        self.placeholder = placeholder

    def read(self, query: str, params=()) -> list[sqlite3.Row]:
        try:
            return self._conn.execute(query, params).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"SQL error: {exc}") from exc

    # internal alias kept in lockstep with CandidateStore's
    _read = read

    def times_for(self, user_id: str) -> list[int]:
        return self._prepared().times_for(self.read, user_id)

    def cell_fingerprints(self, user_id: str) -> dict[int, str]:
        return self._prepared().cell_fingerprints(self.read, user_id)

    def temporal_input(self, user_id: str, time: int) -> np.ndarray:
        row = self._prepared().temporal_input_row(self.read, user_id, time)
        if row is None:
            raise StorageError(
                f"no temporal input for user {user_id!r} at time {time}"
            )
        return self.row_to_vector(row)

    def row_to_vector(self, row: sqlite3.Row) -> np.ndarray:
        return np.array([row[name] for name in self.schema.names], dtype=float)

    def _prepared(self):
        # local import: repro.db.queries imports the store module, and
        # the prepared layer is dialect-keyed, so resolve lazily
        from repro.db.prepared import prepared_for

        return prepared_for(self.placeholder, self.schema.names)


class _Replica:
    """One pooled connection plus the identity it was opened against."""

    __slots__ = ("conn", "prefix", "path", "inode")

    def __init__(self, conn, prefix, path, inode):
        self.conn = conn
        self.prefix = prefix
        self.path = path
        self.inode = inode


class ReplicaPool:
    """Bounded pool of read-only replica connections per shard.

    Parameters
    ----------
    store:
        The live store (the pool follows its backend across an online
        ``rebalance()``).
    per_schema:
        Replica connections kept per shard.  Acquisition blocks when all
        are checked out — natural backpressure instead of unbounded
        file handles.
    """

    def __init__(self, store: CandidateStore, per_schema: int = 4):
        if per_schema < 1:
            raise StorageError("per_schema must be >= 1")
        self.store = store
        self.per_schema = int(per_schema)
        self._lock = threading.Lock()
        #: serialises fallback reads through the store's own router
        #: connection when the backend has no openable replicas
        self._router_lock = threading.Lock()
        self._built_for = store.backend
        self._queues: dict[str, LifoQueue] = {}
        self.reuses = 0
        self.opens = 0
        self.reopens = 0

    # ------------------------------------------------------------ internals

    def _queue_for(self, schema: str) -> LifoQueue:
        with self._lock:
            backend = self.store.backend
            if backend is not self._built_for:
                # rebalance() attached a new backend: every pooled
                # connection points at a retired layout — drop them all
                for queue in self._queues.values():
                    while not queue.empty():
                        replica = queue.get_nowait()
                        if replica is not None:
                            replica.conn.close()
                self._queues.clear()
                self._built_for = backend
            queue = self._queues.get(schema)
            if queue is None:
                # LIFO so a just-returned (hot) replica is handed out
                # before an unopened slot — N sequential readers share
                # one connection instead of round-robining cold opens
                queue = LifoQueue()
                for _ in range(self.per_schema):
                    queue.put(None)  # lazily-opened slot
                self._queues[schema] = queue
            return queue

    @staticmethod
    def _inode(path: str) -> int | None:
        try:
            return os.stat(path).st_ino
        except OSError:
            return None

    def _open(self, schema: str) -> _Replica | None:
        opened = self.store.backend.replica_connection(schema)
        if opened is None:
            return None
        conn, prefix = opened
        path = getattr(self.store.backend, "path", ":memory:")
        if schema.startswith("shard"):
            path = f"{path}.{schema}"
        self.opens += 1
        return _Replica(conn, prefix, path, self._inode(path))

    def _validate(self, replica: _Replica, schema: str) -> _Replica | None:
        """Reopen when the shard file was atomically swapped underneath
        (rebalance parks the old file and renames a staging file into
        place — the open handle keeps reading the *old* inode)."""
        if self._inode(replica.path) == replica.inode:
            self.reuses += 1
            return replica
        replica.conn.close()
        self.reopens += 1
        return self._open(schema)

    # -------------------------------------------------------------- checkout

    @contextmanager
    def view(self, user_id: str):
        """Check out a read-only :class:`ReplicaStoreView` for a user.

        Routes to the user's shard; blocks when all of that shard's
        replicas are checked out; returns the replica to the pool on
        exit.
        """
        store = self.store
        schema = store.backend.schema_for(user_id)
        queue = self._queue_for(schema)
        replica = queue.get()
        try:
            if replica is not None:
                replica = self._validate(replica, schema)
            if replica is None:
                replica = self._open(schema)
            if replica is None:
                # no openable replica for this topology (in-memory):
                # serialise through the store's router connection
                with self._router_lock:
                    yield ReplicaStoreView(
                        store._conn, store.schema, store.placeholder
                    )
                return
            yield ReplicaStoreView(replica.conn, store.schema, store.placeholder)
        finally:
            queue.put(replica)

    # ------------------------------------------------------------- lifecycle

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "opens": self.opens,
                "reuses": self.reuses,
                "reopens": self.reopens,
                "schemas": len(self._queues),
            }

    def close(self) -> None:
        with self._lock:
            for queue in self._queues.values():
                while not queue.empty():
                    replica = queue.get_nowait()
                    if replica is not None:
                        replica.conn.close()
            self._queues.clear()
