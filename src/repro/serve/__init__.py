"""Insight serving tier: async read API over the candidate store.

The write path scales through sharding and the worker pool; this
package scales the *read* path — ROADMAP item 2.  See
:mod:`repro.serve.server` for the HTTP surface and the freshness
contract, :mod:`repro.serve.cache` for the fingerprint-validated
rendered-insight cache, and :mod:`repro.serve.pool` for the per-shard
read-only replica connections.
"""

from repro.serve.cache import CacheStats, InsightCache
from repro.serve.pool import ReplicaPool, ReplicaStoreView
from repro.serve.protocol import (
    bundle_payload,
    dumps,
    insight_payload,
    orchestrator_payload,
    plan_payload,
)
from repro.serve.server import InsightServer, ServeError

__all__ = [
    "CacheStats",
    "InsightCache",
    "InsightServer",
    "ReplicaPool",
    "ReplicaStoreView",
    "ServeError",
    "bundle_payload",
    "dumps",
    "insight_payload",
    "orchestrator_payload",
    "plan_payload",
]
