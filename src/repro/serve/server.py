"""Asyncio HTTP/JSON serving tier for the Figure-2 insights.

Stdlib only: ``asyncio`` streams speak a small HTTP/1.1 subset (GET,
keep-alive), and each request's database work runs as **one** job on a
thread-pool executor so the event loop never blocks on sqlite.

Endpoints
---------
``GET /healthz``
    Liveness probe.
``GET /stats``
    Request, cache and replica-pool counters.
``GET /insights?user=U[&alpha=A][&feature=F][&budget=B]``
    The rendered per-user insight bundle (Q1–Q6, plus Q7 when a budget
    is given) with the fingerprint ledger it was computed under.
``GET /q/<qid>?user=U[&alpha=A][&feature=F][&budget=B]``
    One canned question (``q1`` .. ``q7``).

Freshness contract
------------------
Every response is rendered against a **consistent fingerprint
snapshot**: the worker reads the user's ``(time, model_fp)`` ledger,
renders (or serves the cache entry validated against exactly that
vector), then re-reads the ledger and retries if anything moved.
Fingerprint transitions are one-way within an epoch (old → new, written
in the same transaction as the candidate rows they describe), so the
loop converges immediately once the writer's commit lands — and a
response's ``ledger`` field is therefore always the exact model state
its ``insights`` were computed under, refresh in flight or not.

Cache hits replace the ~15–25 queries of a bundle render with a single
indexed primary-key ledger read plus a dict lookup; replica
connections (:mod:`repro.serve.pool`) keep even cache *misses* off the
writers' connections.

Hits are additionally served on a **fast path**: the ledger
validation read runs inline on the event-loop thread against a
dedicated replica (a sub-100µs indexed point read — cheaper than the
executor round-trip it replaces), and only cache misses pay the
thread-pool dispatch for the full render.  In-memory backends have no
separately-openable replica, so they always take the executor path.
"""

from __future__ import annotations

import asyncio
import os
import sqlite3
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.core.insights import QUESTIONS, InsightEngine
from repro.db.prepared import prepared_for
from repro.db.store import CandidateStore
from repro.exceptions import QueryError, ReproError
from repro.serve.cache import InsightCache
from repro.serve.pool import ReplicaPool
from repro.serve.protocol import bundle_payload, dumps, insight_payload

__all__ = ["InsightServer", "ServeError"]

#: bound on render-retry rounds when a refresh keeps landing mid-read;
#: each round is one ledger read + render, and fingerprint transitions
#: are one-way, so real convergence takes 1–2 rounds
_MAX_SNAPSHOT_RETRIES = 50


class ServeError(ReproError):
    """A request that cannot be served (carries an HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _FastReplica:
    """One event-loop-thread replica plus the inode it was opened on."""

    __slots__ = ("conn", "path", "inode")

    def __init__(self, conn, path, inode):
        self.conn = conn
        self.path = path
        self.inode = inode


class InsightServer:
    """Async HTTP server over one :class:`CandidateStore`.

    Parameters
    ----------
    store:
        The live store (shared with the refresh side; reads go through
        read-only replicas where the backend supports them).
    time_values:
        Calendar value per time index, as in
        :class:`~repro.core.insights.InsightEngine`.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    cache_size / cache_enabled:
        Rendered-insight cache bound; disabling the cache renders every
        request from SQL (the benchmark's baseline mode).
    replicas_per_schema:
        Read-only replica connections kept per shard.
    executor_threads:
        Worker threads for the blocking database/render work.
    """

    def __init__(
        self,
        store: CandidateStore,
        time_values,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 4096,
        cache_enabled: bool = True,
        replicas_per_schema: int = 4,
        executor_threads: int = 8,
    ):
        self.store = store
        self.time_values = list(time_values)
        self.host = host
        self.port = int(port)
        self.cache_enabled = bool(cache_enabled)
        self.cache = InsightCache(cache_size)
        self.pool = ReplicaPool(store, per_schema=replicas_per_schema)
        # fast-path state, touched ONLY by the event-loop thread (so no
        # locks): one replica per schema, the compiled ledger SQL, and a
        # parsed-plan cache keyed on the raw request target
        self._fast_replicas: dict[str, _FastReplica] = {}
        self._fast_built_for: object | None = None
        self._fast_ledger_sql: str | None = None
        self._plan_cache: dict[str, tuple] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.requests_served = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind and start accepting connections (resolves :attr:`port`)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True)
        self.pool.close()
        for replica in self._fast_replicas.values():
            replica.conn.close()
        self._fast_replicas.clear()

    def start_background(self) -> str:
        """Run the server on a dedicated event-loop thread.

        Returns the base URL once the port is bound.  For tests and the
        benchmark driver, where the caller (and the refresh writer)
        stay on the main thread.
        """
        started = threading.Event()

        def _run() -> None:
            asyncio.run(self._run_until_stopped(started))

        self._stop_event: asyncio.Event | None = None
        self._thread = threading.Thread(target=_run, daemon=True)
        self._thread.start()
        if not started.wait(timeout=30):
            raise ServeError(500, "server failed to start within 30s")
        return f"http://{self.host}:{self.port}"

    async def _run_until_stopped(self, started: threading.Event) -> None:
        await self.start()
        self._stop_event = asyncio.Event()
        started.set()
        await self._stop_event.wait()
        await self.stop()

    def stop_background(self) -> None:
        if self._thread is None:
            return
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)
        self._thread.join(timeout=30)
        self._thread = None

    # ------------------------------------------------------- HTTP plumbing

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                # one buffered read covers request line + headers: GETs
                # carry no body, so the head IS the request
                try:
                    raw = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break
                except asyncio.LimitOverrunError:
                    await self._respond(writer, 400, {"error": "head too large"})
                    break
                head = raw.decode("latin-1")
                request_line, _, header_block = head.partition("\r\n")
                parts = request_line.split(None, 2)
                if len(parts) != 3:
                    await self._respond(writer, 400, {"error": "bad request"})
                    break
                method, target, _version = parts
                keep_alive = "connection: close" not in header_block.lower()
                status, payload = await self._dispatch(method, target)
                self.requests_served += 1
                alive = await self._respond(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not alive or not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # server shutdown with the keep-alive connection still open;
            # close below, end the task quietly
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _respond(
        self, writer, status: int, payload: Any, *, keep_alive: bool = False
    ) -> bool:
        body = (payload if isinstance(payload, str) else dumps(payload)).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            return False

    # ----------------------------------------------------------- dispatch

    async def _dispatch(self, method: str, target: str) -> tuple[int, Any]:
        if method != "GET":
            return 405, {"error": "only GET is supported"}
        try:
            plan = self._plan_cache.get(target)
            if plan is not None:
                return 200, await self._serve_key(*plan)
            split = urlsplit(target)
            path = split.path
            query = {
                key: values[-1] for key, values in parse_qs(split.query).items()
            }
            if path == "/healthz":
                return 200, {"status": "ok"}
            if path == "/stats":
                return 200, self._stats_payload()
            if path == "/insights":
                plan = self._plan_bundle(query)
            elif path.startswith("/q/"):
                plan = self._plan_question(path[len("/q/"):], query)
            else:
                return 404, {"error": f"unknown path {path!r}"}
            # parsing is deterministic in the target string, so cache the
            # plan (closures included) and skip urlsplit/parse_qs on repeats
            if len(self._plan_cache) >= 4096:
                self._plan_cache.clear()
            self._plan_cache[target] = plan
            return 200, await self._serve_key(*plan)
        except ServeError as exc:
            return exc.status, {"error": str(exc)}
        except QueryError as exc:
            return 400, {"error": str(exc)}
        except ReproError as exc:
            return 500, {"error": str(exc)}

    async def _in_executor(self, fn, *args):
        return await self._loop.run_in_executor(self._executor, fn, *args)

    async def _serve_key(self, user: str, key: tuple, render) -> str:
        hit = self._fast_lookup(user, key)
        if hit is not None:
            return hit
        return await self._in_executor(self._render_consistent, user, key, render)

    def _fast_lookup(self, user: str, key: tuple) -> str | None:
        """Cache-hit fast path, inline on the event-loop thread.

        A hit needs exactly one indexed point read (the fingerprint
        ledger) to validate — cheaper than the executor round-trip that
        dispatching it would cost.  Uses loop-thread-only replicas (no
        locks) with the same rebalance defences as the pool: backend
        identity drops every replica, an inode probe per use catches a
        swapped shard file.  Runs only when the backend has real replica
        files; the in-memory fallback shares the router connection with
        executor threads and must stay serialised there.
        """
        if not self.cache_enabled:
            return None
        backend = self.store.backend
        if getattr(backend, "path", ":memory:") == ":memory:":
            return None
        if backend is not self._fast_built_for:
            for replica in self._fast_replicas.values():
                replica.conn.close()
            self._fast_replicas.clear()
            self._fast_built_for = backend
            self._fast_ledger_sql = prepared_for(
                self.store.placeholder, self.store.schema.names
            )._sql["ledger"]
        schema = backend.schema_for(user)
        replica = self._fast_replicas.get(schema)
        if replica is not None and self._inode(replica.path) != replica.inode:
            replica.conn.close()
            replica = None
        if replica is None:
            opened = backend.replica_connection(schema)
            if opened is None:
                return None
            path = backend.path
            if schema.startswith("shard"):
                path = f"{path}.{schema}"
            replica = _FastReplica(opened[0], path, self._inode(path))
            self._fast_replicas[schema] = replica
        try:
            rows = replica.conn.execute(self._fast_ledger_sql, (user,)).fetchall()
        except sqlite3.Error:
            # replica went stale under us (file replaced mid-probe):
            # drop it and let the executor path answer this request
            replica.conn.close()
            self._fast_replicas.pop(schema, None)
            return None
        if not rows:
            raise ServeError(404, f"unknown user {user!r}")
        # the ledger SQL is ORDER BY time, so the rows already form the
        # sorted fingerprint vector the cache validates against
        fps = tuple((int(row[0]), str(row[1])) for row in rows)
        return self.cache.get(key, fps)

    @staticmethod
    def _inode(path: str) -> int | None:
        try:
            return os.stat(path).st_ino
        except OSError:
            return None

    def _stats_payload(self) -> dict[str, Any]:
        return {
            "requests": self.requests_served,
            "cache": self.cache.stats.snapshot(),
            "cache_enabled": self.cache_enabled,
            "cache_entries": len(self.cache),
            "pool": self.pool.stats(),
            "fast_replicas": len(self._fast_replicas),
        }

    # ------------------------------------------------------ request parsing

    @staticmethod
    def _require_user(query: dict[str, str]) -> str:
        user = query.get("user")
        if not user:
            raise ServeError(400, "missing required query parameter 'user'")
        return user

    @staticmethod
    def _float_param(query, name: str, default: float | None) -> float | None:
        raw = query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise ServeError(400, f"parameter {name!r} must be a number") from None

    def _default_feature(self) -> str:
        mutable = self.store.schema.mutable_indices()
        if mutable.size == 0:
            raise ServeError(
                400,
                "the schema has no mutable features; pass feature= explicitly",
            )
        return self.store.schema.names[int(mutable[0])]

    # ---------------------------------------------------------- rendering

    def _plan_bundle(self, query: dict[str, str]):
        """Parse an ``/insights`` request into ``(user, cache key, render)``
        without touching the database (runs on the event-loop thread)."""
        user = self._require_user(query)
        alpha = self._float_param(query, "alpha", 0.8)
        budget = self._float_param(query, "budget", None)
        feature = query.get("feature") or self._default_feature()
        key = (user, "bundle", (alpha, feature, budget))
        return user, key, lambda view: self._render_bundle(
            view, user, alpha, feature, budget
        )

    def _plan_question(self, qid: str, query: dict[str, str]):
        """Parse a ``/q/<qid>`` request into ``(user, cache key, render)``."""
        if qid not in QUESTIONS:
            raise ServeError(
                404, f"unknown question {qid!r}; available: {sorted(QUESTIONS)}"
            )
        user = self._require_user(query)
        params: dict[str, Any] = {}
        if qid == "q3":
            params["feature"] = query.get("feature") or self._default_feature()
        elif qid == "q6":
            params["alpha"] = self._float_param(query, "alpha", 0.8)
        elif qid == "q7":
            params["budget"] = self._float_param(query, "budget", 1.0)
        key = (user, qid, tuple(sorted(params.items())))
        return user, key, lambda view: self._render_question(
            view, user, qid, params
        )

    def _render_bundle(
        self, view, user: str, alpha: float, feature: str, budget: float | None
    ) -> dict[str, Any]:
        engine = InsightEngine(view, user, self.time_values)
        insights = {
            "q1": engine.ask("q1"),
            "q2": engine.ask("q2"),
            "q3": engine.ask("q3", feature=feature),
            "q4": engine.ask("q4"),
            "q5": engine.ask("q5"),
            "q6": engine.ask("q6", alpha=alpha),
        }
        if budget is not None:
            insights["q7"] = engine.ask("q7", budget=budget)
        return {"kind": "bundle", "insights": insights}

    def _render_question(
        self, view, user: str, qid: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        engine = InsightEngine(view, user, self.time_values)
        return {"kind": "question", "insight": engine.ask(qid, **params)}

    def _render_consistent(self, user: str, key: tuple, render) -> str:
        """Serve ``key`` from cache or render it — under a consistent
        fingerprint snapshot (see module docstring)."""
        with self.pool.view(user) as view:
            for _ in range(_MAX_SNAPSHOT_RETRIES):
                ledger = view.cell_fingerprints(user)
                if not ledger:
                    raise ServeError(404, f"unknown user {user!r}")
                fps = InsightCache.fingerprint_vector(ledger)
                if self.cache_enabled:
                    hit = self.cache.get(key, fps)
                    if hit is not None:
                        return hit
                rendered = render(view)
                if view.cell_fingerprints(user) != ledger:
                    continue  # a refresh landed mid-render: re-read
                body = self._serialize(user, ledger, rendered)
                if self.cache_enabled:
                    self.cache.put(key, fps, body)
                return body
        raise ServeError(503, "store is being rewritten faster than it can be read")

    @staticmethod
    def _serialize(user: str, ledger: dict[int, str], rendered: dict) -> str:
        if rendered["kind"] == "bundle":
            return dumps(bundle_payload(user, rendered["insights"], ledger))
        payload = insight_payload(rendered["insight"])
        payload["user"] = str(user)
        payload["ledger"] = {str(t): fp for t, fp in sorted(ledger.items())}
        return dumps(payload)
