"""Asyncio HTTP/JSON serving tier for the Figure-2 insights.

Stdlib only: ``asyncio`` streams speak a small HTTP/1.1 subset (GET,
keep-alive), and each request's database work runs as **one** job on a
thread-pool executor so the event loop never blocks on sqlite.

Endpoints (versioned under ``/v1/``)
------------------------------------
``GET /v1/healthz``
    Liveness probe.
``GET /v1/stats``
    Request, cache, replica-pool, access-log and freshness counters.
``GET /v1/orchestrator``
    Orchestrator health: leader seat (identity, epoch, lease age), the
    last checkpointed metrics snapshot, budget and freshness — read
    from durable store state, so it works whether or not an
    orchestrator shares this process.
``GET /v1/insights?user=U[&alpha=A][&feature=F][&budget=B][&freshness=1]``
    The rendered per-user insight bundle (Q1–Q6, plus Q7 when a budget
    is given) with the fingerprint ledger it was computed under.
    ``freshness=1`` adds ``meta.freshness`` (seconds since the oldest
    backing cell was recomputed) — those responses bypass the cache.
``GET /v1/q/<qid>?user=U[&alpha=A][&feature=F][&budget=B]``
    One canned question (``q1`` .. ``q7``).

The bare (un-versioned) paths remain as **deprecated aliases**: they
serve byte-identical bodies and additionally emit a ``Deprecation:
true`` header.  Errors use a consistent JSON envelope on both surfaces:
``{"error": {"code": <machine-readable>, "message": <human>}}``.

Access feedback
---------------
Each served ``/insights`` / ``/q`` request is recorded as a ``(user,
question, ts)`` row in the store's ``access_log`` — buffered on the
event-loop thread and flushed in batches from the executor through a
dedicated write connection (fire-and-forget: a failed flush drops the
batch, never the response).  The refresh orchestrator folds the log
into decayed per-user priority scores that order its budgeted drains.

Freshness contract
------------------
Every response is rendered against a **consistent fingerprint
snapshot**: the worker reads the user's ``(time, model_fp)`` ledger,
renders (or serves the cache entry validated against exactly that
vector), then re-reads the ledger and retries if anything moved.
Fingerprint transitions are one-way within an epoch (old → new, written
in the same transaction as the candidate rows they describe), so the
loop converges immediately once the writer's commit lands — and a
response's ``ledger`` field is therefore always the exact model state
its ``insights`` were computed under, refresh in flight or not.

Cache hits replace the ~15–25 queries of a bundle render with a single
indexed primary-key ledger read plus a dict lookup; replica
connections (:mod:`repro.serve.pool`) keep even cache *misses* off the
writers' connections.

Hits are additionally served on a **fast path**: the ledger
validation read runs inline on the event-loop thread against a
dedicated replica (a sub-100µs indexed point read — cheaper than the
executor round-trip it replaces), and only cache misses pay the
thread-pool dispatch for the full render.  In-memory backends have no
separately-openable replica, so they always take the executor path.
"""

from __future__ import annotations

import asyncio
import os
import sqlite3
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.core.insights import QUESTIONS, InsightEngine
from repro.db.backends import ShardedSQLiteBackend, SQLiteBackend
from repro.db.prepared import prepared_for
from repro.db.store import CandidateStore
from repro.exceptions import QueryError, ReproError, StorageError
from repro.serve.cache import InsightCache
from repro.serve.pool import ReplicaPool
from repro.serve.protocol import (
    bundle_payload,
    dumps,
    insight_payload,
    orchestrator_payload,
)

__all__ = ["InsightServer", "ServeError"]

#: bound on render-retry rounds when a refresh keeps landing mid-read;
#: each round is one ledger read + render, and fingerprint transitions
#: are one-way, so real convergence takes 1–2 rounds
_MAX_SNAPSHOT_RETRIES = 50

#: access-log entries buffered on the event-loop thread before one
#: batched fire-and-forget flush is dispatched to the executor
_ACCESS_FLUSH_BATCH = 32

#: extra header rows sent on the deprecated un-versioned paths
_DEPRECATED = (("Deprecation", "true"),)

#: HTTP status → machine-readable error code of the JSON error envelope
_DEFAULT_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    500: "internal",
    503: "unavailable",
}


def _error(code: str, message: str) -> dict[str, Any]:
    """The versioned API's error envelope (also served, byte-identical,
    on the deprecated bare paths)."""
    return {"error": {"code": code, "message": message}}


def _keep_alive(version: str, header_block: str) -> bool:
    """HTTP-version-correct connection persistence.

    Only the ``Connection`` header's own comma-separated token list
    decides (never a substring scan of the whole head, which would
    match inside unrelated headers and miss ``keep-alive, close``
    lists); absent a decisive token, the version default applies —
    persistent for HTTP/1.1, close for HTTP/1.0.
    """
    tokens: list[str] = []
    for line in header_block.split("\r\n"):
        name, sep, value = line.partition(":")
        if sep and name.strip().lower() == "connection":
            tokens.extend(token.strip().lower() for token in value.split(","))
    if "close" in tokens:
        return False
    if version.strip().upper() == "HTTP/1.0":
        return "keep-alive" in tokens
    return True


class ServeError(ReproError):
    """A request that cannot be served (carries an HTTP status and a
    machine-readable envelope code, derived from the status unless
    given)."""

    def __init__(self, status: int, message: str, code: str | None = None):
        super().__init__(message)
        self.status = status
        self.code = code or _DEFAULT_CODES.get(status, "error")


class _FastReplica:
    """One event-loop-thread replica plus the inode it was opened on."""

    __slots__ = ("conn", "path", "inode")

    def __init__(self, conn, path, inode):
        self.conn = conn
        self.path = path
        self.inode = inode


class InsightServer:
    """Async HTTP server over one :class:`CandidateStore`.

    Parameters
    ----------
    store:
        The live store (shared with the refresh side; reads go through
        read-only replicas where the backend supports them).
    time_values:
        Calendar value per time index, as in
        :class:`~repro.core.insights.InsightEngine`.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    cache_size / cache_enabled:
        Rendered-insight cache bound; disabling the cache renders every
        request from SQL (the benchmark's baseline mode).
    replicas_per_schema:
        Read-only replica connections kept per shard.
    executor_threads:
        Worker threads for the blocking database/render work.
    access_log:
        Whether served ``/insights`` / ``/q`` requests are recorded into
        the store's ``access_log`` (the refresh-priority feedback path).
        On file-backed stores the flushes go through a dedicated write
        connection; in-memory stores share the router connection under a
        lock.  ``False`` disables recording entirely.
    """

    def __init__(
        self,
        store: CandidateStore,
        time_values,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 4096,
        cache_enabled: bool = True,
        replicas_per_schema: int = 4,
        executor_threads: int = 8,
        access_log: bool = True,
    ):
        self.store = store
        self.time_values = list(time_values)
        self.host = host
        self.port = int(port)
        self.cache_enabled = bool(cache_enabled)
        self.cache = InsightCache(cache_size)
        self.pool = ReplicaPool(store, per_schema=replicas_per_schema)
        # fast-path state, touched ONLY by the event-loop thread (so no
        # locks): one replica per schema, the compiled ledger SQL, and a
        # parsed-plan cache keyed on the raw request target
        self._fast_replicas: dict[str, _FastReplica] = {}
        self._fast_built_for: object | None = None
        self._fast_ledger_sql: str | None = None
        self._plan_cache: dict[str, tuple] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.requests_served = 0
        # access-log feedback: entries buffer on the event-loop thread
        # (no locks there); flushes run on the executor serialised by
        # _access_lock through a lazily opened dedicated write store
        self.access_log_enabled = bool(access_log)
        self._access_buffer: list[tuple[str, str, None]] = []
        self._access_store: CandidateStore | None = None
        self._access_lock = threading.Lock()
        self.accesses_recorded = 0
        self.accesses_dropped = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind and start accepting connections (resolves :attr:`port`)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._access_buffer:
            # best-effort final flush of the partial batch before the
            # executor goes away (still fire-and-forget on failure)
            batch, self._access_buffer = self._access_buffer, []
            self._flush_access(batch)
        self._executor.shutdown(wait=True)
        with self._access_lock:
            if self._access_store is not None and self._access_store is not self.store:
                self._access_store.close()
            self._access_store = None
        self.pool.close()
        for replica in self._fast_replicas.values():
            replica.conn.close()
        self._fast_replicas.clear()

    def start_background(self) -> str:
        """Run the server on a dedicated event-loop thread.

        Returns the base URL once the port is bound.  For tests and the
        benchmark driver, where the caller (and the refresh writer)
        stay on the main thread.
        """
        started = threading.Event()

        def _run() -> None:
            asyncio.run(self._run_until_stopped(started))

        self._stop_event: asyncio.Event | None = None
        self._thread = threading.Thread(target=_run, daemon=True)
        self._thread.start()
        if not started.wait(timeout=30):
            raise ServeError(500, "server failed to start within 30s")
        return f"http://{self.host}:{self.port}"

    async def _run_until_stopped(self, started: threading.Event) -> None:
        await self.start()
        self._stop_event = asyncio.Event()
        started.set()
        await self._stop_event.wait()
        await self.stop()

    def stop_background(self) -> None:
        if self._thread is None:
            return
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)
        self._thread.join(timeout=30)
        self._thread = None

    # ------------------------------------------------------- HTTP plumbing

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                # one buffered read covers request line + headers: GETs
                # carry no body, so the head IS the request
                try:
                    raw = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 400, _error("bad_request", "head too large")
                    )
                    break
                head = raw.decode("latin-1")
                request_line, _, header_block = head.partition("\r\n")
                parts = request_line.split(None, 2)
                if len(parts) != 3:
                    await self._respond(
                        writer, 400, _error("bad_request", "bad request")
                    )
                    break
                method, target, version = parts
                keep_alive = _keep_alive(version, header_block)
                status, payload, extra = await self._dispatch(method, target)
                self.requests_served += 1
                alive = await self._respond(
                    writer, status, payload,
                    keep_alive=keep_alive, extra_headers=extra,
                )
                if not alive or not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # server shutdown with the keep-alive connection still open;
            # close below, end the task quietly
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _respond(
        self, writer, status: int, payload: Any, *,
        keep_alive: bool = False, extra_headers=(),
    ) -> bool:
        body = (payload if isinstance(payload, str) else dumps(payload)).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Error")
        extra = "".join(f"{name}: {value}\r\n" for name, value in extra_headers)
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            return False

    # ----------------------------------------------------------- dispatch

    async def _dispatch(
        self, method: str, target: str
    ) -> tuple[int, Any, tuple]:
        versioned = target.startswith("/v1/")
        headers = () if versioned else _DEPRECATED
        if method != "GET":
            return 405, _error("method_not_allowed", "only GET is supported"), headers
        try:
            plan = self._plan_cache.get(target)
            if plan is not None:
                body = await self._serve_key(*plan)
                self._record_access(plan[0], plan[1][1])
                return 200, body, headers
            split = urlsplit(target)
            path = split.path
            if versioned:
                path = path[len("/v1"):]
            query = {
                key: values[-1] for key, values in parse_qs(split.query).items()
            }
            if path == "/healthz":
                return 200, {"status": "ok"}, headers
            if path == "/stats":
                return 200, await self._in_executor(self._stats_payload), headers
            if path == "/orchestrator":
                return 200, await self._in_executor(
                    orchestrator_payload, self.store
                ), headers
            if path == "/insights":
                plan = self._plan_bundle(query)
            elif path.startswith("/q/"):
                plan = self._plan_question(path[len("/q/"):], query)
            else:
                return 404, _error("not_found", f"unknown path {path!r}"), headers
            # parsing is deterministic in the target string, so cache the
            # plan (closures included) and skip urlsplit/parse_qs on
            # repeats; keyed on the raw target, so /v1/ and bare aliases
            # hold distinct (byte-identical) entries
            if len(self._plan_cache) >= 4096:
                self._plan_cache.clear()
            self._plan_cache[target] = plan
            body = await self._serve_key(*plan)
            self._record_access(plan[0], plan[1][1])
            return 200, body, headers
        except ServeError as exc:
            return exc.status, _error(exc.code, str(exc)), headers
        except QueryError as exc:
            return 400, _error("bad_request", str(exc)), headers
        except ReproError as exc:
            return 500, _error("internal", str(exc)), headers

    async def _in_executor(self, fn, *args):
        return await self._loop.run_in_executor(self._executor, fn, *args)

    async def _serve_key(
        self, user: str, key: tuple, render, want_freshness: bool = False
    ) -> str:
        if not want_freshness:
            hit = self._fast_lookup(user, key)
            if hit is not None:
                return hit
        return await self._in_executor(
            self._render_consistent, user, key, render, want_freshness
        )

    def _fast_lookup(self, user: str, key: tuple) -> str | None:
        """Cache-hit fast path, inline on the event-loop thread.

        A hit needs exactly one indexed point read (the fingerprint
        ledger) to validate — cheaper than the executor round-trip that
        dispatching it would cost.  Uses loop-thread-only replicas (no
        locks) with the same rebalance defences as the pool: backend
        identity drops every replica, an inode probe per use catches a
        swapped shard file.  Runs only when the backend has real replica
        files; the in-memory fallback shares the router connection with
        executor threads and must stay serialised there.
        """
        if not self.cache_enabled:
            return None
        backend = self.store.backend
        if getattr(backend, "path", ":memory:") == ":memory:":
            return None
        if backend is not self._fast_built_for:
            for replica in self._fast_replicas.values():
                replica.conn.close()
            self._fast_replicas.clear()
            self._fast_built_for = backend
            self._fast_ledger_sql = prepared_for(
                self.store.placeholder, self.store.schema.names
            )._sql["ledger"]
        schema = backend.schema_for(user)
        replica = self._fast_replicas.get(schema)
        if replica is not None and self._inode(replica.path) != replica.inode:
            replica.conn.close()
            replica = None
        if replica is None:
            opened = backend.replica_connection(schema)
            if opened is None:
                return None
            path = backend.path
            if schema.startswith("shard"):
                path = f"{path}.{schema}"
            replica = _FastReplica(opened[0], path, self._inode(path))
            self._fast_replicas[schema] = replica
        try:
            rows = replica.conn.execute(self._fast_ledger_sql, (user,)).fetchall()
        except sqlite3.Error:
            # replica went stale under us (file replaced mid-probe):
            # drop it and let the executor path answer this request
            replica.conn.close()
            self._fast_replicas.pop(schema, None)
            return None
        if not rows:
            raise ServeError(404, f"unknown user {user!r}")
        # the ledger SQL is ORDER BY time, so the rows already form the
        # sorted fingerprint vector the cache validates against
        fps = tuple((int(row[0]), str(row[1])) for row in rows)
        return self.cache.get(key, fps)

    @staticmethod
    def _inode(path: str) -> int | None:
        try:
            return os.stat(path).st_ino
        except OSError:
            return None

    def _stats_payload(self) -> dict[str, Any]:
        try:
            freshness = self.store.freshness_report()
        except StorageError:
            freshness = None
        with self._access_lock:
            access = {
                "enabled": self.access_log_enabled,
                "recorded": self.accesses_recorded,
                "dropped": self.accesses_dropped,
                "buffered": len(self._access_buffer),
            }
        return {
            "requests": self.requests_served,
            "cache": self.cache.stats.snapshot(),
            "cache_enabled": self.cache_enabled,
            "cache_entries": len(self.cache),
            "pool": self.pool.stats(),
            "fast_replicas": len(self._fast_replicas),
            "access": access,
            "freshness": freshness,
        }

    # ----------------------------------------------------- access feedback

    def _record_access(self, user: str, question: str) -> None:
        """Buffer one served-request record (event-loop thread only; the
        timestamp is stamped at flush time by the store clock)."""
        if not self.access_log_enabled:
            return
        self._access_buffer.append((user, question, None))
        if len(self._access_buffer) >= _ACCESS_FLUSH_BATCH:
            batch, self._access_buffer = self._access_buffer, []
            self._loop.run_in_executor(self._executor, self._flush_access, batch)

    def _flush_access(self, batch: list) -> None:
        """Write one batch to ``access_log`` — fire-and-forget: a failed
        flush drops the batch and bumps a counter, never a response."""
        try:
            with self._access_lock:
                store = self._access_store_handle()
                store.record_accesses(batch)
                # counter bumped under the same lock that serialises
                # flushes: concurrent executor threads and the /v1/stats
                # reader would otherwise race the unsynchronised +=
                self.accesses_recorded += len(batch)
        except Exception:
            with self._access_lock:
                self.accesses_dropped += len(batch)

    def _access_store_handle(self) -> CandidateStore:
        """The dedicated write store for access-log flushes (lazily
        opened; callers hold ``_access_lock``).

        File-backed stores get their own connections so flushes never
        contend with an in-process refresh writer on the serving store's
        router connection.  In-memory backends cannot be re-opened, so
        they fall back to the shared store — serialised by the lock.
        """
        if self._access_store is not None:
            return self._access_store
        backend = self.store.backend
        opened = None
        if isinstance(backend, ShardedSQLiteBackend) and backend.path != ":memory:":
            opened = ShardedSQLiteBackend(backend.path, n_shards=backend.n_shards)
        elif isinstance(backend, SQLiteBackend) and backend.path != ":memory:":
            opened = SQLiteBackend(backend.path)
        if opened is None:
            self._access_store = self.store
        else:
            self._access_store = CandidateStore(self.store.schema, backend=opened)
        return self._access_store

    # ------------------------------------------------------ request parsing

    @staticmethod
    def _require_user(query: dict[str, str]) -> str:
        user = query.get("user")
        if not user:
            raise ServeError(400, "missing required query parameter 'user'")
        return user

    @staticmethod
    def _float_param(query, name: str, default: float | None) -> float | None:
        raw = query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise ServeError(400, f"parameter {name!r} must be a number") from None

    @staticmethod
    def _plans_param(query) -> int:
        """``plans=k``: the requested plan-set size.  Absent and ``1``
        are the same request — both render the classic single-plan
        answer and share one cache key, keeping the default response
        byte-identical to the pre-plan-set wire format."""
        raw = query.get("plans")
        if raw is None:
            return 1
        try:
            plans = int(raw)
        except ValueError:
            raise ServeError(
                400, "parameter 'plans' must be an integer >= 1"
            ) from None
        if plans < 1:
            raise ServeError(400, "parameter 'plans' must be an integer >= 1")
        return plans

    def _default_feature(self) -> str:
        mutable = self.store.schema.mutable_indices()
        if mutable.size == 0:
            raise ServeError(
                400,
                "the schema has no mutable features; pass feature= explicitly",
            )
        return self.store.schema.names[int(mutable[0])]

    # ---------------------------------------------------------- rendering

    def _plan_bundle(self, query: dict[str, str]):
        """Parse an ``/insights`` request into ``(user, cache key,
        render, want_freshness)`` without touching the database (runs on
        the event-loop thread)."""
        user = self._require_user(query)
        alpha = self._float_param(query, "alpha", 0.8)
        budget = self._float_param(query, "budget", None)
        feature = query.get("feature") or self._default_feature()
        plans = self._plans_param(query)
        want_freshness = query.get("freshness") not in (None, "", "0", "false")
        key = (user, "bundle", (alpha, feature, budget, plans))
        return user, key, lambda view: self._render_bundle(
            view, user, alpha, feature, budget, plans
        ), want_freshness

    def _plan_question(self, qid: str, query: dict[str, str]):
        """Parse a ``/q/<qid>`` request into ``(user, cache key, render,
        want_freshness)`` — ``meta.freshness`` is bundle-only, so the
        flag is always ``False`` here."""
        if qid not in QUESTIONS:
            raise ServeError(
                404, f"unknown question {qid!r}; available: {sorted(QUESTIONS)}"
            )
        user = self._require_user(query)
        params: dict[str, Any] = {}
        if qid == "q3":
            params["feature"] = query.get("feature") or self._default_feature()
        elif qid == "q6":
            params["alpha"] = self._float_param(query, "alpha", 0.8)
        elif qid == "q7":
            params["budget"] = self._float_param(query, "budget", 1.0)
        plans = self._plans_param(query)
        if plans != 1:
            params["plans"] = plans
        key = (user, qid, tuple(sorted(params.items())))
        return user, key, lambda view: self._render_question(
            view, user, qid, params
        ), False

    def _render_bundle(
        self,
        view,
        user: str,
        alpha: float,
        feature: str,
        budget: float | None,
        plans: int = 1,
    ) -> dict[str, Any]:
        engine = InsightEngine(view, user, self.time_values)
        insights = {
            "q1": engine.ask("q1", plans=plans),
            "q2": engine.ask("q2", plans=plans),
            "q3": engine.ask("q3", feature=feature, plans=plans),
            "q4": engine.ask("q4", plans=plans),
            "q5": engine.ask("q5", plans=plans),
            "q6": engine.ask("q6", alpha=alpha, plans=plans),
        }
        if budget is not None:
            insights["q7"] = engine.ask("q7", budget=budget, plans=plans)
        return {"kind": "bundle", "insights": insights}

    def _render_question(
        self, view, user: str, qid: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        engine = InsightEngine(view, user, self.time_values)
        return {"kind": "question", "insight": engine.ask(qid, **params)}

    def _render_consistent(
        self, user: str, key: tuple, render, want_freshness: bool = False
    ) -> str:
        """Serve ``key`` from cache or render it — under a consistent
        fingerprint snapshot (see module docstring).

        Freshness-annotated responses bypass the cache in both
        directions: ``meta.freshness`` is wall-clock-dependent, so a
        cached copy would go stale immediately and poison the
        byte-identical plain responses.
        """
        use_cache = self.cache_enabled and not want_freshness
        with self.pool.view(user) as view:
            for _ in range(_MAX_SNAPSHOT_RETRIES):
                ledger = view.cell_fingerprints(user)
                if not ledger:
                    raise ServeError(404, f"unknown user {user!r}")
                fps = InsightCache.fingerprint_vector(ledger)
                if use_cache:
                    hit = self.cache.get(key, fps)
                    if hit is not None:
                        return hit
                rendered = render(view)
                if view.cell_fingerprints(user) != ledger:
                    continue  # a refresh landed mid-render: re-read
                freshness = (
                    self._bundle_freshness(view, user) if want_freshness else None
                )
                body = self._serialize(user, ledger, rendered, freshness)
                if use_cache:
                    self.cache.put(key, fps, body)
                return body
        raise ServeError(503, "store is being rewritten faster than it can be read")

    def _bundle_freshness(self, view, user: str) -> float | None:
        """Age in seconds of the oldest ``refreshed_at`` stamp backing
        the user's cells, or ``None`` when no cell carries a stamp.

        Computed in one store-clock read (``clock_sql() -
        refreshed_at`` inside the query): the stamp was written by the
        store clock, so subtracting host ``time.time()`` would fold
        host↔store clock skew into the reported age.
        """
        prepared = prepared_for(self.store.placeholder, self.store.schema.names)
        return prepared.oldest_age(
            view.read, user, self.store.backend.clock_sql()
        )

    @staticmethod
    def _serialize(
        user: str, ledger: dict[int, str], rendered: dict,
        freshness: float | None = None,
    ) -> str:
        if rendered["kind"] == "bundle":
            return dumps(
                bundle_payload(user, rendered["insights"], ledger,
                               freshness=freshness)
            )
        payload = insight_payload(rendered["insight"])
        payload["user"] = str(user)
        payload["ledger"] = {str(t): fp for t, fp in sorted(ledger.items())}
        return dumps(payload)
