"""Bounded rendered-insight cache with exact fingerprint invalidation.

The cache stores fully rendered JSON responses keyed by
``(user_id, question, params)`` together with the **fingerprint vector**
— the ``(time, model_fp)`` ledger slice of the user at render time.  A
hit is only served after the stored vector is compared against the
*current* ledger, so staleness detection is exact, not a TTL guess: a
refresh epoch bumps ``model_fp`` only for the cells it rewrote, and any
entry rendered under an older fingerprint simply fails validation on
its next lookup.  That validation read is one indexed primary-key scan
(``temporal_inputs`` is ``PRIMARY KEY (user_id, time)``) versus the
~15–25 queries of a full bundle render — the serving tier's whole
speedup lives in that ratio.

Entries can also be dropped eagerly (:meth:`invalidate_cells`) when the
refresh orchestrator reports which cells it rewrote, turning the first
post-refresh request into a clean miss instead of a validate-then-miss.
Eager invalidation is an optimisation only — correctness never depends
on it, because every hit re-validates.

Thread-safe; the server's executor threads share one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["CacheStats", "InsightCache"]

#: key of one rendered response: (user_id, question-or-"bundle", params)
CacheKey = tuple


class CacheStats:
    """Monotonic counters (reads under the cache lock, so consistent)."""

    __slots__ = ("hits", "misses", "stale", "evicted", "invalidated")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evicted = 0
        self.invalidated = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class InsightCache:
    """LRU cache of rendered responses, validated by fingerprint vector.

    Parameters
    ----------
    max_entries:
        Hard bound on resident entries; least-recently-used entries are
        evicted past it.  Rendered bundles are a few KB, so the default
        comfortably serves ~100k hot users in well under a GB.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        #: key -> (fingerprint vector, rendered payload)
        self._entries: OrderedDict[CacheKey, tuple[tuple, Any]] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def fingerprint_vector(ledger: dict[int, str]) -> tuple:
        """Canonical, hashable form of a ``{time: model_fp}`` ledger
        slice — the freshness token entries are stored and validated
        under."""
        return tuple(sorted(ledger.items()))

    def get(self, key: CacheKey, current_fps: tuple) -> Any | None:
        """The cached payload, iff it was rendered under ``current_fps``.

        ``current_fps`` must be the *caller's fresh read* of the ledger
        (via :meth:`fingerprint_vector`) — the comparison against it is
        the exact-invalidation step.  A mismatch drops the entry and
        reads as a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            stored_fps, payload = entry
            if stored_fps != current_fps:
                # rendered under an older model state: stale, evict now
                del self._entries[key]
                self.stats.stale += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return payload

    def put(self, key: CacheKey, fps: tuple, payload: Any) -> None:
        """Store ``payload`` rendered under fingerprint vector ``fps``."""
        with self._lock:
            self._entries[key] = (fps, payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evicted += 1

    # -------------------------------------------------- eager invalidation

    def invalidate_user(self, user_id: Hashable) -> int:
        """Drop every entry of one user; returns the count dropped.

        User ids are compared as strings: cache keys carry the user id
        parsed from query params (always ``str``), while refresh-side
        callers report ids in whatever type their source used (CSV
        feeds and orchestrator reports produce ints) — an exact-type
        comparison silently invalidated nothing for those callers.
        """
        user = str(user_id)
        with self._lock:
            doomed = [k for k in self._entries if str(k[0]) == user]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidated += len(doomed)
            return len(doomed)

    def invalidate_cells(self, cells) -> int:
        """Drop the entries of every user appearing in ``cells``.

        ``cells`` is an iterable of ``(user_id, time)`` — the refresh
        orchestrator's per-epoch recompute report.  Invalidation is
        per-user (not per-time) because a rendered bundle mixes all of
        the user's time points, and user ids compare as strings for the
        same reason as :meth:`invalidate_user`.
        """
        users = {str(user) for user, _time in cells}
        with self._lock:
            doomed = [k for k in self._entries if str(k[0]) in users]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidated += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
