"""CSV persistence for timestamped datasets.

A dependency-free reader/writer so that generated cohorts can be exported,
inspected, and re-loaded (the demo shows the audience "an excerpt of the
raw training data", §III).  The format is a plain header row of feature
names plus ``label`` and ``timestamp`` columns.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.dataset import TemporalDataset
from repro.data.schema import DatasetSchema
from repro.exceptions import ValidationError

__all__ = ["column_map", "load_csv", "parse_data_rows", "save_csv"]

_LABEL_COLUMN = "label"
_TIME_COLUMN = "timestamp"


def column_map(
    header: list[str], schema: DatasetSchema, path
) -> dict[str, int]:
    """Validate a header against the schema and map column name → index.

    Shared by :func:`load_csv` and the streaming
    :class:`~repro.data.feed.CsvFeed`, so one definition of "a valid
    file" governs both readers.
    """
    required = set(schema.names) | {_LABEL_COLUMN, _TIME_COLUMN}
    missing = required - set(header)
    if missing:
        raise ValidationError(f"{path} is missing columns: {sorted(missing)}")
    return {name: header.index(name) for name in header}


def parse_data_rows(numbered_rows, col: dict[str, int], schema: DatasetSchema, path):
    """Parse ``(line_no, row)`` pairs into ``(X, y, t)`` lists.

    The single row-parsing loop behind both CSV readers; malformed rows
    raise :class:`ValidationError` naming the file line.
    """
    rows_X: list[list[float]] = []
    rows_y: list[int] = []
    rows_t: list[float] = []
    for line_no, row in numbered_rows:
        if not row:
            continue
        try:
            rows_X.append([float(row[col[name]]) for name in schema.names])
            rows_y.append(int(float(row[col[_LABEL_COLUMN]])))
            rows_t.append(float(row[col[_TIME_COLUMN]]))
        except (ValueError, IndexError) as exc:
            raise ValidationError(
                f"{path}:{line_no}: malformed row: {exc}"
            ) from exc
    return rows_X, rows_y, rows_t


def save_csv(dataset: TemporalDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` as CSV with header."""
    path = Path(path)
    header = dataset.schema.names + [_LABEL_COLUMN, _TIME_COLUMN]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for x, y, t in zip(dataset.X, dataset.y, dataset.timestamps):
            writer.writerow([*(f"{v:.6g}" for v in x), int(y), f"{t:.6f}"])


def load_csv(path: str | Path, schema: DatasetSchema) -> TemporalDataset:
    """Load a CSV written by :func:`save_csv` back into a dataset.

    The header must contain every schema feature plus the label and
    timestamp columns; column order in the file is free.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValidationError(f"{path} is empty") from None
        col = column_map(header, schema, path)
        rows_X, rows_y, rows_t = parse_data_rows(
            enumerate(reader, start=2), col, schema, path
        )
    if not rows_X:
        raise ValidationError(f"{path} contains no data rows")
    return TemporalDataset(
        np.array(rows_X), np.array(rows_y), np.array(rows_t), schema
    )
