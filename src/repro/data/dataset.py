"""Timestamped dataset container.

The models generator consumes "past labeled data with timestamps" (§I);
:class:`TemporalDataset` bundles the feature matrix, binary labels and a
float timestamp per row (calendar years in the lending scenario) together
with the :class:`~repro.data.schema.DatasetSchema`, and provides the
time-window slicing the per-period training loop needs.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError
from repro.data.schema import DatasetSchema

__all__ = ["TemporalDataset"]


class TemporalDataset:
    """Feature matrix + labels + per-row timestamps + schema.

    Rows are kept sorted by timestamp, which makes window slicing a
    contiguous-range operation and keeps iteration order deterministic.
    """

    def __init__(self, X, y, timestamps, schema: DatasetSchema):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        timestamps = np.asarray(timestamps, dtype=float)
        if X.ndim != 2:
            raise ValidationError("X must be 2-D")
        if y.shape != (X.shape[0],) or timestamps.shape != (X.shape[0],):
            raise ValidationError("X, y and timestamps disagree on sample count")
        if X.shape[1] != len(schema):
            raise ValidationError(
                f"X has {X.shape[1]} columns but schema has {len(schema)} features"
            )
        order = np.argsort(timestamps, kind="stable")
        self.X = X[order]
        self.y = y[order]
        self.timestamps = timestamps[order]
        self.schema = schema

    # ------------------------------------------------------------- basics

    @classmethod
    def concat(cls, datasets) -> "TemporalDataset":
        """Concatenate datasets over a shared schema (rows re-sort by
        timestamp in the constructor).  The streaming feed buffers
        per-poll batches and merges them into one refresh epoch."""
        datasets = list(datasets)
        if not datasets:
            raise ValidationError("concat needs at least one dataset")
        schema = datasets[0].schema
        for ds in datasets[1:]:
            if ds.schema != schema:
                raise ValidationError("concat: datasets disagree on schema")
        return cls(
            np.vstack([ds.X for ds in datasets]),
            np.concatenate([ds.y for ds in datasets]),
            np.concatenate([ds.timestamps for ds in datasets]),
            schema,
        )

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def span(self) -> tuple[float, float]:
        """(earliest, latest) timestamp present."""
        return float(self.timestamps[0]), float(self.timestamps[-1])

    def __repr__(self) -> str:
        lo, hi = self.span if len(self) else (float("nan"), float("nan"))
        return (
            f"TemporalDataset(n={len(self)}, d={self.n_features},"
            f" span=[{lo:.2f}, {hi:.2f}])"
        )

    # ------------------------------------------------------------ slicing

    def window(self, start: float, end: float) -> "TemporalDataset":
        """Rows with ``start <= timestamp < end`` (end-exclusive)."""
        if end <= start:
            raise ValidationError(f"empty window [{start}, {end})")
        mask = (self.timestamps >= start) & (self.timestamps < end)
        return TemporalDataset(
            self.X[mask], self.y[mask], self.timestamps[mask], self.schema
        )

    def before(self, cutoff: float) -> "TemporalDataset":
        """Rows strictly before ``cutoff`` — the training view at a time point."""
        mask = self.timestamps < cutoff
        return TemporalDataset(
            self.X[mask], self.y[mask], self.timestamps[mask], self.schema
        )

    def periods(self, delta: float) -> Iterator[tuple[float, "TemporalDataset"]]:
        """Yield ``(period_start, window)`` pairs of width ``delta``.

        Periods cover the dataset span; the final period is end-inclusive
        so no row is dropped.
        """
        if delta <= 0:
            raise ValidationError("delta must be positive")
        lo, hi = self.span
        start = lo
        while start <= hi:
            end = start + delta
            mask = (self.timestamps >= start) & (
                (self.timestamps < end) | (end > hi)
            )
            yield float(start), TemporalDataset(
                self.X[mask], self.y[mask], self.timestamps[mask], self.schema
            )
            start = end

    def sample(
        self, n: int, random_state: int | np.random.Generator | None = None
    ) -> "TemporalDataset":
        """Uniform random subsample of ``n`` rows (without replacement)."""
        if n > len(self):
            raise ValidationError(f"cannot sample {n} rows from {len(self)}")
        rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        idx = rng.choice(len(self), size=n, replace=False)
        return TemporalDataset(
            self.X[idx], self.y[idx], self.timestamps[idx], self.schema
        )

    def approval_rate(self) -> float:
        """Fraction of positive labels."""
        if len(self) == 0:
            raise ValidationError("dataset is empty")
        return float(self.y.mean())
