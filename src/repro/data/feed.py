"""Append-only data feeds for the streaming refresh subsystem.

The paper's system is just-in-time: "past labeled data with timestamps"
keeps arriving while user sessions are live, and the models must be
re-forecast against it.  A :class:`DataFeed` is the arrival side of that
loop — a pollable source of new labeled rows.  Two sources are provided:

:class:`IteratorFeed`
    Wraps any iterable of :class:`~repro.data.dataset.TemporalDataset`
    batches — scripted streams in tests, benchmarks and demos.
:class:`CsvFeed`
    Tails an append-only CSV file in the :mod:`repro.data.io` format.
    Each poll parses only the bytes appended since the previous poll, so
    an external producer can keep ``cat``-ing labeled rows onto the file
    while a refresh daemon polls it.  A partially written final line
    (producer mid-``write``) is left in the file for the next poll
    rather than half-parsed.

Feeds return ``None`` from :meth:`DataFeed.poll` when nothing new is
available; :attr:`DataFeed.exhausted` distinguishes "quiet right now"
(a file that may grow) from "finished forever" (a consumed iterator), so
schedulers know when a streaming run can terminate.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from repro.data.dataset import TemporalDataset
from repro.data.io import column_map, parse_data_rows
from repro.data.schema import DatasetSchema
from repro.exceptions import ValidationError

__all__ = ["CsvFeed", "DataFeed", "IteratorFeed"]


class DataFeed:
    """Pollable source of newly arrived labeled rows."""

    def poll(self) -> TemporalDataset | None:
        """Rows that arrived since the last poll, or ``None`` if none."""
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        """Whether the feed can ever produce rows again.  File-backed
        feeds stay ``False`` forever (the file may grow); finite scripted
        feeds flip to ``True`` once consumed."""
        return False

    @property
    def checkpoint(self) -> int | None:
        """Durable resume cursor for this feed, or ``None`` if the feed
        cannot resume (scripted iterators).  For :class:`CsvFeed` this
        is the byte :attr:`~CsvFeed.offset`; consumers (the refresh
        daemon, the orchestrator) persist it atomically with the state
        the polled rows were merged into, and pass it back as
        ``start_offset`` after a restart."""
        return None


class IteratorFeed(DataFeed):
    """Feed over a finite iterable of pre-built dataset batches.

    An empty batch (or ``None`` entry) models a poll interval in which
    no data arrived — the scheduler sees ``None`` and keeps waiting.
    """

    def __init__(self, batches):
        self._iterator = iter(batches)
        self._exhausted = False

    def poll(self) -> TemporalDataset | None:
        if self._exhausted:
            return None
        try:
            batch = next(self._iterator)
        except StopIteration:
            self._exhausted = True
            return None
        if batch is None or len(batch) == 0:
            return None
        return batch

    @property
    def exhausted(self) -> bool:
        return self._exhausted


class CsvFeed(DataFeed):
    """Tail an append-only CSV file of labeled, timestamped rows.

    The file uses the :func:`repro.data.io.save_csv` layout: a header
    naming every schema feature plus ``label`` and ``timestamp`` columns
    (in any order), then one row per sample.  The feed remembers its
    byte offset; each poll reads and parses only complete newly appended
    lines.  The file not existing yet simply means no data so far.

    ``start_offset`` resumes a previous feed position (see
    :attr:`offset`) — a restarted daemon passes its checkpointed offset
    so already-ingested rows are not re-read and double-merged into the
    training history.  The header is re-parsed from the file at
    construction in that case.
    """

    def __init__(
        self, path: str | Path, schema: DatasetSchema, start_offset: int = 0
    ):
        self.path = Path(path)
        self.schema = schema
        self._offset = 0
        self._columns: dict[str, int] | None = None
        self._line_no = 0
        if start_offset:
            if not self.path.exists():
                raise ValidationError(
                    f"cannot resume feed at offset {start_offset}:"
                    f" {self.path} does not exist"
                )
            if self.path.stat().st_size < start_offset:
                raise ValidationError(
                    f"{self.path} is smaller than the resume offset"
                    f" {start_offset}; the feed file was truncated or"
                    " replaced — remove the checkpoint to re-ingest"
                )
            with self.path.open("rb") as handle:
                header_line = handle.readline()
                # count the consumed lines once so malformed-row errors
                # after a resume still report real file line numbers
                consumed = handle.read(int(start_offset) - len(header_line))
            self._parse_header(header_line.decode("utf-8").rstrip("\r\n"))
            self._offset = int(start_offset)
            self._line_no = 1 + consumed.count(b"\n")

    @property
    def offset(self) -> int:
        """Byte position up to which the file has been consumed —
        checkpoint this (after the polled rows were durably ingested)
        and pass it back as ``start_offset`` to resume."""
        return self._offset

    @property
    def checkpoint(self) -> int:
        return self._offset

    def _parse_header(self, line: str) -> None:
        header = next(csv.reader([line]))
        self._columns = column_map(header, self.schema, self.path)

    def poll(self) -> TemporalDataset | None:
        if not self.path.exists():
            return None
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        if not chunk:
            return None
        # consume only complete lines; a trailing partial line stays in
        # the file for the next poll (the producer is mid-append)
        complete, newline, _rest = chunk.rpartition(b"\n")
        if not newline:
            return None
        complete += b"\n"
        self._offset += len(complete)
        lines = complete.decode("utf-8").splitlines()
        if self._columns is None:
            self._parse_header(lines[0])
            self._line_no = 1
            lines = lines[1:]
        def numbered():
            for row in csv.reader(io.StringIO("\n".join(lines))):
                self._line_no += 1
                yield self._line_no, row

        rows_X, rows_y, rows_t = parse_data_rows(
            numbered(), self._columns, self.schema, self.path
        )
        if not rows_X:
            return None
        return TemporalDataset(
            np.array(rows_X), np.array(rows_y), np.array(rows_t), self.schema
        )
