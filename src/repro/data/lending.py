"""Synthetic Lending-Club-style loan application generator.

The original demo uses the Kaggle "Lending Club Loan Data" dump (~1M
applications, 2007–2018).  That file is not available offline, so this
module generates a statistically analogous population over the exact six
features the paper's running example names — age, household status, annual
income, monthly debt, job seniority, requested loan amount — timestamped
over the same year range, and labels it with the drifting ground-truth
policy of :mod:`repro.data.drift`.

What matters for reproducing the paper is preserved:

* labels come from a *time-varying* policy, so models trained on different
  year windows genuinely differ and plans go stale (Example I.1);
* features have realistic scales, bounds, integrality and correlations
  (income grows with age/seniority; debt correlates with income), so the
  constraints language and candidate plans are meaningful;
* generation is fully seeded.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TemporalDataset
from repro.data.drift import LendingPolicy
from repro.data.schema import DatasetSchema, FeatureSpec
from repro.exceptions import ValidationError

__all__ = [
    "lending_schema",
    "LendingGenerator",
    "make_lending_dataset",
    "john_profile",
]

#: Population means/stds used to z-score features before applying the
#: latent policy.  Fixed constants (not per-cohort statistics) so that the
#: policy semantics do not shift when cohort composition changes.
_STANDARDISATION = {
    "age": (42.0, 12.0),
    "household": (1.0, 0.8),
    "annual_income": (72_000.0, 32_000.0),
    "monthly_debt": (1_500.0, 900.0),
    "seniority": (8.0, 6.0),
    "loan_amount": (18_000.0, 11_000.0),
}

HOUSEHOLD_SINGLE, HOUSEHOLD_MARRIED, HOUSEHOLD_FAMILY = 0, 1, 2


def lending_schema() -> DatasetSchema:
    """Schema over the six features of the paper's running example."""
    return DatasetSchema(
        [
            FeatureSpec(
                "age",
                dtype="int",
                lower=18,
                upper=100,
                mutable=False,
                temporal=True,
                description="applicant age in years; grows with time, not by action",
            ),
            FeatureSpec(
                "household",
                dtype="categorical",
                lower=0,
                upper=2,
                categories=(0, 1, 2),
                description="household status: 0=single, 1=married, 2=family",
            ),
            FeatureSpec(
                "annual_income",
                dtype="float",
                lower=0,
                upper=1_000_000,
                step=1_000.0,
                description="gross annual income in USD",
            ),
            FeatureSpec(
                "monthly_debt",
                dtype="float",
                lower=0,
                upper=50_000,
                step=50.0,
                description="total monthly debt payments in USD",
            ),
            FeatureSpec(
                "seniority",
                dtype="int",
                lower=0,
                upper=60,
                mutable=False,
                temporal=True,
                description="job seniority in years; grows with time, not by action",
            ),
            FeatureSpec(
                "loan_amount",
                dtype="float",
                lower=1_000,
                upper=200_000,
                step=500.0,
                description="requested loan amount in USD",
            ),
        ]
    )


def standardise_profile(X: np.ndarray, schema: DatasetSchema) -> dict[str, np.ndarray]:
    """Z-score raw feature columns against the fixed population parameters.

    Also exposes ``age_raw`` so the policy can apply its age-band
    interaction on the original scale.
    """
    profile: dict[str, np.ndarray] = {}
    for name, (mean, std) in _STANDARDISATION.items():
        col = X[:, schema.index_of(name)]
        profile[name] = (col - mean) / std
    profile["age_raw"] = X[:, schema.index_of("age")]
    return profile


class LendingGenerator:
    """Seeded generator of timestamped, policy-labeled loan applications.

    Parameters
    ----------
    policy:
        Ground-truth drifting policy; defaults to the paper-calibrated
        :class:`~repro.data.drift.LendingPolicy`.
    random_state:
        Seed for applicant profiles and label noise.
    """

    def __init__(
        self,
        policy: LendingPolicy | None = None,
        random_state: int | np.random.Generator | None = 0,
    ):
        self.policy = policy or LendingPolicy()
        self.schema = lending_schema()
        self._rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

    # ---------------------------------------------------------- profiles

    def sample_profiles(self, n: int) -> np.ndarray:
        """Draw ``n`` applicant feature vectors (no labels)."""
        if n < 1:
            raise ValidationError("n must be >= 1")
        rng = self._rng
        age = np.clip(rng.normal(42, 12, size=n), 18, 100)
        # seniority grows with age but cannot exceed working years
        max_seniority = np.maximum(age - 18, 0)
        seniority = np.clip(
            rng.normal((age - 22) * 0.45, 3.0, size=n), 0, max_seniority
        )
        # income grows with age and seniority, log-normal spread
        base_income = 34_000 + 900 * (age - 18) + 1_700 * seniority
        income = base_income * rng.lognormal(0.0, 0.35, size=n)
        income = np.clip(income, 8_000, 1_000_000)
        # household status: older applicants skew married/family
        p_family = np.clip((age - 22) / 60, 0.05, 0.75)
        u = rng.random(n)
        household = np.where(
            u < 1 - p_family,
            np.where(rng.random(n) < 0.5, HOUSEHOLD_SINGLE, HOUSEHOLD_MARRIED),
            HOUSEHOLD_FAMILY,
        )
        # monthly debt correlates with income and household size
        debt = np.clip(
            income * rng.uniform(0.08, 0.45, size=n) / 12 * (1 + 0.25 * household),
            0,
            50_000,
        )
        loan = np.clip(
            rng.lognormal(np.log(15_000), 0.6, size=n), 1_000, 200_000
        )
        X = np.column_stack(
            [
                np.round(age),
                household.astype(float),
                np.round(income, -2),
                np.round(debt, 0),
                np.round(seniority),
                np.round(loan, -2),
            ]
        )
        return X

    # ------------------------------------------------------------ labels

    def label(self, X: np.ndarray, years: np.ndarray) -> np.ndarray:
        """Sample approval labels from the ground-truth policy at ``years``."""
        profile = standardise_profile(X, self.schema)
        labels = np.empty(X.shape[0], dtype=int)
        for year in np.unique(years):
            mask = years == year
            sub = {k: v[mask] for k, v in profile.items()}
            p = self.policy.approval_probability(sub, float(year))
            labels[mask] = (self._rng.random(mask.sum()) < p).astype(int)
        return labels

    def ground_truth_probability(self, X: np.ndarray, year: float) -> np.ndarray:
        """Noise-free P(approve) under the generating policy (oracle view)."""
        profile = standardise_profile(np.atleast_2d(X), self.schema)
        return self.policy.approval_probability(profile, year)

    def label_grades(
        self,
        X: np.ndarray,
        years: np.ndarray,
        cutoffs: tuple[float, float] = (0.5, 0.8),
    ) -> np.ndarray:
        """Multi-class loan *grades* from the same latent policy.

        Grade 0 = reject, 1 = standard approval, 2 = prime terms; the
        grade is the count of ``cutoffs`` the (noisy) approval probability
        clears.  Exercises the paper's multi-class generalisation remark
        (§II.A) with a realistic semantics: an applicant may ask which
        modifications reach *prime*, not merely approval.
        """
        low, high = cutoffs
        if not 0.0 < low < high < 1.0:
            raise ValidationError("cutoffs must satisfy 0 < low < high < 1")
        X = np.atleast_2d(X)
        years = np.asarray(years, dtype=float).ravel()
        profile = standardise_profile(X, self.schema)
        grades = np.zeros(X.shape[0], dtype=int)
        for year in np.unique(years):
            mask = years == year
            sub = {k: v[mask] for k, v in profile.items()}
            p = self.policy.approval_probability(sub, float(year))
            noisy = np.clip(p + self._rng.normal(0.0, 0.05, size=p.shape), 0, 1)
            grades[mask] = (noisy > low).astype(int) + (noisy > high).astype(int)
        return grades

    # ----------------------------------------------------------- dataset

    def generate(
        self,
        n_per_year: int = 400,
        start_year: int | None = None,
        end_year: int | None = None,
    ) -> TemporalDataset:
        """Generate a full timestamped dataset across the configured span.

        Timestamps are the application year plus a uniform within-year
        offset, mirroring the Kaggle dump's monthly issue dates.
        """
        start = start_year if start_year is not None else self.policy.start_year
        end = end_year if end_year is not None else self.policy.end_year
        if end < start:
            raise ValidationError("end_year must be >= start_year")
        blocks, labels, stamps = [], [], []
        for year in range(start, end + 1):
            X = self.sample_profiles(n_per_year)
            years = np.full(n_per_year, year, dtype=float)
            y = self.label(X, years)
            offsets = self._rng.uniform(0, 1, size=n_per_year)
            blocks.append(X)
            labels.append(y)
            stamps.append(year + offsets)
        return TemporalDataset(
            np.vstack(blocks),
            np.concatenate(labels),
            np.concatenate(stamps),
            self.schema,
        )

    def sample_rejected(
        self, year: float, n: int = 1, max_tries: int = 200
    ) -> np.ndarray:
        """Draw ``n`` profiles the ground-truth policy rejects at ``year``.

        Used by the demo reenactment ("five real-life loan applications
        that were denied", §III).
        """
        found: list[np.ndarray] = []
        for _ in range(max_tries):
            X = self.sample_profiles(max(4 * n, 16))
            p = self.ground_truth_probability(X, year)
            rejected = X[p < 0.5]
            for row in rejected:
                found.append(row)
                if len(found) == n:
                    return np.vstack(found)
        raise ValidationError(
            f"could not find {n} rejected profiles at year {year}"
        )


def make_lending_dataset(
    n_per_year: int = 400,
    random_state: int = 0,
    drift_strength: float = 1.0,
) -> TemporalDataset:
    """One-call convenience wrapper used throughout tests and examples."""
    policy = LendingPolicy(drift_strength=drift_strength)
    return LendingGenerator(policy, random_state=random_state).generate(n_per_year)


def john_profile() -> dict[str, float]:
    """The running example's applicant (Example I.1): John, 29 years old.

    Chosen so that present-time policies reject him: modest income, high
    debt relative to income, and a sizeable requested loan.
    """
    return {
        "age": 29,
        "household": HOUSEHOLD_MARRIED,
        "annual_income": 52_000.0,
        "monthly_debt": 2_600.0,
        "seniority": 4,
        "loan_amount": 30_000.0,
    }
