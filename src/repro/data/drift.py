"""Parametric year-over-year policy drift for the synthetic lending data.

The paper's central premise is that both applicant data and the *decision
policy* evolve: "an explanation for an application rejection in 2018 may be
irrelevant in 2019" and, concretely (Example I.1), "for people over 30,
income requirements are often relaxed while debt requirements tend to
become stricter".

:class:`LendingPolicy` encodes a ground-truth approval policy whose
coefficients are smooth functions of calendar time, including exactly that
age-interaction flip, plus a macro credit cycle (the 2008–2009 crunch).
The generator labels applications with this policy; the models generator
then has a real, learnable drift signal, and the "oracle" forecasting
strategy can be scored against policies the other strategies never saw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PolicyWeights", "LendingPolicy"]


@dataclass(frozen=True)
class PolicyWeights:
    """Latent linear policy at one time point (standardised feature space).

    ``income_young``/``income_old`` and ``debt_young``/``debt_old`` are the
    income/debt coefficients for applicants below/above the age pivot —
    this is the interaction the running example hinges on.
    """

    income_young: float
    income_old: float
    debt_young: float
    debt_old: float
    seniority: float
    loan_amount: float
    age: float
    household: float
    intercept: float
    age_pivot: float = 30.0


class LendingPolicy:
    """Time-varying ground-truth approval policy.

    Parameters
    ----------
    start_year, end_year:
        Calendar span the policy is defined over (inclusive).
    crunch_year:
        Centre of the macro credit crunch (approval bar spikes there).
    drift_strength:
        Scales how fast coefficients move; 0 freezes the policy (useful in
        tests and as a no-drift ablation).
    noise:
        Standard deviation of the logistic noise on the latent score.
    """

    def __init__(
        self,
        start_year: int = 2007,
        end_year: int = 2018,
        crunch_year: float = 2009.0,
        drift_strength: float = 1.0,
        noise: float = 0.35,
    ):
        if end_year <= start_year:
            raise ValueError("end_year must exceed start_year")
        self.start_year = start_year
        self.end_year = end_year
        self.crunch_year = crunch_year
        self.drift_strength = drift_strength
        self.noise = noise

    # ------------------------------------------------------------- weights

    def weights_at(self, year: float) -> PolicyWeights:
        """Return the latent policy coefficients in effect at ``year``.

        All drifts are linear/smooth in time so that embedding-based
        extrapolation (Lampert-style) has a learnable signal:

        * income matters less for 30+ applicants as years pass, debt
          matters more (the Example I.1 flip), with the *young* branch
          drifting the opposite way;
        * the macro cycle moves the intercept: a sharp tightening around
          ``crunch_year`` followed by gradual easing.
        """
        s = self.drift_strength
        # normalised time in [0, 1] across the configured span
        u = (year - self.start_year) / (self.end_year - self.start_year)
        u = float(np.clip(u, -0.5, 1.5))
        crunch = np.exp(-0.5 * ((year - self.crunch_year) / 0.8) ** 2)
        return PolicyWeights(
            income_young=1.40 + 0.50 * s * u,
            income_old=1.60 - 1.10 * s * u,
            debt_young=-1.10 - 0.20 * s * u,
            debt_old=-0.90 - 1.30 * s * u,
            seniority=0.55 + 0.25 * s * u,
            loan_amount=-0.95 - 0.15 * s * u,
            age=0.15,
            household=0.18,
            intercept=-0.25 - 1.10 * s * crunch + 0.55 * s * u,
        )

    # ------------------------------------------------------------- scoring

    def latent_score(self, profile: dict[str, np.ndarray], year: float) -> np.ndarray:
        """Latent approval score for standardised profile columns at ``year``.

        ``profile`` maps feature name to a z-scored column (the generator
        standardises against fixed population parameters so the policy is
        stable across cohorts).
        """
        w = self.weights_at(year)
        old = profile["age_raw"] >= w.age_pivot
        income_w = np.where(old, w.income_old, w.income_young)
        debt_w = np.where(old, w.debt_old, w.debt_young)
        return (
            income_w * profile["annual_income"]
            + debt_w * profile["monthly_debt"]
            + w.seniority * profile["seniority"]
            + w.loan_amount * profile["loan_amount"]
            + w.age * profile["age"]
            + w.household * profile["household"]
            + w.intercept
        )

    def approval_probability(
        self, profile: dict[str, np.ndarray], year: float
    ) -> np.ndarray:
        """Ground-truth P(approve) via a logistic link on the latent score."""
        z = self.latent_score(profile, year) / max(self.noise, 1e-6)
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
