"""Data substrate: schemas, synthetic lending data, dataset container, io.

Substitutes the Kaggle Lending Club dump (unavailable offline) with a
seeded generator whose ground-truth approval policy drifts year over year
— the property the paper's temporal framework exists to handle.
"""

from repro.data.dataset import TemporalDataset
from repro.data.drift import LendingPolicy, PolicyWeights
from repro.data.feed import CsvFeed, DataFeed, IteratorFeed
from repro.data.io import load_csv, save_csv
from repro.data.lending import (
    LendingGenerator,
    john_profile,
    lending_schema,
    make_lending_dataset,
)
from repro.data.schema import DatasetSchema, FeatureSpec

__all__ = [
    "CsvFeed",
    "DataFeed",
    "DatasetSchema",
    "FeatureSpec",
    "IteratorFeed",
    "LendingGenerator",
    "LendingPolicy",
    "PolicyWeights",
    "TemporalDataset",
    "john_profile",
    "lending_schema",
    "load_csv",
    "make_lending_dataset",
    "save_csv",
]
