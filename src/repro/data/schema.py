"""Feature schema: names, types, bounds and temporal/mutability flags.

The constraints language, the temporal update function and the candidate
search all need per-feature metadata:

* which features are *temporal* (change deterministically with time, e.g.
  age — Definition II.4 treats these specially);
* which features are *mutable* by the user at all (a person cannot change
  their age by acting, only time changes it);
* value bounds and integrality, so generated candidates stay realistic.

A :class:`DatasetSchema` is an ordered collection of :class:`FeatureSpec`
and provides name/index translation plus dict/vector conversion, which the
DB layer and the UI both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SchemaError

__all__ = ["FeatureSpec", "DatasetSchema"]


@dataclass(frozen=True)
class FeatureSpec:
    """Static description of one input feature.

    Parameters
    ----------
    name:
        Identifier used in constraints, SQL columns and the UI.
    dtype:
        ``'float'``, ``'int'`` or ``'categorical'`` (integer-coded).
    lower, upper:
        Inclusive physical bounds; ``None`` means unbounded on that side.
    mutable:
        Whether a user action can change this feature (age: no).
    temporal:
        Whether the feature drifts deterministically with time (age,
        seniority).  Temporal features get a rule in the temporal update
        function.
    step:
        Natural granularity for candidate moves (e.g. 500 for income).
        ``None`` lets the generator pick one from the data scale.
    categories:
        For categoricals: allowed integer codes (order is meaningful only
        as identity).
    description:
        Human-readable explanation surfaced by the UI layer.
    """

    name: str
    dtype: str = "float"
    lower: float | None = None
    upper: float | None = None
    mutable: bool = True
    temporal: bool = False
    step: float | None = None
    categories: tuple[int, ...] | None = None
    description: str = ""

    def __post_init__(self):
        if self.dtype not in ("float", "int", "categorical"):
            raise SchemaError(
                f"feature {self.name!r}: dtype must be float/int/categorical,"
                f" got {self.dtype!r}"
            )
        if (
            self.lower is not None
            and self.upper is not None
            and self.lower > self.upper
        ):
            raise SchemaError(
                f"feature {self.name!r}: lower bound {self.lower} exceeds"
                f" upper bound {self.upper}"
            )
        if self.dtype == "categorical" and not self.categories:
            raise SchemaError(
                f"feature {self.name!r}: categorical features need categories"
            )

    def clip(self, value: float) -> float:
        """Clip ``value`` into the feature's physical bounds and granularity."""
        out = float(value)
        if self.lower is not None:
            out = max(out, self.lower)
        if self.upper is not None:
            out = min(out, self.upper)
        if self.dtype == "categorical" and self.categories:
            # snap the raw value to the nearest allowed code
            codes = np.asarray(self.categories, dtype=float)
            out = float(codes[np.argmin(np.abs(codes - out))])
        elif self.dtype == "int":
            out = float(round(out))
        return out

    def contains(self, value: float) -> bool:
        """Whether ``value`` is a legal value for this feature."""
        if self.lower is not None and value < self.lower - 1e-9:
            return False
        if self.upper is not None and value > self.upper + 1e-9:
            return False
        if self.dtype in ("int", "categorical") and abs(value - round(value)) > 1e-9:
            return False
        if self.dtype == "categorical" and self.categories:
            return int(round(value)) in self.categories
        return True


class DatasetSchema:
    """Ordered feature collection with name/index resolution."""

    def __init__(self, features: list[FeatureSpec] | tuple[FeatureSpec, ...]):
        if not features:
            raise SchemaError("schema must contain at least one feature")
        names = [f.name for f in features]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate feature names in schema: {names}")
        self._features: tuple[FeatureSpec, ...] = tuple(features)
        self._index: dict[str, int] = {f.name: i for i, f in enumerate(features)}
        self._build_clip_cache()

    def _build_clip_cache(self) -> None:
        """Precompute the arrays backing the vectorized clip_matrix path."""
        self._lower = np.array(
            [-np.inf if f.lower is None else f.lower for f in self._features]
        )
        self._upper = np.array(
            [np.inf if f.upper is None else f.upper for f in self._features]
        )
        self._int_cols = np.array(
            [i for i, f in enumerate(self._features) if f.dtype == "int"], dtype=int
        )
        self._cat_cols: list[tuple[int, np.ndarray]] = [
            (i, np.asarray(f.categories, dtype=float))
            for i, f in enumerate(self._features)
            if f.dtype == "categorical" and f.categories
        ]

    # ------------------------------------------------------------- basics

    @property
    def features(self) -> tuple[FeatureSpec, ...]:
        return self._features

    @property
    def names(self) -> list[str]:
        return [f.name for f in self._features]

    def __len__(self) -> int:
        return len(self._features)

    def __iter__(self):
        return iter(self._features)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, key: str | int) -> FeatureSpec:
        if isinstance(key, str):
            return self._features[self.index_of(key)]
        return self._features[key]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DatasetSchema) and self._features == other._features
        )

    def __repr__(self) -> str:
        return f"DatasetSchema({self.names})"

    def index_of(self, name: str) -> int:
        """Return the column index of ``name`` or raise :class:`SchemaError`."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown feature {name!r}; schema has {self.names}"
            ) from None

    # --------------------------------------------------------- conversions

    def vector(self, values: dict[str, float]) -> np.ndarray:
        """Build a feature vector from a name→value dict (all names required)."""
        missing = set(self.names) - set(values)
        if missing:
            raise SchemaError(f"missing features: {sorted(missing)}")
        extra = set(values) - set(self.names)
        if extra:
            raise SchemaError(f"unknown features: {sorted(extra)}")
        return np.array([float(values[name]) for name in self.names])

    def as_dict(self, x) -> dict[str, float]:
        """Convert a feature vector to a name→value dict."""
        x = np.asarray(x, dtype=float).ravel()
        if x.size != len(self):
            raise SchemaError(
                f"vector has {x.size} entries, schema expects {len(self)}"
            )
        return {name: float(v) for name, v in zip(self.names, x)}

    # ----------------------------------------------------------- subsets

    def mutable_indices(self) -> np.ndarray:
        """Column indices the user may act on."""
        return np.array(
            [i for i, f in enumerate(self._features) if f.mutable], dtype=int
        )

    def temporal_features(self) -> list[FeatureSpec]:
        """Features that drift deterministically with time."""
        return [f for f in self._features if f.temporal]

    def clip(self, x) -> np.ndarray:
        """Clip a vector feature-wise into physical bounds/granularity."""
        x = np.asarray(x, dtype=float).ravel()
        if x.size != len(self):
            raise SchemaError(
                f"vector has {x.size} entries, schema expects {len(self)}"
            )
        return np.array([f.clip(v) for f, v in zip(self._features, x)])

    def clip_matrix(self, X) -> np.ndarray:
        """Vectorized :meth:`clip` over the rows of an ``(n, d)`` matrix.

        Bit-identical to clipping each row (bounds, then categorical snap
        / integer rounding — NumPy and Python both round half to even).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != len(self):
            raise SchemaError(
                f"matrix has {X.shape[1]} columns, schema expects {len(self)}"
            )
        if not hasattr(self, "_lower"):  # unpickled from a pre-batch save
            self._build_clip_cache()
        out = np.clip(X, self._lower, self._upper)
        for i, codes in self._cat_cols:
            nearest = np.argmin(np.abs(out[:, i, None] - codes), axis=1)
            out[:, i] = codes[nearest]
        if self._int_cols.size:
            out[:, self._int_cols] = np.round(out[:, self._int_cols])
        return out

    def validate_vector(self, x) -> bool:
        """Whether each coordinate of ``x`` is legal for its feature."""
        x = np.asarray(x, dtype=float).ravel()
        if x.size != len(self):
            return False
        return all(f.contains(v) for f, v in zip(self._features, x))
