"""From-scratch machine-learning substrate.

The original JustInTime demo trains H2O random forests; this subpackage
provides the equivalent model classes (and more) with no dependency beyond
numpy, all implementing the paper's Definition II.1 interface
``M : R^d -> [0, 1]`` via ``decision_score``.
"""

from repro.ml.base import BaseClassifier, BaseEstimator, as_rng
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.calibration import CalibratedClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression, sigmoid
from repro.ml.multiclass import DesiredClassModel, OneVsRestClassifier
from repro.ml.metrics import (
    accuracy_score,
    brier_score,
    classification_report,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from repro.ml.preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    train_test_split,
)
from repro.ml.tree import DecisionTreeClassifier, TreeNode
from repro.ml.validation import KFold, StratifiedKFold, cross_val_score

__all__ = [
    "BaseClassifier",
    "BaseEstimator",
    "CalibratedClassifier",
    "DecisionTreeClassifier",
    "DesiredClassModel",
    "OneVsRestClassifier",
    "GradientBoostingClassifier",
    "KFold",
    "LabelEncoder",
    "LogisticRegression",
    "MinMaxScaler",
    "OneHotEncoder",
    "RandomForestClassifier",
    "StandardScaler",
    "StratifiedKFold",
    "TreeNode",
    "accuracy_score",
    "as_rng",
    "brier_score",
    "classification_report",
    "confusion_matrix",
    "cross_val_score",
    "f1_score",
    "log_loss",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "roc_curve",
    "sigmoid",
    "train_test_split",
]
