"""Multi-class generalisation of the Definition II.1 interface.

The paper focuses on binary classification "for simplicity, but the
framework can be easily generalized to multi-class problems" (§II.A).
This module makes that claim concrete:

* :class:`OneVsRestClassifier` trains one binary scorer per class and
  normalises their positive scores into a class-probability matrix;
* :class:`DesiredClassModel` adapts a fitted multi-class model back to
  the binary ``M : R^d -> [0, 1]`` contract by scoring the probability of
  the user's *desired* class — which is exactly what the candidates
  generator needs ("what should I change so the model assigns me class
  c?").  It forwards ``split_thresholds`` so the tree-ensemble move
  heuristics keep working unchanged.

Lending-scenario interpretation: instead of approve/reject, the bank
assigns a loan *grade* (e.g. 0=reject, 1=standard, 2=prime) and the
applicant asks for modifications that reach the prime grade.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseClassifier, BaseEstimator, as_rng, check_X, check_fitted

__all__ = ["OneVsRestClassifier", "DesiredClassModel"]


class OneVsRestClassifier(BaseEstimator):
    """One binary scorer per class, normalised into class probabilities.

    Parameters
    ----------
    base_factory:
        Zero-argument callable returning an unfitted
        :class:`~repro.ml.base.BaseClassifier` (one is created per class).
    random_state:
        Re-seeds each per-class model (when it exposes ``random_state``)
        so the ensemble is reproducible.
    """

    def __init__(
        self,
        base_factory: Callable[[], BaseClassifier],
        random_state: int | None = 0,
    ):
        self.base_factory = base_factory
        self.random_state = random_state
        self.classes_: np.ndarray | None = None
        self.models_: list[BaseClassifier] | None = None
        self.n_features_: int | None = None

    def fit(self, X, y) -> "OneVsRestClassifier":
        X = check_X(X)
        y = np.asarray(y).ravel()
        if y.shape[0] != X.shape[0]:
            raise ValidationError("X and y disagree on sample count")
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValidationError("need at least two classes")
        rng = as_rng(self.random_state)
        self.models_ = []
        for label in self.classes_:
            model = self.base_factory()
            if "random_state" in model.get_params():
                model.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
            model.fit(X, (y == label).astype(int))
            self.models_.append(model)
        self.n_features_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Return an ``(n, n_classes)`` matrix of normalised class scores."""
        check_fitted(self, "models_")
        X = check_X(X)
        scores = np.column_stack(
            [model.decision_score(X) for model in self.models_]
        )
        totals = scores.sum(axis=1, keepdims=True)
        # all-zero rows (every one-vs-rest scorer rejects) become uniform
        uniform = np.full_like(scores, 1.0 / scores.shape[1])
        with np.errstate(invalid="ignore", divide="ignore"):
            proba = np.where(totals > 0, scores / totals, uniform)
        return proba

    def predict(self, X) -> np.ndarray:
        """Return the most probable class label per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    def class_index(self, label) -> int:
        check_fitted(self, "classes_")
        matches = np.flatnonzero(self.classes_ == label)
        if matches.size == 0:
            raise ValidationError(
                f"unknown class {label!r}; classes are {self.classes_.tolist()}"
            )
        return int(matches[0])


class DesiredClassModel(BaseClassifier):
    """Binary view of a multi-class model: ``M(x) = P(class = desired)``.

    Satisfies Definition II.1, so every downstream component — the
    constraints language's ``confidence`` property, the candidates
    generator, the thresholds, the DB schema — works on multi-class
    problems without modification.
    """

    def __init__(self, multiclass: OneVsRestClassifier, desired_class):
        check_fitted(multiclass, "models_")
        self.multiclass = multiclass
        self.desired_class = desired_class
        self._class_idx = multiclass.class_index(desired_class)
        self.n_features_ = multiclass.n_features_

    def fit(self, X, y):  # pragma: no cover - adapter, never fitted
        raise ValidationError("DesiredClassModel wraps a fitted model")

    def predict_proba(self, X) -> np.ndarray:
        proba = self.multiclass.predict_proba(X)
        p1 = proba[:, self._class_idx]
        return np.column_stack([1.0 - p1, p1])

    def split_thresholds(self) -> dict[int, np.ndarray]:
        """Union of split thresholds over the per-class ensembles.

        Available only when every per-class model exposes thresholds;
        keeps the tree move heuristic working for multi-class forests.
        """
        merged: dict[int, set[float]] = {}
        for model in self.multiclass.models_:
            if not hasattr(model, "split_thresholds"):
                raise ValidationError(
                    f"{type(model).__name__} exposes no split_thresholds"
                )
            for feature, values in model.split_thresholds().items():
                merged.setdefault(feature, set()).update(values.tolist())
        return {
            feature: np.array(sorted(values)) for feature, values in merged.items()
        }
