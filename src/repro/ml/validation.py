"""Cross-validation utilities.

Used by the forecast ablation bench to score forecasting strategies fairly
and by tests to sanity-check the from-scratch estimators.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseClassifier, as_rng
from repro.ml.metrics import accuracy_score

__all__ = ["KFold", "StratifiedKFold", "cross_val_score"]


class KFold:
    """Standard k-fold splitter yielding ``(train_idx, test_idx)`` pairs."""

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: int | np.random.Generator | None = None,
    ):
        if n_splits < 2:
            raise ValidationError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValidationError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            as_rng(self.random_state).shuffle(indices)
        for fold in np.array_split(indices, self.n_splits):
            train = np.setdiff1d(indices, fold, assume_unique=False)
            yield train, fold


class StratifiedKFold:
    """K-fold splitter preserving the class balance of ``y`` per fold."""

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: int | np.random.Generator | None = None,
    ):
        if n_splits < 2:
            raise ValidationError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n = y.shape[0]
        rng = as_rng(self.random_state)
        folds: list[list[int]] = [[] for _ in range(self.n_splits)]
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            for i, chunk in enumerate(np.array_split(members, self.n_splits)):
                folds[i].extend(chunk.tolist())
        all_idx = np.arange(n)
        for fold in folds:
            fold_arr = np.array(sorted(fold), dtype=int)
            if fold_arr.size == 0:
                raise ValidationError("a stratified fold came out empty")
            train = np.setdiff1d(all_idx, fold_arr)
            yield train, fold_arr


def cross_val_score(
    estimator: BaseClassifier,
    X,
    y,
    *,
    cv: int = 5,
    scorer: Callable[[np.ndarray, np.ndarray], float] | None = None,
    random_state: int | None = None,
) -> np.ndarray:
    """Return per-fold scores for a fresh clone of ``estimator``.

    ``scorer(y_true, y_pred)`` defaults to accuracy over hard predictions.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    scorer = scorer or accuracy_score
    splitter = StratifiedKFold(n_splits=cv, random_state=random_state)
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        model = estimator.clone()
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
    return np.array(scores)
