"""Logistic regression trained by full-batch gradient descent.

Used in three places in the reproduction:

* as an alternative model class for the JustInTime pipeline (the paper's
  framework is model-agnostic given Definition II.1);
* by the ``weights`` forecasting strategy (:mod:`repro.temporal.forecast`),
  which extrapolates the trajectory of per-year logistic coefficient
  vectors — the style of approach the paper cites as Kumagai & Iwata [8];
* by the gradient move proposer of the candidates generator, which walks
  along ``∇M(x)``.

Supports sample weights (needed by the ``reweight`` forecasting strategy)
and L2 regularisation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseClassifier, check_X, check_X_y, check_fitted

__all__ = ["LogisticRegression", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=float)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(BaseClassifier):
    """L2-regularised binary logistic regression.

    Parameters
    ----------
    lr:
        Gradient-descent step size.
    max_iter:
        Maximum number of full-batch iterations.
    tol:
        Stop when the max absolute gradient component falls below this.
    alpha:
        L2 penalty strength on the weights (the intercept is not
        penalised).
    fit_intercept:
        Learn an intercept term.
    """

    def __init__(
        self,
        lr: float = 0.1,
        max_iter: int = 500,
        tol: float = 1e-6,
        alpha: float = 1e-4,
        fit_intercept: bool = True,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.lr = lr
        self.max_iter = max_iter
        self.tol = tol
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.n_features_: int | None = None
        self.n_iter_: int | None = None

    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        n, d = X.shape
        if sample_weight is None:
            w = np.ones(n)
        else:
            w = np.asarray(sample_weight, dtype=float).ravel()
            if w.shape[0] != n:
                raise ValidationError("sample_weight length mismatch")
            if (w < 0).any():
                raise ValidationError("sample_weight must be non-negative")
            if w.sum() == 0:
                raise ValidationError("sample_weight sums to zero")
        w = w / w.mean()
        self.n_features_ = d
        coef = np.zeros(d)
        intercept = 0.0
        self.n_iter_ = self.max_iter
        for iteration in range(self.max_iter):
            z = X @ coef + intercept
            p = sigmoid(z)
            residual = w * (p - y)
            grad_coef = X.T @ residual / n + self.alpha * coef
            grad_intercept = residual.sum() / n
            coef -= self.lr * grad_coef
            if self.fit_intercept:
                intercept -= self.lr * grad_intercept
            max_grad = max(
                np.max(np.abs(grad_coef)),
                abs(grad_intercept) if self.fit_intercept else 0.0,
            )
            if max_grad < self.tol:
                self.n_iter_ = iteration + 1
                break
        self.coef_ = coef
        self.intercept_ = float(intercept)
        return self

    def set_weights(self, coef, intercept: float) -> "LogisticRegression":
        """Install explicit weights without fitting.

        The weight-extrapolation forecaster predicts future coefficient
        vectors directly and materialises a model through this method.
        """
        coef = np.asarray(coef, dtype=float).ravel()
        if coef.size == 0:
            raise ValidationError("coef must be non-empty")
        self.coef_ = coef
        self.intercept_ = float(intercept)
        self.n_features_ = coef.size
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "coef_")
        X = check_X(X)
        self._check_n_features(X)
        p1 = sigmoid(X @ self.coef_ + self.intercept_)
        return np.column_stack([1.0 - p1, p1])

    def score_gradient(self, x) -> np.ndarray:
        """Return ``∇_x M(x)`` for a single sample.

        For logistic regression the gradient of the positive-class
        probability is ``p (1 - p) w``, pointing in the direction that
        increases the score fastest.
        """
        check_fitted(self, "coef_")
        x = np.asarray(x, dtype=float).ravel()
        if x.size != self.n_features_:
            raise ValidationError(
                f"expected {self.n_features_} features, got {x.size}"
            )
        p = float(sigmoid(np.array([x @ self.coef_ + self.intercept_]))[0])
        return p * (1.0 - p) * self.coef_
