"""Probability calibration (Platt scaling).

Definition II.1 treats ``M(x)`` as *the probability* of the positive
class, and the constraints language exposes it as ``confidence`` that
users reason about directly ("confidence of being APPROVED always exceeds
α").  Bagged forests are notoriously over-confident near 0/1, so a
calibration wrapper is part of a production deployment:

:class:`CalibratedClassifier` fits the base model on one split and a
logistic (sigmoid) map from raw scores to calibrated probabilities on the
held-out split — classic Platt scaling.  The wrapper forwards
``split_thresholds`` / ``score_gradient`` so the candidate search's move
heuristics keep working; note the calibration map is strictly monotone,
so it never changes the *ranking* of candidates, only the confidence
values reported to users and compared against α-style constraints.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseClassifier, as_rng, check_X, check_X_y, check_fitted
from repro.ml.linear import sigmoid

__all__ = ["CalibratedClassifier"]


class CalibratedClassifier(BaseClassifier):
    """Platt-scaled wrapper around any base classifier.

    Parameters
    ----------
    base:
        Unfitted base classifier (fitted by this wrapper on the train
        split).
    holdout:
        Fraction of the data reserved for fitting the calibration map.
    max_iter, lr:
        Gradient-descent budget for the 1-D logistic calibration fit.
    random_state:
        Seeds the train/holdout split.
    """

    def __init__(
        self,
        base: BaseClassifier,
        holdout: float = 0.25,
        max_iter: int = 2_000,
        lr: float = 0.5,
        random_state: int | None = 0,
    ):
        if not 0.0 < holdout < 1.0:
            raise ValidationError("holdout must lie strictly between 0 and 1")
        self.base = base
        self.holdout = holdout
        self.max_iter = max_iter
        self.lr = lr
        self.random_state = random_state
        self.a_: float | None = None
        self.b_: float | None = None
        self.n_features_: int | None = None

    def fit(self, X, y) -> "CalibratedClassifier":
        X, y = check_X_y(X, y)
        rng = as_rng(self.random_state)
        n = X.shape[0]
        n_holdout = max(2, int(round(self.holdout * n)))
        order = rng.permutation(n)
        hold_idx, train_idx = order[:n_holdout], order[n_holdout:]
        if train_idx.size < 2:
            raise ValidationError("not enough samples to split for calibration")
        self.base.fit(X[train_idx], y[train_idx])
        raw = self.base.decision_score(X[hold_idx])
        target = y[hold_idx].astype(float)
        # Platt's smoothing of the targets guards against overfitting the
        # calibration map on small holdouts
        n_pos = target.sum()
        n_neg = target.size - n_pos
        target = np.where(
            target > 0.5,
            (n_pos + 1.0) / (n_pos + 2.0),
            1.0 / (n_neg + 2.0),
        )
        a, b = 1.0, 0.0
        for _ in range(self.max_iter):
            p = sigmoid(a * raw + b)
            grad_common = p - target
            grad_a = float(np.mean(grad_common * raw))
            grad_b = float(np.mean(grad_common))
            a -= self.lr * grad_a
            b -= self.lr * grad_b
            if max(abs(grad_a), abs(grad_b)) < 1e-7:
                break
        # a <= 0 would invert the ranking; clamp to a tiny positive slope
        self.a_ = max(a, 1e-6)
        self.b_ = b
        self.n_features_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "a_")
        X = check_X(X)
        self._check_n_features(X)
        raw = self.base.decision_score(X)
        p1 = sigmoid(self.a_ * raw + self.b_)
        return np.column_stack([1.0 - p1, p1])

    # ---- forwarded capabilities so the move heuristics keep working ----
    # Exposed via __getattr__ so hasattr() reflects the *base* model's
    # capabilities — the candidate search auto-selects proposers by
    # hasattr, and a calibrated forest must not advertise a gradient.

    def __getattr__(self, name: str):
        # self.__dict__ access avoids recursion during unpickling
        base = self.__dict__.get("base")
        if base is not None:
            if name == "split_thresholds" and hasattr(base, "split_thresholds"):
                return base.split_thresholds
            if name == "score_gradient" and hasattr(base, "score_gradient"):
                return self._calibrated_gradient
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _calibrated_gradient(self, x) -> np.ndarray:
        check_fitted(self, "a_")
        x = np.asarray(x, dtype=float).ravel()
        raw = float(self.base.decision_score(x.reshape(1, -1))[0])
        p = float(sigmoid(np.array([self.a_ * raw + self.b_]))[0])
        # chain rule through the calibration sigmoid
        return p * (1.0 - p) * self.a_ * np.asarray(self.base.score_gradient(x))
