"""Feature preprocessing: scalers, encoders and dataset splitting.

These transformers follow the ``fit`` / ``transform`` protocol of
:class:`repro.ml.base.BaseEstimator`.  They are used by the models
generator before training and by the candidate search when measuring
``diff`` in a normalised space.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseEstimator, as_rng, check_X

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "OneHotEncoder",
    "LabelEncoder",
    "train_test_split",
]


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance.

    Constant features get a unit scale so that ``transform`` never divides
    by zero.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = check_X(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = check_X(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValidationError(
                f"StandardScaler fitted on {self.mean_.shape[0]} features,"
                f" got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = check_X(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features to the ``[0, 1]`` range feature-wise."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = check_X(X)
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        X = check_X(X)
        return (X - self.min_) / self.range_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        X = check_X(X)
        return X * self.range_ + self.min_


class OneHotEncoder(BaseEstimator):
    """One-hot encode integer-coded categorical columns.

    ``fit`` learns the category values per column; ``transform`` maps each
    column to ``len(categories)`` indicator columns.  Unknown categories at
    transform time raise unless ``handle_unknown='ignore'`` (all-zero row
    block).
    """

    def __init__(self, handle_unknown: str = "error"):
        if handle_unknown not in ("error", "ignore"):
            raise ValueError("handle_unknown must be 'error' or 'ignore'")
        self.handle_unknown = handle_unknown
        self.categories_: list[np.ndarray] | None = None

    def fit(self, X) -> "OneHotEncoder":
        X = check_X(X)
        self.categories_ = [np.unique(X[:, j]) for j in range(X.shape[1])]
        return self

    def transform(self, X) -> np.ndarray:
        if self.categories_ is None:
            raise NotFittedError("OneHotEncoder is not fitted")
        X = check_X(X)
        if X.shape[1] != len(self.categories_):
            raise ValidationError(
                f"OneHotEncoder fitted on {len(self.categories_)} columns,"
                f" got {X.shape[1]}"
            )
        blocks = []
        for j, cats in enumerate(self.categories_):
            col = X[:, j]
            block = (col[:, None] == cats[None, :]).astype(float)
            known = block.sum(axis=1) > 0
            if not known.all() and self.handle_unknown == "error":
                bad = np.unique(col[~known])
                raise ValidationError(f"unknown categories in column {j}: {bad}")
            blocks.append(block)
        return np.hstack(blocks)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class LabelEncoder(BaseEstimator):
    """Encode arbitrary hashable labels as contiguous integers."""

    def __init__(self):
        self.classes_: list | None = None
        self._index: dict | None = None

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = sorted(set(y))
        self._index = {c: i for i, c in enumerate(self.classes_)}
        return self

    def transform(self, y) -> np.ndarray:
        if self._index is None:
            raise NotFittedError("LabelEncoder is not fitted")
        try:
            return np.array([self._index[v] for v in y], dtype=int)
        except KeyError as exc:
            raise ValidationError(f"unknown label {exc.args[0]!r}") from exc

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> list:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted")
        classes = self.classes_
        return [classes[int(c)] for c in codes]


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    random_state: int | np.random.Generator | None = None,
    stratify: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(X, y)`` into train and test partitions.

    Returns ``(X_train, X_test, y_train, y_test)``.  With ``stratify=True``
    each class contributes proportionally to the test partition (matching
    the overall ``test_size`` as closely as rounding allows).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError("X and y disagree on sample count")
    if not 0.0 < test_size < 1.0:
        raise ValidationError("test_size must lie strictly between 0 and 1")
    rng = as_rng(random_state)
    n = X.shape[0]
    if stratify:
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            take = max(1, int(round(test_size * members.size))) if members.size else 0
            take = min(take, members.size)
            test_idx.extend(members[:take].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]
