"""Classification metrics used across training, forecasting and benchmarks.

All functions accept array-likes and operate on binary problems with labels
in ``{0, 1}``.  Probabilistic metrics (:func:`roc_auc_score`,
:func:`log_loss`, :func:`brier_score`) take positive-class scores in
``[0, 1]``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "roc_curve",
    "roc_auc_score",
    "log_loss",
    "brier_score",
    "classification_report",
]


def _check_binary(y_true, y_pred=None) -> tuple[np.ndarray, np.ndarray | None]:
    y_true = np.asarray(y_true).astype(int).ravel()
    if y_true.size == 0:
        raise ValidationError("y_true is empty")
    if not np.isin(np.unique(y_true), (0, 1)).all():
        raise ValidationError("y_true must contain only 0/1 labels")
    if y_pred is None:
        return y_true, None
    y_pred = np.asarray(y_pred).ravel()
    if y_pred.shape != y_true.shape:
        raise ValidationError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly-matching labels."""
    y_true, y_pred = _check_binary(y_true, y_pred)
    return float(np.mean(y_true == y_pred.astype(int)))


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """Return ``[[tn, fp], [fn, tp]]``."""
    y_true, y_pred = _check_binary(y_true, y_pred)
    y_pred = y_pred.astype(int)
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    return np.array([[tn, fp], [fn, tp]])


def precision_score(y_true, y_pred, *, zero_division: float = 0.0) -> float:
    """tp / (tp + fp); ``zero_division`` when no positive predictions."""
    cm = confusion_matrix(y_true, y_pred)
    tp, fp = cm[1, 1], cm[0, 1]
    if tp + fp == 0:
        return zero_division
    return tp / (tp + fp)


def recall_score(y_true, y_pred, *, zero_division: float = 0.0) -> float:
    """tp / (tp + fn); ``zero_division`` when no true positives exist."""
    cm = confusion_matrix(y_true, y_pred)
    tp, fn = cm[1, 1], cm[1, 0]
    if tp + fn == 0:
        return zero_division
    return tp / (tp + fn)


def f1_score(y_true, y_pred, *, zero_division: float = 0.0) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred, zero_division=zero_division)
    r = recall_score(y_true, y_pred, zero_division=zero_division)
    if p + r == 0:
        return zero_division
    return 2 * p * r / (p + r)


def roc_curve(y_true, y_score) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(fpr, tpr, thresholds)`` sorted by decreasing threshold."""
    y_true, y_score = _check_binary(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    y_true = y_true[order]
    y_score = y_score[order]
    # keep only points where the threshold changes
    distinct = np.where(np.diff(y_score))[0]
    idx = np.r_[distinct, y_true.size - 1]
    tps = np.cumsum(y_true)[idx]
    fps = (1 + idx) - tps
    n_pos = y_true.sum()
    n_neg = y_true.size - n_pos
    tpr = tps / n_pos if n_pos else np.zeros_like(tps, dtype=float)
    fpr = fps / n_neg if n_neg else np.zeros_like(fps, dtype=float)
    tpr = np.r_[0.0, tpr]
    fpr = np.r_[0.0, fpr]
    thresholds = np.r_[np.inf, y_score[idx]]
    return fpr, tpr, thresholds


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve (probability a positive outranks a negative).

    Uses the rank statistic (equivalent to the Mann-Whitney U), which
    handles ties by midranking.  Raises when only one class is present.
    """
    y_true, y_score = _check_binary(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("roc_auc_score requires both classes present")
    order = np.argsort(y_score, kind="stable")
    ranks = np.empty_like(order, dtype=float)
    sorted_scores = y_score[order]
    # midranks for ties
    i = 0
    rank = 1.0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (rank + rank + (j - i)) / 2.0
        rank += j - i + 1
        i = j + 1
    rank_sum = ranks[y_true == 1].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def log_loss(y_true, y_score, *, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of the true labels under ``y_score``."""
    y_true, y_score = _check_binary(y_true, y_score)
    p = np.clip(y_score, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))


def brier_score(y_true, y_score) -> float:
    """Mean squared error between labels and scores (lower is better)."""
    y_true, y_score = _check_binary(y_true, y_score)
    return float(np.mean((y_score - y_true) ** 2))


def classification_report(y_true, y_pred) -> str:
    """Return a small human-readable report (accuracy, P/R/F1, confusion)."""
    cm = confusion_matrix(y_true, y_pred)
    lines = [
        f"accuracy : {accuracy_score(y_true, y_pred):.4f}",
        f"precision: {precision_score(y_true, y_pred):.4f}",
        f"recall   : {recall_score(y_true, y_pred):.4f}",
        f"f1       : {f1_score(y_true, y_pred):.4f}",
        f"confusion: tn={cm[0, 0]} fp={cm[0, 1]} fn={cm[1, 0]} tp={cm[1, 1]}",
    ]
    return "\n".join(lines)
