"""Gradient-boosted trees (extension model class).

The paper notes its framework "can be easily generalized" beyond the demo
configuration; boosting exercises that claim: it satisfies Definition II.1
and the candidate search's threshold-move heuristic (the ensemble exposes
``split_thresholds`` like the forest does), while having a very different
score surface from bagged forests.

Implements classic binomial-deviance gradient boosting: regression trees
fit to the negative gradient (residuals) of the log-loss, with a shrinkage
``learning_rate`` and optional stochastic row subsampling.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, as_rng, check_X, check_X_y, check_fitted
from repro.ml.linear import sigmoid

__all__ = ["GradientBoostingClassifier"]


class _RegressionTreeNode:
    __slots__ = ("feature", "threshold", "left", "right", "value", "depth")

    def __init__(self, value: float, depth: int):
        self.feature: int | None = None
        self.threshold: float | None = None
        self.left: "_RegressionTreeNode | None" = None
        self.right: "_RegressionTreeNode | None" = None
        self.value = value
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class _RegressionTree:
    """Small variance-reducing regression tree used as the boosting base."""

    def __init__(self, max_depth: int, min_samples_leaf: int, rng: np.random.Generator):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.rng = rng
        self.root: _RegressionTreeNode | None = None

    def fit(self, X: np.ndarray, residuals: np.ndarray, hessian: np.ndarray) -> None:
        self.root = self._grow(X, residuals, hessian, depth=0)

    def _leaf_value(self, residuals: np.ndarray, hessian: np.ndarray) -> float:
        # Newton step for binomial deviance: sum(residual) / sum(p(1-p))
        denom = hessian.sum()
        if denom < 1e-12:
            return 0.0
        return float(residuals.sum() / denom)

    def _grow(
        self, X: np.ndarray, residuals: np.ndarray, hessian: np.ndarray, depth: int
    ) -> _RegressionTreeNode:
        node = _RegressionTreeNode(self._leaf_value(residuals, hessian), depth)
        n = residuals.size
        if depth >= self.max_depth or n < 2 * self.min_samples_leaf:
            return node
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        total_sum = residuals.sum()
        total_sq = np.sum(residuals**2)
        parent_sse = total_sq - total_sum**2 / n
        for feature in range(X.shape[1]):
            col = X[:, feature]
            order = np.argsort(col, kind="stable")
            col_sorted = col[order]
            res_sorted = residuals[order]
            diff = np.nonzero(np.diff(col_sorted))[0]
            if diff.size == 0:
                continue
            left_n = diff + 1
            right_n = n - left_n
            valid = (left_n >= self.min_samples_leaf) & (
                right_n >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            cum = np.cumsum(res_sorted)
            cum_sq = np.cumsum(res_sorted**2)
            left_sum = cum[diff]
            left_sq = cum_sq[diff]
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            sse = (
                left_sq
                - left_sum**2 / left_n
                + right_sq
                - right_sum**2 / right_n
            )
            sse[~valid] = np.inf
            idx = int(np.argmin(sse))
            gain = parent_sse - sse[idx]
            if gain > best_gain:
                best_gain = gain
                lo = col_sorted[diff[idx]]
                hi = col_sorted[diff[idx] + 1]
                best = (feature, float((lo + hi) / 2.0))
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], residuals[mask], hessian[mask], depth + 1)
        node.right = self._grow(X[~mask], residuals[~mask], hessian[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def split_thresholds(self) -> dict[int, set[float]]:
        found: dict[int, set[float]] = {}
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None or node.is_leaf:
                continue
            found.setdefault(node.feature, set()).add(node.threshold)
            stack.append(node.left)
            stack.append(node.right)
        return found


class GradientBoostingClassifier(BaseClassifier):
    """Binomial-deviance gradient boosting over shallow regression trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of each base regression tree.
    min_samples_leaf:
        Minimum samples per leaf of the base trees.
    subsample:
        Row fraction sampled (without replacement) per round; 1.0 disables
        stochastic boosting.
    random_state:
        Seeds row subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.trees_: list[_RegressionTree] | None = None
        self.init_raw_: float | None = None
        self.n_features_: int | None = None
        self.train_deviance_: list[float] | None = None

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X, y = check_X_y(X, y)
        n, d = X.shape
        self.n_features_ = d
        rng = as_rng(self.random_state)
        pos_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self.init_raw_ = float(np.log(pos_rate / (1 - pos_rate)))
        raw = np.full(n, self.init_raw_)
        self.trees_ = []
        self.train_deviance_ = []
        for _ in range(self.n_estimators):
            p = sigmoid(raw)
            residuals = y - p
            hessian = p * (1 - p)
            if self.subsample < 1.0:
                take = max(2 * self.min_samples_leaf, int(self.subsample * n))
                idx = rng.choice(n, size=min(take, n), replace=False)
            else:
                idx = np.arange(n)
            tree = _RegressionTree(self.max_depth, self.min_samples_leaf, rng)
            tree.fit(X[idx], residuals[idx], hessian[idx])
            raw += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
            p_now = np.clip(sigmoid(raw), 1e-12, 1 - 1e-12)
            deviance = -np.mean(y * np.log(p_now) + (1 - y) * np.log(1 - p_now))
            self.train_deviance_.append(float(deviance))
        return self

    def _raw_score(self, X: np.ndarray) -> np.ndarray:
        raw = np.full(X.shape[0], self.init_raw_)
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "trees_")
        X = check_X(X)
        self._check_n_features(X)
        p1 = sigmoid(self._raw_score(X))
        return np.column_stack([1.0 - p1, p1])

    def split_thresholds(self) -> dict[int, np.ndarray]:
        """Union of split thresholds across all boosting trees, sorted."""
        check_fitted(self, "trees_")
        merged: dict[int, set[float]] = {}
        for tree in self.trees_:
            for feature, values in tree.split_thresholds().items():
                merged.setdefault(feature, set()).update(values)
        return {
            feature: np.array(sorted(values)) for feature, values in merged.items()
        }
