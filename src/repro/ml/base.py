"""Estimator protocol and shared estimator machinery.

The paper's Definition II.1 models a classifier as a function
``M : R^d -> [0, 1]`` returning the probability of the desired positive
class.  Every estimator in :mod:`repro.ml` implements this contract via
:meth:`BaseClassifier.predict_proba` (column 1 of the returned matrix) and
:meth:`BaseClassifier.decision_score`.

Estimators follow the familiar ``fit`` / ``predict`` idiom.  They are
deliberately sklearn-compatible in spirit (``get_params`` / ``set_params``,
``random_state`` seeding) without depending on sklearn, which is not
available in this environment.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

from repro.exceptions import NotFittedError, ValidationError

__all__ = [
    "BaseEstimator",
    "BaseClassifier",
    "check_fitted",
    "check_X",
    "check_X_y",
    "as_rng",
]


def as_rng(random_state: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for ``random_state``.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed, or
    an existing generator (returned unchanged so that callers can share a
    stream).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def check_X(X: Any, *, name: str = "X") -> np.ndarray:
    """Validate and convert a 2-D feature matrix to ``float64``.

    Raises :class:`ValidationError` for ragged, empty, non-numeric or
    non-finite input.  A single sample may be passed as a 1-D vector and is
    reshaped to ``(1, d)``.
    """
    try:
        arr = np.asarray(X, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not numeric: {exc}") from exc
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValidationError(f"{name} is empty with shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix together with a binary label vector."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValidationError(f"y must be 1-D, got ndim={y.ndim}")
    if y.shape[0] != X.shape[0]:
        raise ValidationError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    try:
        y = y.astype(int)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"y is not integer-like: {exc}") from exc
    labels = np.unique(y)
    if not np.isin(labels, (0, 1)).all():
        raise ValidationError(f"y must be binary in {{0, 1}}, got labels {labels}")
    return X, y


def check_fitted(estimator: "BaseEstimator", attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` exists on ``estimator``."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted; call fit() first"
        )


class BaseEstimator:
    """Parameter-introspection base shared by every estimator.

    Constructor arguments are treated as hyper-parameters: they are
    discoverable through :meth:`get_params`, updatable through
    :meth:`set_params`, and define ``repr`` output.  Attributes learned
    during ``fit`` use a trailing underscore (``n_features_``,
    ``trees_``, ...), mirroring the sklearn convention.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, parameter in signature.parameters.items()
            if name != "self"
            and parameter.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        ]

    def get_params(self) -> dict[str, Any]:
        """Return the estimator's hyper-parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Update hyper-parameters in place; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"unknown parameter {name!r} for {type(self).__name__};"
                    f" valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def clone(self) -> "BaseEstimator":
        """Return an unfitted copy with identical hyper-parameters."""
        return type(self)(**copy.deepcopy(self.get_params()))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class BaseClassifier(BaseEstimator):
    """Binary probabilistic classifier implementing Definition II.1.

    Subclasses must implement :meth:`fit` and :meth:`predict_proba`.  The
    positive-class score ``M(x)`` of the paper is
    ``predict_proba(X)[:, 1]``, exposed directly as
    :meth:`decision_score`.
    """

    #: learned during fit: number of input features d
    n_features_: int | None = None

    def fit(self, X: Any, y: Any) -> "BaseClassifier":
        raise NotImplementedError

    def predict_proba(self, X: Any) -> np.ndarray:
        """Return an ``(n, 2)`` matrix of class probabilities."""
        raise NotImplementedError

    def decision_score(self, X: Any) -> np.ndarray:
        """Return ``M(x)`` — probability of the positive class, shape ``(n,)``."""
        return self.predict_proba(X)[:, 1]

    def predict(self, X: Any, threshold: float = 0.5) -> np.ndarray:
        """Return hard 0/1 labels by thresholding the positive-class score."""
        return (self.decision_score(X) > threshold).astype(int)

    def score(self, X: Any, y: Any) -> float:
        """Return plain accuracy on ``(X, y)``."""
        X, y = check_X_y(X, y)
        return float(np.mean(self.predict(X) == y))

    def _check_n_features(self, X: np.ndarray) -> None:
        check_fitted(self, "n_features_")
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"{type(self).__name__} was fitted with {self.n_features_} features"
                f" but got {X.shape[1]}"
            )
