"""Random-forest classifier — the paper's model class.

The original demo trains one H2O random forest per future time span
(§III).  This implementation bags :class:`repro.ml.tree.DecisionTreeClassifier`
base learners over bootstrap resamples with per-split feature subsampling,
and averages leaf probabilities (soft voting), so that the forest is a
smooth-ish ``M : R^d -> [0, 1]`` scorer as required by Definition II.1.

The forest also aggregates the split thresholds of its trees
(:meth:`RandomForestClassifier.split_thresholds`), which drive the
threshold-crossing move proposer of the candidates generator.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, as_rng, check_X, check_X_y, check_fitted
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated CART forest with soft probability voting.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, criterion:
        Passed through to each tree.
    max_features:
        Per-split feature subsample; defaults to ``'sqrt'`` as is standard
        for classification forests.
    bootstrap:
        Draw each tree's training set with replacement (size n).  When
        false every tree sees the full data and differs only through
        feature subsampling.
    oob_score:
        When true (and ``bootstrap``), compute the out-of-bag accuracy
        estimate ``oob_score_`` after fitting.
    random_state:
        Seeds bootstrap draws and per-tree feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 25,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] | None = None
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None
        self.oob_score_: float | None = None

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        self._split_thresholds_cache = None
        n, d = X.shape
        self.n_features_ = d
        rng = as_rng(self.random_state)
        self.trees_ = []
        oob_votes = np.zeros(n)
        oob_counts = np.zeros(n)
        importances = np.zeros(d)
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
            importances += tree.feature_importances_
            if self.bootstrap and self.oob_score:
                oob_mask = np.ones(n, dtype=bool)
                oob_mask[np.unique(idx)] = False
                if oob_mask.any():
                    oob_votes[oob_mask] += tree.decision_score(X[oob_mask])
                    oob_counts[oob_mask] += 1
        self.feature_importances_ = importances / self.n_estimators
        if self.bootstrap and self.oob_score:
            seen = oob_counts > 0
            if seen.any():
                pred = (oob_votes[seen] / oob_counts[seen]) > 0.5
                self.oob_score_ = float(np.mean(pred.astype(int) == y[seen]))
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "trees_")
        X = check_X(X)
        self._check_n_features(X)
        scores = np.zeros(X.shape[0])
        for tree in self.trees_:
            scores += tree.decision_score(X)
        p1 = scores / len(self.trees_)
        return np.column_stack([1.0 - p1, p1])

    def split_thresholds(self) -> dict[int, np.ndarray]:
        """Union of per-feature split thresholds across all trees, sorted.

        Memoized: the forest is walked once per fit, not once per
        candidates generator (the multi-user service builds one
        generator per (user, time point) against the same model).
        """
        check_fitted(self, "trees_")
        cached = getattr(self, "_split_thresholds_cache", None)
        if cached is None:
            merged: dict[int, set[float]] = {}
            for tree in self.trees_:
                for feature, thresholds in tree.split_thresholds().items():
                    merged.setdefault(feature, set()).update(thresholds.tolist())
            cached = {
                feature: np.array(sorted(values))
                for feature, values in merged.items()
            }
            for values in cached.values():
                values.setflags(write=False)
            self._split_thresholds_cache = cached
        # shallow copy + read-only arrays: callers may filter/pop entries,
        # and in-place array mutation raises instead of corrupting the
        # cache shared by every generator
        return dict(cached)

    def n_nodes(self) -> int:
        """Total node count across all trees (size diagnostic)."""
        check_fitted(self, "trees_")
        return sum(tree.n_nodes_ for tree in self.trees_)
