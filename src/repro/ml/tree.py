"""CART decision-tree classifier.

This is the base learner of the paper's model class (H2O random forests in
the original demo).  Beyond ``fit``/``predict_proba`` the tree exposes its
internal structure — :meth:`DecisionTreeClassifier.decision_path` and
:meth:`DecisionTreeClassifier.split_thresholds` — because the
candidate-generation heuristic of Deutch & Frost proposes moves that cross
specific split thresholds (see :mod:`repro.core.moves`).

Splits are axis-aligned ``x[feature] <= threshold`` tests chosen to
maximise impurity decrease (Gini by default, entropy optional).  Split
finding is vectorised over candidate thresholds per feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseClassifier, as_rng, check_X, check_X_y

__all__ = ["TreeNode", "DecisionTreeClassifier"]


@dataclass
class TreeNode:
    """A node of a fitted decision tree.

    Leaves have ``feature is None`` and carry the class distribution of the
    training samples that reached them.  Internal nodes route samples with
    ``x[feature] <= threshold`` to ``left`` and the rest to ``right``.
    """

    n_samples: int
    value: np.ndarray  # class counts, shape (2,)
    impurity: float
    depth: int
    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    node_id: int = field(default=-1)

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    @property
    def probability(self) -> float:
        """Positive-class probability estimate at this node."""
        total = self.value.sum()
        if total == 0:
            return 0.5
        return float(self.value[1] / total)

    def iter_nodes(self) -> Iterator["TreeNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        if self.left is not None:
            yield from self.left.iter_nodes()
        if self.right is not None:
            yield from self.right.iter_nodes()


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    p = p[p > 0]
    return float(-np.sum(p * np.log2(p)))


_IMPURITY = {"gini": _gini, "entropy": _entropy}


class DecisionTreeClassifier(BaseClassifier):
    """Binary CART classifier.

    Parameters
    ----------
    criterion:
        ``'gini'`` or ``'entropy'``.
    max_depth:
        Maximum tree depth; ``None`` grows until pure or until
        ``min_samples_split`` stops growth.
    min_samples_split:
        Minimum number of samples a node needs to be considered for a split.
    min_samples_leaf:
        Minimum number of samples each child of a split must retain.
    max_features:
        Number of features examined per split: ``None`` (all), an int, a
        float fraction, or ``'sqrt'`` — random forests pass ``'sqrt'``.
    random_state:
        Seeds the feature subsampling.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ):
        if criterion not in _IMPURITY:
            raise ValueError(f"criterion must be one of {sorted(_IMPURITY)}")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: TreeNode | None = None
        self.n_features_: int | None = None
        self.n_nodes_: int | None = None
        self.feature_importances_: np.ndarray | None = None
        self._flat: tuple[np.ndarray, ...] | None = None

    # ------------------------------------------------------------------ fit

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        self.n_features_ = X.shape[1]
        self._rng = as_rng(self.random_state)
        self._impurity = _IMPURITY[self.criterion]
        importances = np.zeros(self.n_features_)
        self.root_ = self._grow(X, y, depth=0, importances=importances)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        self.n_nodes_ = self._assign_ids()
        self._flat = None
        return self

    def _n_split_features(self) -> int:
        d = self.n_features_
        mf = self.max_features
        if mf is None:
            return d
        if mf == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(mf * d))
        if isinstance(mf, int):
            if not 1 <= mf <= d:
                raise ValueError(f"int max_features must be in [1, {d}]")
            return mf
        raise ValueError(f"unsupported max_features: {mf!r}")

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, importances: np.ndarray
    ) -> TreeNode:
        counts = np.bincount(y, minlength=2).astype(float)
        node = TreeNode(
            n_samples=y.size,
            value=counts,
            impurity=self._impurity(counts),
            depth=depth,
        )
        if (
            node.impurity == 0.0
            or y.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        importances[feature] += gain * y.size
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, importances)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, importances)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Return ``(feature, threshold, impurity_gain)`` or ``None``."""
        n = y.size
        parent_impurity = self._impurity(np.bincount(y, minlength=2).astype(float))
        features = np.arange(self.n_features_)
        k = self._n_split_features()
        if k < self.n_features_:
            features = self._rng.choice(features, size=k, replace=False)
        best: tuple[int, float, float] | None = None
        use_gini = self.criterion == "gini"
        for feature in features:
            col = X[:, feature]
            order = np.argsort(col, kind="stable")
            col_sorted = col[order]
            y_sorted = y[order]
            # candidate split positions: where consecutive values differ
            diff = np.nonzero(np.diff(col_sorted))[0]
            if diff.size == 0:
                continue
            # left sizes are diff + 1
            left_n = diff + 1
            right_n = n - left_n
            valid = (left_n >= self.min_samples_leaf) & (
                right_n >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            pos_cum = np.cumsum(y_sorted)
            left_pos = pos_cum[diff].astype(float)
            left_neg = left_n - left_pos
            total_pos = pos_cum[-1]
            right_pos = total_pos - left_pos
            right_neg = right_n - right_pos
            if use_gini:
                left_imp = 1.0 - (
                    (left_pos / left_n) ** 2 + (left_neg / left_n) ** 2
                )
                right_imp = 1.0 - (
                    (right_pos / right_n) ** 2 + (right_neg / right_n) ** 2
                )
            else:
                left_imp = _entropy_vec(left_pos, left_neg)
                right_imp = _entropy_vec(right_pos, right_neg)
            weighted = (left_n * left_imp + right_n * right_imp) / n
            weighted[~valid] = np.inf
            best_idx = int(np.argmin(weighted))
            gain = parent_impurity - weighted[best_idx]
            if gain <= 1e-12:
                continue
            lo = col_sorted[diff[best_idx]]
            hi = col_sorted[diff[best_idx] + 1]
            threshold = (lo + hi) / 2.0
            if best is None or gain > best[2]:
                best = (int(feature), float(threshold), float(gain))
        return best

    def _assign_ids(self) -> int:
        next_id = 0
        for node in self.root_.iter_nodes():
            node.node_id = next_id
            next_id += 1
        return next_id

    # -------------------------------------------------------------- predict

    def _leaf_for(self, x: np.ndarray) -> TreeNode:
        node = self.root_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def _flat_tree(self) -> tuple[np.ndarray, ...]:
        """Array form of the fitted tree for vectorized prediction.

        ``feature[i] == -1`` marks node ``i`` as a leaf.  Probabilities
        use the exact :attr:`TreeNode.probability` formula, so batched
        prediction is bit-identical to node-walk prediction.
        """
        # getattr: objects unpickled from pre-batch saves lack the slot
        if getattr(self, "_flat", None) is None:
            n = self.n_nodes_
            feature = np.full(n, -1, dtype=np.int64)
            threshold = np.zeros(n)
            left = np.zeros(n, dtype=np.int64)
            right = np.zeros(n, dtype=np.int64)
            prob = np.zeros(n)
            for node in self.root_.iter_nodes():
                i = node.node_id
                prob[i] = node.probability
                if not node.is_leaf:
                    feature[i] = node.feature
                    threshold[i] = node.threshold
                    left[i] = node.left.node_id
                    right[i] = node.right.node_id
            self._flat = (feature, threshold, left, right, prob)
        return self._flat

    def predict_proba(self, X) -> np.ndarray:
        X = check_X(X)
        self._check_n_features(X)
        feature, threshold, left, right, prob = self._flat_tree()
        position = np.zeros(X.shape[0], dtype=np.int64)
        # level-wise descent: one vectorized step routes every sample that
        # is still at an internal node
        active = np.flatnonzero(feature[position] >= 0)
        while active.size:
            current = position[active]
            go_left = (
                X[active, feature[current]] <= threshold[current]
            )
            position[active] = np.where(go_left, left[current], right[current])
            active = active[feature[position[active]] >= 0]
        p1 = prob[position]
        return np.column_stack([1.0 - p1, p1])

    # ---------------------------------------------------------- introspection

    def decision_path(self, x) -> list[TreeNode]:
        """Return the root-to-leaf node sequence for a single sample."""
        x = np.asarray(x, dtype=float).ravel()
        if self.root_ is None:
            raise ValidationError("tree is not fitted")
        if x.size != self.n_features_:
            raise ValidationError(
                f"expected {self.n_features_} features, got {x.size}"
            )
        path = []
        node = self.root_
        while True:
            path.append(node)
            if node.is_leaf:
                return path
            node = node.left if x[node.feature] <= node.threshold else node.right

    def split_thresholds(self) -> dict[int, np.ndarray]:
        """Return ``{feature: sorted unique thresholds}`` over the whole tree.

        These are exactly the decision boundaries of the tree along each
        axis; the candidate search perturbs features just across them.
        """
        if self.root_ is None:
            raise ValidationError("tree is not fitted")
        per_feature: dict[int, set[float]] = {}
        for node in self.root_.iter_nodes():
            if not node.is_leaf:
                per_feature.setdefault(node.feature, set()).add(node.threshold)
        return {
            feature: np.array(sorted(values))
            for feature, values in per_feature.items()
        }

    def depth(self) -> int:
        """Return the maximum depth of the fitted tree (root = 0)."""
        if self.root_ is None:
            raise ValidationError("tree is not fitted")
        return max(node.depth for node in self.root_.iter_nodes())

    def leaves(self) -> list[TreeNode]:
        """Return all leaf nodes."""
        if self.root_ is None:
            raise ValidationError("tree is not fitted")
        return [node for node in self.root_.iter_nodes() if node.is_leaf]


def _entropy_vec(pos: np.ndarray, neg: np.ndarray) -> np.ndarray:
    total = pos + neg
    with np.errstate(divide="ignore", invalid="ignore"):
        pp = np.where(total > 0, pos / total, 0.0)
        pn = np.where(total > 0, neg / total, 0.0)
        term_p = np.where(pp > 0, -pp * np.log2(pp), 0.0)
        term_n = np.where(pn > 0, -pn * np.log2(pn), 0.0)
    return term_p + term_n
