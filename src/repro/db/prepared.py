"""Prepared-statement layer for the Figure-2 canned queries.

Every canned query used to rebuild its SQL text per call — f-string
interpolation of the dialect placeholder, identifier validation, the
works — which is pure waste on a serving tier answering the same six
questions millions of times.  :class:`PreparedQueries` compiles each
query **once per (dialect placeholder, feature schema)** and exposes
bind-per-call methods; :func:`prepared_for` memoises instances so every
caller in the process shares one compiled set.

Two layers of reuse stack here:

* the SQL *text* is built once (this module), and
* sqlite3 itself caches the compiled statement per connection keyed on
  that text (``cached_statements``, default 128) — stable text means
  the serving tier's replica connections never re-parse the SQL either.

Queries take a ``read`` callable (``read(sql, params) -> rows``) rather
than a store, so the same compiled set serves
:class:`~repro.db.store.CandidateStore` (via :mod:`repro.db.queries`),
the serving tier's read-only replica connections
(:class:`~repro.serve.pool.ReplicaStoreView`), and anything else that
can execute SQL.  Validation semantics (feature names, ``alpha`` and
``budget`` ranges) are owned here so no two callers can diverge.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.exceptions import QueryError

__all__ = ["PreparedQueries", "prepared_for", "row_to_dict"]

#: ``diff = 0`` tolerance — diff is a float computed in a scaled space.
_DIFF_EPS = 1e-9

#: Aggregates the per-time-point series query accepts (the graphic
#: insights of Figure 3b); a whitelist because the aggregate is
#: interpolated into SQL text.
_SERIES_AGGREGATES = ("MAX(p)", "MIN(diff)", "MIN(gap)", "COUNT(*)")

Reader = Callable[..., list]


def row_to_dict(row) -> dict[str, Any]:
    """Convert a sqlite3.Row (or mapping-like row) to a plain dict."""
    return {key: row[key] for key in row.keys()}


class PreparedQueries:
    """Q1–Q7 (and their helper queries) compiled once per dialect.

    Parameters
    ----------
    placeholder:
        The dialect's bind-parameter marker
        (:meth:`~repro.db.backends.StoreBackend.placeholder`).
    feature_names:
        Schema feature names, used to validate Q3's feature argument
        before it is interpolated as an identifier.
    """

    __slots__ = (
        "placeholder",
        "features",
        "_sql",
        "_feature_sql",
        "_series_sql",
        "_age_sql",
    )

    def __init__(self, placeholder: str, feature_names) -> None:
        ph = placeholder
        self.placeholder = ph
        self.features = tuple(str(name) for name in feature_names)
        self._sql = {
            "q1": (
                "SELECT MIN(time) AS t FROM candidates"
                f" WHERE user_id = {ph} AND diff <= {ph}"
            ),
            "q2": (
                f"SELECT * FROM candidates WHERE user_id = {ph}"
                " ORDER BY gap, diff, p DESC LIMIT 1"
            ),
            "q4": (
                f"SELECT * FROM candidates WHERE user_id = {ph}"
                " ORDER BY diff, gap, p DESC LIMIT 1"
            ),
            "q5": (
                f"SELECT * FROM candidates WHERE user_id = {ph}"
                " ORDER BY p DESC, diff LIMIT 1"
            ),
            # Q6's universal quantification as a double NOT EXISTS
            # (Figure 2 uses the non-portable ``>= ALL``); named binds —
            # every DB-API paramstyle family supports dict binding
            "q6": """
                SELECT MIN(ti.time) AS t
                FROM temporal_inputs ti
                WHERE ti.user_id = :user
                  AND NOT EXISTS (
                      SELECT 1
                      FROM temporal_inputs t2
                      WHERE t2.user_id = :user
                        AND t2.time >= ti.time
                        AND NOT EXISTS (
                            SELECT 1
                            FROM candidates c
                            WHERE c.user_id = :user
                              AND c.time = t2.time
                              AND c.p > :alpha
                        )
                  )
                """,
            "q7": (
                "SELECT * FROM candidates"
                f" WHERE user_id = {ph} AND diff <= {ph}"
                " ORDER BY time, diff, p DESC LIMIT 1"
            ),
            "times": (
                "SELECT DISTINCT time FROM temporal_inputs"
                f" WHERE user_id = {ph} ORDER BY time"
            ),
            "ledger": (
                "SELECT time, model_fp FROM temporal_inputs"
                f" WHERE user_id = {ph} ORDER BY time"
            ),
            "input": (
                "SELECT * FROM temporal_inputs"
                f" WHERE user_id = {ph} AND time = {ph}"
            ),
            "oldest_stamp": (
                "SELECT MIN(refreshed_at) AS oldest FROM temporal_inputs"
                f" WHERE user_id = {ph}"
            ),
            # one cell's stored diverse plan set in selection order; rows
            # with plan_rank < 0 (legacy databases) carry no set
            "plan_set": (
                "SELECT * FROM candidates"
                f" WHERE user_id = {ph} AND time = {ph} AND plan_rank >= 0"
                f" ORDER BY plan_rank, id LIMIT {ph}"
            ),
        }
        #: per-feature SQL (Q3 and its plan lookup) built on first use
        self._feature_sql: dict[str, tuple[str, str]] = {}
        #: per-aggregate series SQL built on first use
        self._series_sql: dict[str, str] = {}
        #: per-clock-expression freshness SQL built on first use (the
        #: clock expression is backend-owned, not part of this cache key)
        self._age_sql: dict[str, str] = {}

    # ---------------------------------------------------------- helpers

    def _require_feature(self, feature: str) -> None:
        if feature not in self.features:
            raise QueryError(
                f"unknown feature {feature!r}; schema has {list(self.features)}"
            )

    def _feature_pair(self, feature: str) -> tuple[str, str]:
        """(q3 SQL, single-feature plan-row SQL) for one feature —
        identifier-validated once, compiled once."""
        self._require_feature(feature)
        pair = self._feature_sql.get(feature)
        if pair is None:
            ph = self.placeholder
            q3 = f"""
                SELECT DISTINCT c.time AS t
                FROM candidates c
                WHERE c.user_id = :user AND EXISTS (
                    SELECT 1
                    FROM candidates cnd
                    INNER JOIN temporal_inputs ti
                        ON ti.time = cnd.time AND ti.user_id = cnd.user_id
                    WHERE cnd.user_id = :user
                      AND cnd.time = c.time
                      AND (cnd.gap = 0
                           OR (cnd.gap = 1 AND cnd.{feature} != ti.{feature}))
                )
                ORDER BY t
                """
            plan = f"""
                SELECT c.* FROM candidates c
                INNER JOIN temporal_inputs ti
                    ON ti.user_id = c.user_id AND ti.time = c.time
                WHERE c.user_id = {ph} AND c.time = {ph}
                  AND (c.gap = 0 OR (c.gap = 1 AND c.{feature} != ti.{feature}))
                ORDER BY c.diff LIMIT 1
                """
            pair = (q3, plan)
            self._feature_sql[feature] = pair
        return pair

    # --------------------------------------------------------- questions

    def q1(self, read: Reader, user_id: str) -> int | None:
        rows = read(self._sql["q1"], (user_id, _DIFF_EPS))
        value = rows[0]["t"]
        return None if value is None else int(value)

    def q2(self, read: Reader, user_id: str) -> dict[str, Any] | None:
        rows = read(self._sql["q2"], (user_id,))
        return row_to_dict(rows[0]) if rows else None

    def q3(
        self, read: Reader, user_id: str, feature: str, all_times
    ) -> dict[str, Any]:
        sql, _ = self._feature_pair(feature)
        rows = read(sql, {"user": user_id})
        times = [int(r["t"]) for r in rows]
        all_times = list(all_times)
        return {
            "times": times,
            "all_times": all_times,
            "dominant": bool(all_times) and set(times) == set(all_times),
        }

    def q3_plan_rows(
        self, read: Reader, user_id: str, feature: str, times
    ) -> list[dict[str, Any]]:
        """Best single-feature (or zero-change) candidate per covered time."""
        _, sql = self._feature_pair(feature)
        rows = []
        for t in times:
            got = read(sql, (user_id, int(t)))
            if got:
                rows.append(row_to_dict(got[0]))
        return rows

    def q4(self, read: Reader, user_id: str) -> dict[str, Any] | None:
        rows = read(self._sql["q4"], (user_id,))
        return row_to_dict(rows[0]) if rows else None

    def q5(self, read: Reader, user_id: str) -> dict[str, Any] | None:
        rows = read(self._sql["q5"], (user_id,))
        return row_to_dict(rows[0]) if rows else None

    def q6(self, read: Reader, user_id: str, alpha: float) -> int | None:
        if not 0.0 <= alpha <= 1.0:
            raise QueryError("alpha must lie in [0, 1]")
        rows = read(self._sql["q6"], {"user": user_id, "alpha": alpha})
        value = rows[0]["t"]
        return None if value is None else int(value)

    def q7(
        self, read: Reader, user_id: str, budget: float
    ) -> dict[str, Any] | None:
        if budget < 0:
            raise QueryError("budget must be non-negative")
        rows = read(self._sql["q7"], (user_id, float(budget)))
        return row_to_dict(rows[0]) if rows else None

    def plan_set(
        self, read: Reader, user_id: str, time: int, k: int
    ) -> list[dict[str, Any]]:
        """The top-``k`` prefix of one cell's stored diverse plan set.

        Rows come back in greedy selection order (``plan_rank``).  Cells
        written before plan-set metadata existed have no ranked rows and
        return ``[]`` — callers fall back to the single-plan view.
        """
        if k < 1:
            raise QueryError("plan count must be >= 1")
        rows = read(self._sql["plan_set"], (user_id, int(time), int(k)))
        return [row_to_dict(r) for r in rows]

    # ----------------------------------------------------------- helpers

    def series(
        self, read: Reader, user_id: str, aggregate: str
    ) -> list:
        """Per-time-point aggregate rows (the Figure-3b series data)."""
        sql = self._series_sql.get(aggregate)
        if sql is None:
            if aggregate not in _SERIES_AGGREGATES:
                raise QueryError(
                    f"unknown series aggregate {aggregate!r};"
                    f" choose from {_SERIES_AGGREGATES}"
                )
            sql = (
                f"SELECT time, {aggregate} AS v FROM candidates"
                f" WHERE user_id = {self.placeholder} GROUP BY time"
            )
            self._series_sql[aggregate] = sql
        return read(sql, (user_id,))

    def times_for(self, read: Reader, user_id: str) -> list[int]:
        """Sorted distinct time points present in temporal_inputs."""
        return [int(r["time"]) for r in read(self._sql["times"], (user_id,))]

    def cell_fingerprints(self, read: Reader, user_id: str) -> dict[int, str]:
        """``{time: model_fp}`` ledger slice for one user — the exact
        cache-invalidation signal of the serving tier."""
        return {
            int(r["time"]): str(r["model_fp"])
            for r in read(self._sql["ledger"], (user_id,))
        }

    def temporal_input_row(self, read: Reader, user_id: str, time: int):
        """The raw temporal-input row of one cell, or ``None``."""
        rows = read(self._sql["input"], (user_id, int(time)))
        return rows[0] if rows else None

    def oldest_stamp(self, read: Reader, user_id: str) -> float | None:
        """The oldest ``refreshed_at`` stamp among the user's cells —
        the upper bound on how stale any answer for this user can be.
        ``None`` for unknown users or stores whose rows predate the
        stamp column (``refreshed_at = 0``)."""
        rows = read(self._sql["oldest_stamp"], (user_id,))
        value = rows[0]["oldest"] if rows else None
        if value is None or float(value) <= 0:
            return None
        return float(value)

    def oldest_age(
        self, read: Reader, user_id: str, clock_sql: str
    ) -> float | None:
        """Age in seconds of the user's oldest ``refreshed_at`` stamp,
        measured **entirely on the store clock**: the stamp was written
        via the backend's clock expression, so the subtraction must read
        the same expression (``clock_sql``,
        :meth:`~repro.db.backends.StoreBackend.clock_sql`) — subtracting
        a store stamp from host ``time.time()`` would fold host↔store
        clock skew into the reported freshness.  One round-trip: clock
        read and subtraction happen in the same query.  ``None`` for
        unknown users or never-stamped rows (``refreshed_at = 0``,
        pre-priority databases).
        """
        sql = self._age_sql.get(clock_sql)
        if sql is None:
            sql = (
                "SELECT CASE WHEN MIN(refreshed_at) IS NULL"
                " OR MIN(refreshed_at) <= 0 THEN NULL"
                f" ELSE {clock_sql} - MIN(refreshed_at) END AS age"
                f" FROM temporal_inputs WHERE user_id = {self.placeholder}"
            )
            self._age_sql[clock_sql] = sql
        rows = read(sql, (user_id,))
        value = rows[0]["age"] if rows else None
        if value is None:
            return None
        return max(0.0, float(value))


_PREPARED_CACHE: dict[tuple, PreparedQueries] = {}


def prepared_for(placeholder: str, feature_names) -> PreparedQueries:
    """The process-wide compiled query set for one (dialect, schema).

    Memoised: every store, replica connection and serving worker that
    shares a placeholder and feature schema binds against the same SQL
    text objects (which also keeps sqlite3's per-connection statement
    cache hot — stable text is the cache key).
    """
    key = (str(placeholder), tuple(str(n) for n in feature_names))
    prepared = _PREPARED_CACHE.get(key)
    if prepared is None:
        prepared = PreparedQueries(key[0], key[1])
        _PREPARED_CACHE[key] = prepared
    return prepared
