"""Candidate database: SQLite store + the Figure-2 canned queries.

Substitutes the demo's MySQL server with stdlib sqlite3; the relational
schema and query SQL match the paper (see :mod:`repro.db.queries` for the
documented, semantics-preserving deviations).
"""

from repro.db.backends import (
    BACKEND_NAMES,
    MemoryBackend,
    ShardedSQLiteBackend,
    SQLiteBackend,
    StoreBackend,
    make_backend,
    recover_rebalance,
)
from repro.db.prepared import PreparedQueries, prepared_for
from repro.db.queries import (
    q1_no_modification,
    q2_minimal_features_set,
    q3_dominant_feature,
    q4_minimal_overall_modification,
    q5_maximal_confidence,
    q6_turning_point,
    q7_affordable_time,
    row_to_dict,
)
from repro.db.store import CandidateStore

__all__ = [
    "BACKEND_NAMES",
    "CandidateStore",
    "MemoryBackend",
    "PreparedQueries",
    "SQLiteBackend",
    "ShardedSQLiteBackend",
    "StoreBackend",
    "make_backend",
    "prepared_for",
    "q7_affordable_time",
    "q1_no_modification",
    "q2_minimal_features_set",
    "q3_dominant_feature",
    "q4_minimal_overall_modification",
    "q5_maximal_confidence",
    "q6_turning_point",
    "recover_rebalance",
    "row_to_dict",
]
