"""Relational candidate store over pluggable SQLite backends.

The original system stores generated candidates in MySQL; the schema here
mirrors the paper's two relations (SQLite executes the same SQL92 the
paper's Figure 2 shows):

``temporal_inputs(user_id, time, <feature columns...>, model_fp)``
    The future representations ``x_0 .. x_T`` of each user's profile.
    ``model_fp`` records the content fingerprint of the future model the
    cell's candidates were last computed under — one row per (user, t)
    cell, so it doubles as the refresh subsystem's staleness ledger.

``candidates(id, user_id, time, <feature columns...>, diff, gap, p, model_fp,
plan_rank, plan_quality, plan_min_dist)``
    The per-time-point decision-altering candidates; ``p`` is the model
    confidence (the paper's Q5 orders by ``p``), ``diff``/``gap`` the two
    distance properties, ``model_fp`` the producing model's fingerprint.
    ``plan_rank`` orders the cell's stored diverse plan set (greedy
    max-min selection order; ``-1`` = no plan set, the legacy value),
    ``plan_quality`` the plan's objective key and ``plan_min_dist`` its
    scaled distance to the nearest earlier pick (NULL for the seed).

``user_sessions(user_id, profile, constraints)``
    Session specs (profile vector + DSL constraint texts as JSON) so a
    long-running service can rehydrate sessions after a restart and
    refresh them.

``access_log(user_id, question, accessed_at)`` /
``user_priority(user_id, score, updated_at)``
    The serving-tier feedback loop: the HTTP tier appends raw read
    events (batched, fire-and-forget), and
    :meth:`CandidateStore.materialize_priorities` folds them into a
    half-life-decayed per-user activity score.  The claim scan orders
    stale cells by that score, so a constrained refresh budget is spent
    where read traffic actually lands.

``refresh_escalations(user_id, time)``
    Cells escalated past their staleness SLA: the orchestrator marks
    them and the claim scan drains them ahead of any score.

``refresh_leases(user_id, time, worker_id, lease_expires_at)``
    Cross-process refresh coordination: a worker that intends to
    recompute a stale (user, t) cell first *claims* it by writing a
    lease row.  Claims are atomic (``BEGIN IMMEDIATE`` serialises them
    on the main database's write lock, which every process of a shared
    file-backed store contends on), so a pool of worker processes can
    drain :meth:`CandidateStore.stale_cells` concurrently without
    double-computing; expired leases are reclaimable, which is how the
    pool recovers cells from crashed workers.  Lease timestamps default
    to the **store-side clock** (:meth:`CandidateStore.clock_now`,
    backed by ``julianday('now')``) so hosts sharing a store agree on
    expiry, and the claim scan is answered by the covering
    ``idx_temporal_inputs_ledger`` index — a partial scan over the
    stale rows, not O(cells) per round.

Feature columns are generated from the dataset schema; names are
validated as SQL identifiers.  All user-supplied *values* go through
parametrised statements.  Storage topology (single file, in-memory, or
user-sharded) is delegated to :mod:`repro.db.backends`; on a sharded
backend every table exists once per shard and reads go through
``UNION ALL`` views, so all SQL below stays backend agnostic.

**Parallel write path** — on a file-backed sharded backend every bulk
write is grouped per shard and committed on that shard's *dedicated*
connection (separate files → separate write locks), so N workers
upserting cells of different shards never serialise on one lock.  A
batch spanning several shards goes through a **two-phase group
commit**: each shard's transaction stashes an undo journal
(``txn_journal``) beside its rows (phase 1), then a commit marker is
written in the router (``txn_commits``, phase 2), then journals and
marker are released.  Recovery (:meth:`CandidateStore.
recover_pending_groups`, run on every open) rolls half-committed groups
back (no marker) or forward (marker present), so a crash at any point
leaves ``contents_digest()`` equal to a store that either completed the
write or never started it.  ``txn_pending`` rows lease the group to its
writer so recovery never unwinds a *live* writer's phase-1 work.
"""

from __future__ import annotations

import hashlib
import json
import re
import sqlite3
import uuid
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.candidates import Candidate
from repro.core.objectives import CandidateMetrics
from repro.data.schema import DatasetSchema
from repro.db.backends import (
    ShardedSQLiteBackend,
    StoreBackend,
    complete_swap,
    make_backend,
)
from repro.exceptions import StorageError

__all__ = ["CandidateStore"]

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_RESERVED = {"id", "user_id", "time", "diff", "gap", "p", "model_fp", "refreshed_at"}

#: statement openers accepted by the read-only expert passthrough
_READONLY_OPENERS = ("select", "with", "values", "explain")


def _strip_leading_comments(query: str) -> str:
    """Drop leading whitespace and ``--``/``/* */`` SQL comments so the
    opener check sees the first real token (experts annotate queries)."""
    s = query
    while True:
        s = s.lstrip()
        if s.startswith("--"):
            newline = s.find("\n")
            if newline == -1:
                return ""
            s = s[newline + 1 :]
        elif s.startswith("/*"):
            end = s.find("*/")
            if end == -1:
                return ""
            s = s[end + 2 :]
        else:
            return s


def _batched(seq, size):
    """Fixed-size chunks of ``seq`` (IN-list batches stay well under
    SQLite's bind-variable limit)."""
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


class CandidateStore:
    """Candidate + temporal-input relational store over sqlite3.

    Parameters
    ----------
    schema:
        Dataset schema; one column per feature is created in both tables.
    path:
        Database file, or ``':memory:'`` (default) for an in-process DB.
    backend:
        Backend name (``'sqlite'``, ``'memory'``, ``'sharded'``), a
        :class:`~repro.db.backends.StoreBackend` instance, or ``None`` to
        infer from ``path``.
    n_shards:
        Shard count for the ``'sharded'`` backend (ignored otherwise).
    parallel_writes:
        Route bulk writes through per-shard connections (two-phase
        group commit when a batch spans shards).  ``None`` (default)
        follows the backend's
        :attr:`~repro.db.backends.StoreBackend.parallel_write_schemas`;
        ``False`` forces the serial single-transaction path (the
        reference the parallel path is asserted byte-identical to).
        ``True`` is honoured only on backends that actually hand out
        per-schema connections — elsewhere (e.g. in-memory shards,
        reachable only through the router) it clamps back to serial.
    """

    #: seconds a prepared-but-unmarked commit group stays protected from
    #: recovery — long enough for any live writer to reach phase 2,
    #: short enough that a crashed writer's group is unwound promptly
    txn_grace_seconds: float = 60.0

    def __init__(
        self,
        schema: DatasetSchema,
        path: str | Path = ":memory:",
        *,
        backend: str | StoreBackend | None = None,
        n_shards: int = 4,
        parallel_writes: bool | None = None,
    ):
        for name in schema.names:
            if not _IDENTIFIER_RE.match(name):
                raise StorageError(f"feature name {name!r} is not a SQL identifier")
            if name.lower() in _RESERVED:
                raise StorageError(
                    f"feature name {name!r} collides with a reserved column"
                )
        self.schema = schema
        #: test/bench instrumentation: ``callable(stage)`` fired between
        #: the group-commit steps (``'pending'``, ``'prepared:<db>'``,
        #: ``'committed'``, ``'released'``); raising simulates the
        #: writing process dying at that point.  When set, phase 1 runs
        #: serially in schema order so crash points are deterministic.
        self.txn_fault_hook = None
        self._attach_backend(make_backend(backend, path, n_shards=n_shards))
        # forcing True on a single-connection backend would drive that
        # one connection from the group-commit worker threads — clamp to
        # what the topology can actually parallelise
        self.parallel_writes = (
            self._backend.parallel_write_schemas
            if parallel_writes is None
            else bool(parallel_writes) and self._backend.parallel_write_schemas
        )
        self.recover_pending_groups()

    def _attach_backend(self, backend: StoreBackend) -> None:
        """Bind this store to ``backend`` (initial open and the
        post-rebalance reopen): router connection, row factory, DDL."""
        self._backend = backend
        self._conn = backend.conn
        self._conn.row_factory = sqlite3.Row
        self._create_tables()

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    # ------------------------------------------------------------- schema

    def _table_ddl(self, db: str) -> list[str]:
        """Per-schema DDL, shared by :meth:`_create_tables` and the
        rebalance staging-shard builder (which runs it against a fresh
        file where ``db`` is ``main``)."""
        feature_cols = ", ".join(f"{name} REAL NOT NULL" for name in self.schema.names)
        return [
            f"""
            CREATE TABLE IF NOT EXISTS {db}.temporal_inputs (
                user_id TEXT NOT NULL,
                time INTEGER NOT NULL,
                {feature_cols},
                model_fp TEXT NOT NULL DEFAULT '',
                refreshed_at REAL NOT NULL DEFAULT 0,
                PRIMARY KEY (user_id, time)
            )
            """,
            f"""
            CREATE TABLE IF NOT EXISTS {db}.candidates (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                user_id TEXT NOT NULL,
                time INTEGER NOT NULL,
                {feature_cols},
                diff REAL NOT NULL,
                gap INTEGER NOT NULL,
                p REAL NOT NULL,
                model_fp TEXT NOT NULL DEFAULT '',
                plan_rank INTEGER NOT NULL DEFAULT -1,
                plan_quality REAL,
                plan_min_dist REAL
            )
            """,
            f"CREATE INDEX IF NOT EXISTS {db}.idx_candidates_user_time"
            " ON candidates (user_id, time)",
            f"""
            CREATE TABLE IF NOT EXISTS {db}.user_sessions (
                user_id TEXT PRIMARY KEY,
                profile TEXT NOT NULL,
                constraints TEXT
            )
            """,
            f"""
            CREATE TABLE IF NOT EXISTS {db}.refresh_leases (
                user_id TEXT NOT NULL,
                time INTEGER NOT NULL,
                worker_id TEXT NOT NULL,
                lease_expires_at REAL NOT NULL,
                PRIMARY KEY (user_id, time)
            )
            """,
            # per-shard undo journal of the two-phase group commit; rows
            # exist only while a multi-shard write is in flight
            f"""
            CREATE TABLE IF NOT EXISTS {db}.txn_journal (
                group_id TEXT PRIMARY KEY,
                payload TEXT NOT NULL
            )
            """,
            # raw serving-tier read events, drained (and deleted) by
            # materialize_priorities — a spool, never a long-lived table
            f"""
            CREATE TABLE IF NOT EXISTS {db}.access_log (
                user_id TEXT NOT NULL,
                question TEXT NOT NULL,
                accessed_at REAL NOT NULL
            )
            """,
            f"CREATE INDEX IF NOT EXISTS {db}.idx_access_log_user"
            " ON access_log (user_id)",
            f"""
            CREATE TABLE IF NOT EXISTS {db}.user_priority (
                user_id TEXT PRIMARY KEY,
                score REAL NOT NULL,
                updated_at REAL NOT NULL
            )
            """,
            # covering: the claim scan's LEFT JOIN probes (user_id) and
            # reads only score, so the lookup never touches the table
            f"CREATE INDEX IF NOT EXISTS {db}.idx_user_priority_score"
            " ON user_priority (user_id, score)",
            f"""
            CREATE TABLE IF NOT EXISTS {db}.refresh_escalations (
                user_id TEXT NOT NULL,
                time INTEGER NOT NULL,
                PRIMARY KEY (user_id, time)
            )
            """,
        ]

    def _ledger_index_sql(self, db: str) -> str:
        """The staleness-ledger covering index.  The claim scan probes
        (time = ?, model_fp mismatch): the equality seeks straight to
        the time partition and the mismatch — spelled as two range
        seeks, see :data:`_STALE_PREDICATE` — skips the (usually
        dominant) fresh-fingerprint run inside it, so a claim round
        touches only the stale rows instead of scanning O(cells).
        user_id makes the index covering — the scan never reads the
        (wide) table rows at all."""
        return (
            f"CREATE INDEX IF NOT EXISTS {db}.idx_temporal_inputs_ledger"
            " ON temporal_inputs (time, model_fp, user_id)"
        )

    #: coordination tables, always in the router's ``main`` schema: the
    #: group-commit marker + writer lease, and the rebalance phase row
    #: read by :func:`repro.db.backends.recover_rebalance`
    _COORDINATOR_DDL = (
        """
        CREATE TABLE IF NOT EXISTS main.txn_commits (
            group_id TEXT PRIMARY KEY,
            committed_at REAL NOT NULL
        )
        """,
        """
        CREATE TABLE IF NOT EXISTS main.txn_pending (
            group_id TEXT PRIMARY KEY,
            expires_at REAL NOT NULL
        )
        """,
        """
        CREATE TABLE IF NOT EXISTS main.rebalance_state (
            phase TEXT NOT NULL,
            old_shards INTEGER NOT NULL,
            new_shards INTEGER NOT NULL
        )
        """,
        # the per-epoch compute budget, shared by every claiming worker:
        # each claim decrements `remaining` inside its own BEGIN
        # IMMEDIATE transaction, so the cap holds across processes and
        # survives kill -9 mid-drain.  No row means unlimited.
        """
        CREATE TABLE IF NOT EXISTS main.refresh_budget (
            id INTEGER PRIMARY KEY CHECK (id = 1),
            remaining INTEGER NOT NULL
        )
        """,
        # orchestrator leader election: a singleton lease arbitrated by
        # the store-side clock, exactly like worker leases.  `epoch` is
        # the fencing token — it increments on every leadership change
        # and never resets, so a deposed leader's stale (leader_id,
        # epoch) pair can be rejected even after the node re-campaigns.
        """
        CREATE TABLE IF NOT EXISTS main.leader_lease (
            id INTEGER PRIMARY KEY CHECK (id = 1),
            leader_id TEXT NOT NULL,
            epoch INTEGER NOT NULL,
            acquired_at REAL NOT NULL,
            renewed_at REAL NOT NULL,
            lease_expires_at REAL NOT NULL
        )
        """,
        # last orchestrator health/metrics snapshot (JSON), written at
        # checkpoint boundaries so the serving tier and CLI can report
        # orchestrator health without sharing its process.  Coordinator
        # state: excluded from `contents_digest`.
        """
        CREATE TABLE IF NOT EXISTS main.orchestrator_metrics (
            id INTEGER PRIMARY KEY CHECK (id = 1),
            updated_at REAL NOT NULL,
            payload TEXT NOT NULL
        )
        """,
    )

    def _create_tables(self) -> None:
        with self._conn:
            for statement in self._COORDINATOR_DDL:
                self._conn.execute(statement)
            for db in self._backend.schemas():
                for statement in self._table_ddl(db):
                    self._conn.execute(statement)
                # migrate databases created before the refresh subsystem:
                # their tables predate the model_fp column (cells read as
                # fingerprint '' — i.e. stale, which is the safe default)
                for table in ("temporal_inputs", "candidates"):
                    columns = {
                        row[1]
                        for row in self._conn.execute(
                            f"PRAGMA {db}.table_info({table})"
                        )
                    }
                    if "model_fp" not in columns:
                        self._conn.execute(
                            f"ALTER TABLE {db}.{table} ADD COLUMN"
                            " model_fp TEXT NOT NULL DEFAULT ''"
                        )
                    # pre-priority databases lack the freshness stamp;
                    # 0 reads as "never stamped", which freshness
                    # reporting surfaces rather than treating as ancient
                    if table == "temporal_inputs" and "refreshed_at" not in columns:
                        self._conn.execute(
                            f"ALTER TABLE {db}.{table} ADD COLUMN"
                            " refreshed_at REAL NOT NULL DEFAULT 0"
                        )
                    # pre-plan-set databases lack the plan metadata; rank
                    # -1 reads as "no stored plan set", which keeps those
                    # rows' digest serialisation byte-identical to before
                    # the columns existed
                    if table == "candidates" and "plan_rank" not in columns:
                        for ddl in (
                            " plan_rank INTEGER NOT NULL DEFAULT -1",
                            " plan_quality REAL",
                            " plan_min_dist REAL",
                        ):
                            self._conn.execute(
                                f"ALTER TABLE {db}.{table} ADD COLUMN" + ddl
                            )
                # created after the legacy migration so model_fp exists
                self._conn.execute(self._ledger_index_sql(db))
            if self._backend.sharded:
                # read-side: one UNION ALL view per table so global
                # queries (expert SQL, Figure-2 canned SQL) are
                # shard-transparent; sqlite views are read-only, which
                # suits the expert interface
                for table in (
                    "temporal_inputs",
                    "candidates",
                    "user_sessions",
                    "refresh_leases",
                    "access_log",
                    "user_priority",
                    "refresh_escalations",
                ):
                    union = " UNION ALL ".join(
                        f"SELECT * FROM {db}.{table}"
                        for db in self._backend.schemas()
                    )
                    self._conn.execute(
                        f"CREATE TEMP VIEW IF NOT EXISTS {table} AS {union}"
                    )

    def _db_for(self, user_id: str) -> str:
        """Qualified schema prefix owning ``user_id``'s rows."""
        return self._backend.schema_for(user_id)

    def close(self) -> None:
        # standard SQLite hygiene: accumulate planner statistics where
        # needed before the connection goes away, so long-lived stores
        # give the cost model real table sizes (the claim scan's
        # fingerprint range seeks depend on it at scale)
        try:
            self._conn.execute("PRAGMA optimize")
        except sqlite3.Error:
            pass  # read-only/poisoned connection: stats are best-effort
        self._backend.close()

    def __enter__(self) -> "CandidateStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- writes

    @property
    def placeholder(self) -> str:
        """The backend dialect's bind-parameter marker (DB-API seam).

        Public: the canned Figure-2 queries, the prepared-statement
        layer (:mod:`repro.db.prepared`) and the serving tier all build
        SQL against it.
        """
        return self._backend.placeholder()

    # retained internal alias (pre-serving-tier spelling)
    _ph = placeholder

    def _insert_sql(
        self, db: str, table: str, extra_columns: tuple[str, ...] = ()
    ) -> str:
        columns = ["user_id", "time", *self.schema.names, *extra_columns]
        placeholders = ", ".join(self._ph for _ in columns)
        return (
            f"INSERT INTO {db}.{table} ({', '.join(columns)})"
            f" VALUES ({placeholders})"
        )

    def _input_rows(
        self,
        user_id: str,
        trajectory,
        fingerprints: dict[int, str] | None,
        stamp: float | None = None,
    ) -> list[tuple]:
        trajectory = np.atleast_2d(np.asarray(trajectory, dtype=float))
        if trajectory.shape[1] != len(self.schema):
            raise StorageError(
                f"trajectory has {trajectory.shape[1]} columns,"
                f" schema expects {len(self.schema)}"
            )
        fingerprints = fingerprints or {}
        stamp = float(self.clock_now() if stamp is None else stamp)
        return [
            (user_id, t, *map(float, row), fingerprints.get(t) or "", stamp)
            for t, row in enumerate(trajectory)
        ]

    #: columns appended after the feature block in ``candidates`` inserts
    _CANDIDATE_EXTRA = (
        "diff",
        "gap",
        "p",
        "model_fp",
        "plan_rank",
        "plan_quality",
        "plan_min_dist",
    )

    def _candidate_rows(
        self, user_id: str, candidates, fingerprints: dict[int, str] | None
    ) -> list[tuple]:
        fingerprints = fingerprints or {}
        return [
            (
                user_id,
                int(c.time),
                *map(float, c.x),
                float(c.diff),
                int(c.gap),
                float(c.confidence),
                fingerprints.get(int(c.time)) or "",
                int(getattr(c, "plan_rank", -1)),
                None
                if getattr(c, "plan_quality", None) is None
                else float(c.plan_quality),
                None
                if getattr(c, "plan_min_dist", None) is None
                else float(c.plan_min_dist),
            )
            for c in candidates
        ]

    @staticmethod
    def _spec_row(user_id: str, profile, constraint_texts) -> tuple:
        """Marshal one session spec to a ``user_sessions`` row.

        ``constraint_texts`` is a list of JSON-able entries — DSL strings
        or ``{"expr", "times", "label"}`` dicts for scoped constraints —
        or ``None`` when the session's constraints are not serialisable
        (opaque :class:`ConstraintsFunction` objects), in which case the
        session is not resumable by default.
        """
        profile_json = json.dumps([float(v) for v in np.asarray(profile).ravel()])
        constraints_json = (
            None
            if constraint_texts is None
            else json.dumps(list(constraint_texts))
        )
        return (user_id, profile_json, constraints_json)

    def _write_target(self, db: str) -> tuple[sqlite3.Connection, str]:
        """``(connection, prefix)`` a write to schema ``db`` should use:
        the shard's dedicated connection on a parallel backend, the
        router otherwise."""
        if self.parallel_writes:
            return self._backend.write_connection(db)
        return self._conn, db

    def store_temporal_inputs(
        self, user_id: str, trajectory, fingerprints: dict[int, str] | None = None
    ) -> None:
        """Insert/replace the rows ``x_0 .. x_T`` for ``user_id``."""
        rows = self._input_rows(user_id, trajectory, fingerprints)
        conn, prefix = self._write_target(self._db_for(user_id))
        with conn:
            conn.execute(
                f"DELETE FROM {prefix}.temporal_inputs WHERE user_id = {self._ph}",
                (user_id,),
            )
            conn.executemany(
                self._insert_sql(
                    prefix, "temporal_inputs", ("model_fp", "refreshed_at")
                ),
                rows,
            )

    def store_candidates(
        self,
        user_id: str,
        candidates: list[Candidate],
        fingerprints: dict[int, str] | None = None,
    ) -> None:
        """Append candidates (any time points) for ``user_id``."""
        rows = self._candidate_rows(user_id, candidates, fingerprints)
        conn, prefix = self._write_target(self._db_for(user_id))
        with conn:
            conn.executemany(
                self._insert_sql(prefix, "candidates", self._CANDIDATE_EXTRA),
                rows,
            )

    def store_sessions(
        self,
        sessions,
        fingerprints: dict[int, str] | None = None,
        specs=None,
    ) -> None:
        """Bulk multi-user write, grouped and committed per shard.

        ``sessions`` is an iterable of ``(user_id, trajectory,
        candidates)`` triples.  For every user the existing rows are
        replaced and the temporal inputs + candidates inserted; each
        shard's row group is one transaction (a 50-user ingest pays one
        commit per touched shard instead of 150), shards commit on
        their own connections in parallel, and a batch spanning shards
        is protected by the two-phase group commit so recovery restores
        all-or-nothing semantics after a crash.  ``fingerprints`` maps
        time index to the producing model's content fingerprint;
        ``specs`` is an optional iterable of ``(user_id, profile,
        constraint_texts_or_None)`` persisted to ``user_sessions`` for
        later rehydration.
        """
        per_db: dict[str, list] = {}
        seen: set[str] = set()
        stamp = self.clock_now()
        for user_id, trajectory, candidates in sessions:
            if user_id in seen:
                raise StorageError(
                    f"duplicate user_id {user_id!r} in store_sessions batch"
                )
            seen.add(user_id)
            per_db.setdefault(self._db_for(user_id), []).append(
                _SessionWrite(
                    self, user_id, trajectory, candidates, fingerprints, stamp
                )
            )
        for spec in specs or ():
            per_db.setdefault(self._db_for(spec[0]), []).append(
                _SpecWrite(self, spec)
            )
        self._grouped_write(per_db)

    def upsert_cells(
        self, cells, fingerprints: dict[int, str] | None = None
    ) -> int:
        """Replace the candidates of specific (user, time) cells.

        ``cells`` is an iterable of ``(user_id, time, candidates)`` or
        ``(user_id, time, candidates, x_t)`` tuples; the cells are
        grouped per shard and each shard's group runs in **one
        transaction** on that shard's write connection — a worker whose
        claimed cells live in one shard commits without ever touching
        the router's lock, and a batch spanning shards goes through the
        two-phase group commit (all-or-nothing after recovery).  Rows
        of untouched cells are left byte-identical.  The cell's
        ``temporal_inputs`` ledger row is stamped with the new model
        fingerprint; if that row is missing (e.g. the user was fully
        cleared while their session stayed live) it is re-inserted from
        ``x_t`` when given, and the upsert fails otherwise — candidates
        without a horizon row would be invisible to the staleness ledger
        and the Figure-2 horizon queries.  Returns the number of
        candidate rows written.
        """
        fingerprints = fingerprints or {}
        per_db: dict[str, list] = {}
        stamp = self.clock_now()
        for cell in cells:
            user_id, time, candidates = cell[0], int(cell[1]), cell[2]
            x_t = cell[3] if len(cell) > 3 else None
            per_db.setdefault(self._db_for(user_id), []).append(
                _CellWrite(
                    self, user_id, time, candidates, x_t, fingerprints, stamp
                )
            )
        return self._grouped_write(per_db)

    # ---------------------------------------------- two-phase group commit

    def _grouped_write(self, ops_by_db: dict[str, list]) -> int:
        """Commit per-schema op groups; returns candidate rows written.

        One schema → one ordinary transaction on that schema's write
        connection (no coordination cost — the common worker-upsert
        case).  Several schemas on a serial backend → one router
        transaction spanning them all (SQLite multi-database atomic
        commit).  Several schemas on a parallel backend → the two-phase
        protocol of :meth:`_two_phase_commit`.
        """
        ops_by_db = {db: ops for db, ops in ops_by_db.items() if ops}
        if not ops_by_db:
            return 0
        if len(ops_by_db) == 1:
            ((db, ops),) = ops_by_db.items()
            conn, prefix = self._write_target(db)
            with conn:
                return sum(op.apply(self, conn, prefix) for op in ops)
        if not self.parallel_writes:
            with self._conn:
                return sum(
                    op.apply(self, self._conn, db)
                    for db, ops in ops_by_db.items()
                    for op in ops
                )
        return self._two_phase_commit(ops_by_db)

    def _two_phase_commit(self, ops_by_db: dict[str, list]) -> int:
        """Atomically-recoverable multi-shard write.

        1. a ``txn_pending`` row leases the group to this writer (so
           concurrent recovery leaves live phase-1 work alone);
        2. **phase 1** — every shard, on its own connection and in
           parallel, stashes an undo journal beside its applied rows
           and commits;
        3. **phase 2** — the commit marker lands in the router's
           ``txn_commits`` (the group's single durable commit point);
        4. journals and marker are released.

        A crash before the marker rolls the group back via the
        journals; after the marker, recovery merely finishes the
        release — either way ``contents_digest()`` equals a run that
        completed the write or never started it.
        """
        ph = self._ph
        group_id = uuid.uuid4().hex
        killed = False

        def fire(stage: str) -> None:
            # a raise from the hook simulates the *process dying* at this
            # stage: the flag keeps the live-writer abort below from
            # cleaning up, so the journals survive for open-time recovery
            # to resolve — exactly what a real kill leaves behind
            nonlocal killed
            if self.txn_fault_hook is not None:
                killed = True
                self.txn_fault_hook(stage)
                killed = False

        with self._conn:
            self._conn.execute(
                f"INSERT INTO main.txn_pending (group_id, expires_at)"
                f" VALUES ({ph}, {ph})",
                (group_id, self.clock_now() + float(self.txn_grace_seconds)),
            )
        fire("pending")
        items = sorted(ops_by_db.items())
        prepared: list[str] = []
        written = 0
        try:
            if self.txn_fault_hook is not None:
                # deterministic schema order so fault-injection tests can
                # name exact crash points
                for db, ops in items:
                    written += self._prepare_schema(group_id, db, ops)
                    prepared.append(db)
                    fire(f"prepared:{db}")
            else:
                # phase 1 in parallel: sqlite3 releases the GIL while each
                # shard's transaction runs, so the per-file work overlaps
                with ThreadPoolExecutor(max_workers=len(items)) as pool:
                    futures = [
                        (db, pool.submit(self._prepare_schema, group_id, db, ops))
                        for db, ops in items
                    ]
                    failure: BaseException | None = None
                    for db, future in futures:
                        try:
                            written += future.result()
                            prepared.append(db)
                        except BaseException as exc:  # noqa: BLE001 — rollback all
                            failure = failure or exc
                    if failure is not None:
                        raise failure
        except BaseException:
            if not killed:
                self._abort_group(group_id, prepared)
            raise
        try:
            with self._conn:
                self._conn.execute(
                    f"INSERT INTO main.txn_commits (group_id, committed_at)"
                    f" VALUES ({ph}, {ph})",
                    (group_id, self.clock_now()),
                )
                self._conn.execute(
                    f"DELETE FROM main.txn_pending WHERE group_id = {ph}",
                    (group_id,),
                )
        except sqlite3.Error:
            # the marker never landed, so the group is uncommitted — and
            # this writer is alive and holds the journals, so it must
            # unwind its phase-1 commits itself rather than report a
            # failed write whose rows stay visible until some later
            # recovery rolls them back
            self._abort_group(group_id, prepared)
            raise
        fire("committed")
        self._release_group(group_id, prepared)
        fire("released")
        return written

    def _prepare_schema(self, group_id: str, db: str, ops: list) -> int:
        """Phase 1 for one shard: journal the undo state, apply, commit."""
        conn, prefix = self._backend.write_connection(db)
        ph = self._ph
        try:
            conn.execute(self._backend.begin_immediate_sql())
            payloads = [op.undo(self, conn, prefix) for op in ops]
            conn.execute(
                f"INSERT INTO {prefix}.txn_journal (group_id, payload)"
                f" VALUES ({ph}, {ph})",
                (group_id, json.dumps(payloads)),
            )
            written = sum(op.apply(self, conn, prefix) for op in ops)
            conn.commit()
            return written
        except BaseException:
            conn.rollback()
            raise

    def _abort_group(self, group_id: str, prepared: list[str]) -> None:
        """Unwind a group whose phase 1 failed partway: already-prepared
        shards are rolled back via their journals, the pending lease is
        dropped."""
        for db in prepared:
            conn, prefix = self._backend.write_connection(db)
            self._rollback_journal(conn, prefix, group_id)
        with self._conn:
            self._conn.execute(
                f"DELETE FROM main.txn_pending WHERE group_id = {self._ph}",
                (group_id,),
            )

    def _rollback_journal(
        self, conn: sqlite3.Connection, prefix: str, group_id: str
    ) -> bool:
        """Restore one shard's pre-group state from its undo journal."""
        ph = self._ph
        row = conn.execute(
            f"SELECT payload FROM {prefix}.txn_journal WHERE group_id = {ph}",
            (group_id,),
        ).fetchone()
        if row is None:
            return False
        payloads = json.loads(row[0])
        with conn:
            for payload in reversed(payloads):
                self._apply_undo(conn, prefix, payload)
            conn.execute(
                f"DELETE FROM {prefix}.txn_journal WHERE group_id = {ph}",
                (group_id,),
            )
        return True

    def _release_group(self, group_id: str, dbs: list[str]) -> None:
        """Phase 3: drop the shard journals, then the commit marker.
        Order matters — a marker without journals is a finished commit,
        journals without a marker mean rollback."""
        ph = self._ph
        for db in dbs:
            conn, prefix = self._backend.write_connection(db)
            with conn:
                conn.execute(
                    f"DELETE FROM {prefix}.txn_journal WHERE group_id = {ph}",
                    (group_id,),
                )
        with self._conn:
            self._conn.execute(
                f"DELETE FROM main.txn_commits WHERE group_id = {ph}", (group_id,)
            )

    def _restore_rows(
        self, conn, prefix: str, table: str, columns: list[str], rows
    ) -> None:
        if not rows:
            return
        ph = self._ph
        conn.executemany(
            f"INSERT INTO {prefix}.{table} ({', '.join(columns)})"
            f" VALUES ({', '.join(ph for _ in columns)})",
            [tuple(row) for row in rows],
        )

    def _undo_columns(self) -> tuple[list[str], list[str]]:
        """(candidate columns incl. ``id``, temporal-input columns) of
        the undo journal.  ``id`` is captured and restored explicitly:
        the digest sorts a cell's rows by it, so a rollback must hand
        back the original intra-cell order."""
        feats = list(self.schema.names)
        return (
            [
                "id",
                "user_id",
                "time",
                *feats,
                "diff",
                "gap",
                "p",
                "model_fp",
                "plan_rank",
                "plan_quality",
                "plan_min_dist",
            ],
            ["user_id", "time", *feats, "model_fp", "refreshed_at"],
        )

    def _apply_undo(self, conn, prefix: str, payload: dict) -> None:
        """Apply one journaled undo record (rollback and crash
        recovery): delete the scope the write touched, re-insert the
        stashed pre-write rows."""
        ph = self._ph
        cand_cols, input_cols = self._undo_columns()
        kind = payload["kind"]
        if kind == "cell":
            user, t = payload["user"], int(payload["time"])
            conn.execute(
                f"DELETE FROM {prefix}.candidates"
                f" WHERE user_id = {ph} AND time = {ph}",
                (user, t),
            )
            conn.execute(
                f"DELETE FROM {prefix}.temporal_inputs"
                f" WHERE user_id = {ph} AND time = {ph}",
                (user, t),
            )
            self._restore_rows(
                conn, prefix, "candidates", cand_cols, payload["candidates"]
            )
            if payload["ledger"] is not None:
                self._restore_rows(
                    conn, prefix, "temporal_inputs", input_cols,
                    [payload["ledger"]],
                )
        elif kind == "user":
            user = payload["user"]
            conn.execute(
                f"DELETE FROM {prefix}.candidates WHERE user_id = {ph}", (user,)
            )
            conn.execute(
                f"DELETE FROM {prefix}.temporal_inputs WHERE user_id = {ph}",
                (user,),
            )
            self._restore_rows(
                conn, prefix, "candidates", cand_cols, payload["candidates"]
            )
            self._restore_rows(
                conn, prefix, "temporal_inputs", input_cols, payload["inputs"]
            )
        elif kind == "spec":
            user = payload["user"]
            conn.execute(
                f"DELETE FROM {prefix}.user_sessions WHERE user_id = {ph}",
                (user,),
            )
            if payload["session"] is not None:
                self._restore_rows(
                    conn, prefix, "user_sessions",
                    ["user_id", "profile", "constraints"],
                    [payload["session"]],
                )
        else:
            raise StorageError(f"unknown undo payload kind {kind!r}")

    def recover_pending_groups(self, now: float | None = None) -> dict[str, int]:
        """Resolve group commits a dead writer left half done.

        Runs on every store open (and is safe to call any time): shard
        journals with a ``txn_commits`` marker are **rolled forward**
        (the commit stood — only the release was interrupted); journals
        without a marker are **rolled back** to the journaled pre-write
        state — unless a live ``txn_pending`` lease (``expires_at`` in
        the future of the store clock) shows the writing process is
        still mid-commit, in which case the group is left alone.
        Writers must therefore finish a group within
        :attr:`txn_grace_seconds`; the bulk writes this store issues
        take milliseconds.  Returns ``{'rolled_back': n, 'completed':
        m}``.
        """
        ph = self._ph
        journaled: dict[str, list[str]] = {}
        for db in self._backend.schemas():
            conn, prefix = self._backend.write_connection(db)
            for row in conn.execute(
                f"SELECT group_id FROM {prefix}.txn_journal"
            ).fetchall():
                journaled.setdefault(str(row[0]), []).append(db)
        now = float(self.clock_now() if now is None else now)
        stats = {"rolled_back": 0, "completed": 0}
        if journaled:
            committed = {
                str(r[0])
                for r in self._conn.execute("SELECT group_id FROM main.txn_commits")
            }
            pending = {
                str(r[0]): float(r[1])
                for r in self._conn.execute(
                    "SELECT group_id, expires_at FROM main.txn_pending"
                )
            }
            for group_id, dbs in sorted(journaled.items()):
                if group_id in committed:
                    self._release_group(group_id, dbs)
                    stats["completed"] += 1
                elif pending.get(group_id, -1.0) > now:
                    continue  # live writer mid-commit: not ours to unwind
                else:
                    for db in dbs:
                        conn, prefix = self._backend.write_connection(db)
                        self._rollback_journal(conn, prefix, group_id)
                    with self._conn:
                        self._conn.execute(
                            f"DELETE FROM main.txn_pending WHERE group_id = {ph}",
                            (group_id,),
                        )
                    stats["rolled_back"] += 1
        # hygiene, aged past the grace window so a racing live writer is
        # never touched: markers whose journals are all released (writer
        # died inside the release loop) and expired pending leases
        with self._conn:
            self._conn.execute(
                f"DELETE FROM main.txn_commits WHERE committed_at <= {ph}",
                (now - float(self.txn_grace_seconds),),
            )
            self._conn.execute(
                f"DELETE FROM main.txn_pending WHERE expires_at <= {ph}", (now,)
            )
        return stats

    # --------------------------------------------------------- rebalancing

    def rebalance(self, n_shards: int, *, fault_hook=None) -> dict:
        """Migrate a file-backed sharded store to ``n_shards`` shards.

        Every user is rehomed to ``crc32(user_id) % n_shards`` with
        **digest invariance**: ``contents_digest()`` and the
        ``stale_cells()`` ordering are identical before and after (the
        digest excludes storage ids and both orderings are global
        ``(user, time)``, not per-shard concatenation).  The migration
        is crash-recoverable at every point:

        * **build** — the new layout is written to ``<path>.rebal<i>``
          staging files; the live shards are never touched, so a crash
          aborts cleanly (next open discards the staging files);
        * **swap** — staging files replace the shard files one atomic
          rename at a time, rolled forward by
          :func:`repro.db.backends.recover_rebalance` on the next open
          if interrupted.

        The phase ledger lives in the router's ``rebalance_state``
        table.  Other writers must be quiescent (a live two-phase group
        is refused; lease workers should be drained first — leases are
        carried over, so an operator mistake delays work rather than
        losing it).  ``fault_hook`` is test instrumentation: raising
        from it simulates the process dying at that stage, with no
        cleanup.  Returns ``{'n_shards': m, 'moved_users': k}``.
        """
        backend = self._backend
        if not isinstance(backend, ShardedSQLiteBackend) or backend.path == ":memory:":
            raise StorageError(
                "rebalance needs a file-backed 'sharded' store; open the"
                " database with backend='sharded' first"
            )
        m = int(n_shards)
        if not 1 <= m <= ShardedSQLiteBackend.MAX_SHARDS:
            raise StorageError(
                f"n_shards must be in [1, {ShardedSQLiteBackend.MAX_SHARDS}],"
                f" got {m}"
            )
        old_n = backend.n_shards
        if m == old_n:
            return {"n_shards": m, "moved_users": 0}
        ph = self._ph
        # resolve any group a *crashed* writer left half-committed since
        # this store opened: the staging copy below carries no undo
        # journals, so an unresolved group would be frozen into the new
        # layout as committed data
        self.recover_pending_groups()
        live = self._conn.execute(
            f"SELECT COUNT(*) FROM main.txn_pending WHERE expires_at > {ph}",
            (self.clock_now(),),
        ).fetchone()[0]
        if live:
            raise StorageError(
                "a group commit is in flight; retry rebalance once it settles"
            )
        path = backend.path
        killed = False

        def fire(stage: str) -> None:
            nonlocal killed
            if fault_hook is not None:
                killed = True
                fault_hook(stage)
                killed = False

        with self._conn:
            self._conn.execute("DELETE FROM main.rebalance_state")
            self._conn.execute(
                "INSERT INTO main.rebalance_state"
                f" (phase, old_shards, new_shards) VALUES ({ph}, {ph}, {ph})",
                ("build", old_n, m),
            )
        fire("state-build")
        try:
            moved = self._build_rebalance_shards(path, old_n, m, fire)
            with self._conn:
                self._conn.execute(
                    f"UPDATE main.rebalance_state SET phase = {ph}", ("swap",)
                )
            fire("state-swap")
        except BaseException:
            if killed:
                raise  # simulated kill -9: leave the crash site as it fell
            # real failure (disk full, bad data): abort cleanly — the
            # live shards were never touched during the build
            for i in range(m):
                Path(f"{path}.rebal{i}").unlink(missing_ok=True)
            with self._conn:
                self._conn.execute("DELETE FROM main.rebalance_state")
            raise
        # the rename phase shuffles files under the open handles: close
        # every connection, roll the swap forward, reopen on the new
        # layout
        self._backend.close()
        state_conn = sqlite3.connect(path)
        try:
            complete_swap(path, old_n, m, state_conn, fault_hook=fault_hook)
        finally:
            state_conn.close()
        self._attach_backend(make_backend("sharded", path, n_shards=m))
        return {"n_shards": m, "moved_users": moved}

    def _build_rebalance_shards(
        self, path: str, old_n: int, new_n: int, fire
    ) -> int:
        """Write the new shard layout to ``<path>.rebal<i>`` staging
        files, copying whole users in global ``(user, time, id)`` order
        (``id`` itself is left to the fresh AUTOINCREMENT so intra-cell
        candidate order — the only id property the digest depends on —
        survives).  Returns how many users changed shards."""
        ddl = [*self._table_ddl("main"), self._ledger_index_sql("main")]
        feats = ", ".join(self.schema.names)
        copies = (
            (
                "temporal_inputs",
                f"user_id, time, {feats}, model_fp, refreshed_at",
                "ORDER BY user_id, time",
            ),
            (
                "candidates",
                f"user_id, time, {feats}, diff, gap, p, model_fp,"
                " plan_rank, plan_quality, plan_min_dist",
                "ORDER BY user_id, time, id",
            ),
            ("user_sessions", "user_id, profile, constraints", "ORDER BY user_id"),
            (
                "refresh_leases",
                "user_id, time, worker_id, lease_expires_at",
                "ORDER BY user_id, time",
            ),
            (
                "access_log",
                "user_id, question, accessed_at",
                "ORDER BY user_id, accessed_at",
            ),
            (
                "user_priority",
                "user_id, score, updated_at",
                "ORDER BY user_id",
            ),
            (
                "refresh_escalations",
                "user_id, time",
                "ORDER BY user_id, time",
            ),
        )
        # enumerate each old shard's users once, pre-grouped by target
        # shard (not once per target — that would rescan every old
        # shard new_n times): {old_i: {target_i: [users...]}}
        routing: dict[int, dict[int, list[str]]] = {}
        moved = 0
        for old_i in range(old_n):
            source = sqlite3.connect(f"{path}.shard{old_i}")
            try:
                users = sorted(
                    str(r[0])
                    for r in source.execute(
                        "SELECT user_id FROM temporal_inputs"
                        " UNION SELECT user_id FROM candidates"
                        " UNION SELECT user_id FROM user_sessions"
                        " UNION SELECT user_id FROM refresh_leases"
                        " UNION SELECT user_id FROM access_log"
                        " UNION SELECT user_id FROM user_priority"
                        " UNION SELECT user_id FROM refresh_escalations"
                    )
                )
            finally:
                source.close()
            per_target = routing.setdefault(old_i, {})
            for user in users:
                target = ShardedSQLiteBackend.shard_index(user, new_n)
                per_target.setdefault(target, []).append(user)
                if ShardedSQLiteBackend.shard_index(user, old_n) != target:
                    moved += 1
        for i in range(new_n):
            staging = f"{path}.rebal{i}"
            Path(staging).unlink(missing_ok=True)
            conn = sqlite3.connect(staging)
            try:
                for statement in ddl:
                    conn.execute(statement)
                for old_i in range(old_n):
                    mine = routing[old_i].get(i)
                    if not mine:
                        continue
                    conn.execute(
                        "ATTACH DATABASE ? AS src", (f"{path}.shard{old_i}",)
                    )
                    for batch in _batched(mine, 400):
                        marks = ", ".join(self._ph for _ in batch)
                        for table, columns, order in copies:
                            conn.execute(
                                f"INSERT INTO main.{table} ({columns})"
                                f" SELECT {columns} FROM src.{table}"
                                f" WHERE user_id IN ({marks}) {order}",
                                batch,
                            )
                    conn.commit()
                    conn.execute("DETACH DATABASE src")
            finally:
                conn.close()
            fire(f"built:{i}")
        return moved

    def clear_user(self, user_id: str, time: int | None = None) -> None:
        """Remove rows belonging to ``user_id``.

        With ``time`` given, only that (user, time) cell is invalidated —
        its candidates are dropped and its ledger row stamped with the
        empty fingerprint (i.e. stale, so :meth:`stale_cells` reports it
        and a refresh recomputes it), while the user's still-valid cells
        at other time points survive untouched.  The temporal-input
        vector itself stays: it is model independent, and the Figure-2
        horizon queries (Q3/Q6) must keep seeing the full horizon.
        Without ``time``, every row of the user is dropped (including
        the persisted session spec) — note that if the user still has a
        *registered* live session, the next refresh will recompute and
        re-store their cells; use :meth:`JustInTime.drop_session` to
        fully forget a user.
        """
        conn, prefix = self._write_target(self._db_for(user_id))
        ph = self._ph
        with conn:
            if time is None:
                conn.execute(
                    f"DELETE FROM {prefix}.candidates WHERE user_id = {ph}",
                    (user_id,),
                )
                conn.execute(
                    f"DELETE FROM {prefix}.temporal_inputs WHERE user_id = {ph}",
                    (user_id,),
                )
                conn.execute(
                    f"DELETE FROM {prefix}.user_sessions WHERE user_id = {ph}",
                    (user_id,),
                )
            else:
                conn.execute(
                    f"DELETE FROM {prefix}.candidates"
                    f" WHERE user_id = {ph} AND time = {ph}",
                    (user_id, int(time)),
                )
                conn.execute(
                    f"UPDATE {prefix}.temporal_inputs SET model_fp = ''"
                    f" WHERE user_id = {ph} AND time = {ph}",
                    (user_id, int(time)),
                )

    # -------------------------------------------------------------- reads

    def read(self, query: str, params=()) -> list[sqlite3.Row]:
        """Run trusted, fixed read SQL and return all rows.

        The public read seam for code that *generates* its SQL — the
        canned Figure-2 queries, the prepared-statement layer
        (:mod:`repro.db.prepared`), the insights layer and the serving
        tier.  No expert-interface policing (and none of its per-call
        PRAGMA round-trips); only :meth:`sql` — the expert passthrough
        behind the canned-question UI, which accepts *user* SQL — is
        policed."""
        try:
            return self._conn.execute(query, params).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"SQL error: {exc}") from exc

    # retained internal alias (pre-serving-tier spelling)
    _read = read

    def sql(self, query: str, params=()) -> list[sqlite3.Row]:
        """Expert passthrough: run **read-only** SQL and return rows.

        The paper lets "expert users compose additional SQL queries";
        this is that interface, intended to sit behind a canned-question
        UI — so it must never be able to mutate the store.  Enforcement
        is two-layer: a statement-opener check rejects anything that is
        not a ``SELECT``/``WITH``/``VALUES``/``EXPLAIN`` with a clear
        error, and ``PRAGMA query_only`` makes the connection itself
        refuse writes for the duration (catching e.g. a
        ``WITH ... INSERT`` that passes the opener check).
        """
        stripped = _strip_leading_comments(query)
        opener = stripped.split("(", 1)[0].split(None, 1)
        if not opener or opener[0].lower() not in _READONLY_OPENERS:
            raise StorageError(
                "sql() is read-only: statements must start with one of"
                f" {tuple(o.upper() for o in _READONLY_OPENERS)};"
                " use the store's write methods to modify data"
            )
        self._conn.execute("PRAGMA query_only = ON")
        try:
            cursor = self._conn.execute(query, params)
            return cursor.fetchall()
        except (sqlite3.Error, sqlite3.Warning) as exc:
            lowered = str(exc).lower()
            # "attempt to write a readonly database" (query_only) or
            # "cannot modify X because it is a view" (sharded union views)
            if "readonly" in lowered or "read-only" in lowered or (
                "cannot modify" in lowered
            ):
                raise StorageError(
                    f"sql() is read-only: statement rejected ({exc})"
                ) from exc
            raise StorageError(f"SQL error: {exc}") from exc
        finally:
            self._conn.execute("PRAGMA query_only = OFF")

    def candidate_count(self, user_id: str | None = None) -> int:
        if user_id is None:
            rows = self._read("SELECT COUNT(*) AS n FROM candidates")
        else:
            rows = self._read(
                "SELECT COUNT(*) AS n FROM candidates WHERE user_id = ?",
                (user_id,),
            )
        return int(rows[0]["n"])

    def temporal_input(self, user_id: str, time: int) -> np.ndarray:
        """Fetch one temporal-input vector back out of the store."""
        rows = self._read(
            "SELECT * FROM temporal_inputs WHERE user_id = ? AND time = ?",
            (user_id, int(time)),
        )
        if not rows:
            raise StorageError(
                f"no temporal input for user {user_id!r} at time {time}"
            )
        row = rows[0]
        return np.array([row[name] for name in self.schema.names], dtype=float)

    def times_for(self, user_id: str) -> list[int]:
        """Sorted distinct time points present in temporal_inputs."""
        rows = self._read(
            "SELECT DISTINCT time FROM temporal_inputs WHERE user_id = ?"
            " ORDER BY time",
            (user_id,),
        )
        return [int(r["time"]) for r in rows]

    def user_ids(self) -> list[str]:
        """Sorted distinct user ids present in temporal_inputs."""
        rows = self._read(
            "SELECT DISTINCT user_id FROM temporal_inputs ORDER BY user_id"
        )
        return [str(r["user_id"]) for r in rows]

    def cell_fingerprints(self, user_id: str) -> dict[int, str]:
        """``{time: model fingerprint}`` the user's cells were computed under."""
        rows = self._read(
            "SELECT time, model_fp FROM temporal_inputs WHERE user_id = ?"
            " ORDER BY time",
            (user_id,),
        )
        return {int(r["time"]): str(r["model_fp"]) for r in rows}

    def ledger_snapshot(self) -> dict[str, dict[int, str]]:
        """The whole staleness ledger in one scan:
        ``{user_id: {time: model_fp}}`` (one scan beats per-user or
        per-time queries, which on the sharded backend would each fan out
        across every shard)."""
        rows = self._read(
            "SELECT user_id, time, model_fp FROM temporal_inputs"
            " ORDER BY user_id, time"
        )
        snapshot: dict[str, dict[int, str]] = {}
        for row in rows:
            snapshot.setdefault(str(row["user_id"]), {})[int(row["time"])] = str(
                row["model_fp"]
            )
        return snapshot

    def stale_cells(
        self, fingerprints: dict[int, str]
    ) -> list[tuple[str, int]]:
        """(user, time) cells whose ledger fingerprint differs from current.

        ``fingerprints`` maps time index to the *current* model
        fingerprint; any cell recorded under a different (or empty)
        fingerprint is stale.  Cells at time points missing from
        ``fingerprints`` are not reported.

        **Ordering contract:** rows come back ``ORDER BY user_id, time``
        (SQLite BINARY collation), evaluated inside the database on every
        backend — on the sharded backend the ORDER BY applies to the
        ``UNION ALL`` view output, so the order is identical across
        ``sqlite`` / ``memory`` / ``sharded`` rather than reflecting
        shard layout.  Worker pools claim cells in this order, which
        makes claim sequences reproducible in tests.
        """
        if not fingerprints:
            return []
        values, params = self._fingerprint_values(fingerprints)
        rows = self._read(
            "SELECT ti.user_id AS user_id, ti.time AS time"
            " FROM temporal_inputs AS ti"
            f" JOIN (VALUES {values}) AS fp"
            f" ON {self._STALE_PREDICATE}"
            " ORDER BY ti.user_id, ti.time",
            params,
        )
        return [(str(r["user_id"]), int(r["time"])) for r in rows]

    # ------------------------------------------------------------- leases

    #: The staleness join predicate against the fingerprint VALUES
    #: table.  The fingerprint mismatch is spelled ``< OR >`` rather
    #: than ``!=`` deliberately: an inequality cannot seek, so ``!=``
    #: degrades the ledger index to a full covering-index walk of each
    #: probed time partition (every fresh row visited and filtered),
    #: while the OR form becomes a MULTI-INDEX OR of two *range seeks*
    #: per partition that skip the contiguous fresh-fingerprint run
    #: entirely — a measured ~200× per claim round at 400k cells.  Both
    #: columns are NOT NULL text, so the forms are equivalent.
    _STALE_PREDICATE = (
        "ti.time = fp.column1"
        " AND (ti.model_fp < fp.column2 OR ti.model_fp > fp.column2)"
    )

    def _fingerprint_values(
        self, fingerprints: dict[int, str]
    ) -> tuple[str, list]:
        """``(values_sql, params)`` of the staleness predicate's
        ``(time, fingerprint)`` VALUES join — with
        :data:`_STALE_PREDICATE`, the one definition shared by
        :meth:`stale_cells`, the claim scan and the stale probe, so the
        three can never diverge on what "stale" means."""
        pairs = sorted((int(t), fp or "") for t, fp in fingerprints.items())
        ph = self._ph
        values = ", ".join(f"({ph}, {ph})" for _ in pairs)
        return values, [value for pair in pairs for value in pair]

    def clock_now(self) -> float:
        """Unix seconds read from the **store-side clock**.

        Lease arithmetic (claim expiry, renewal windows) uses this
        instead of ``time.time()`` by default: the value comes from an
        SQL expression the backend owns
        (:meth:`~repro.db.backends.StoreBackend.clock_sql`), so every
        worker of a shared store reads one clock source and host clock
        skew cannot shrink or stretch leases.  Tests (and callers that
        need a reproducible clock) keep passing ``now=`` explicitly.
        """
        row = self._conn.execute(
            f"SELECT {self._backend.clock_sql()}"
        ).fetchone()
        return float(row[0])

    def _begin_immediate(self) -> None:
        """Open an IMMEDIATE transaction (write lock on the main database
        up front).  Every process sharing a file-backed store — plain or
        sharded, whose router file is the main database — contends on
        that one lock, so everything until COMMIT is atomic across the
        worker pool."""
        if self._conn.in_transaction:
            raise StorageError(
                "cannot start a lease claim inside an open transaction"
            )
        try:
            self._conn.execute(self._backend.begin_immediate_sql())
        except sqlite3.Error as exc:
            raise StorageError(f"could not lock store for claim: {exc}") from exc

    def claim_stale_cells(
        self,
        fingerprints: dict[int, str],
        worker_id: str,
        *,
        limit: int = 4,
        lease_seconds: float = 30.0,
        now: float | None = None,
        exclude=(),
        prefer_schema: str | None = None,
    ) -> list[tuple[str, int]]:
        """Atomically lease up to ``limit`` stale cells to ``worker_id``.

        Walks :meth:`stale_cells` in its deterministic (user, time) order
        and writes a lease row for each cell that is unleased, expired,
        or already held by this worker (re-claiming one's own lease just
        extends it, so a retrying worker is idempotent).  The scan and
        all lease writes happen in **one** ``BEGIN IMMEDIATE``
        transaction, so two workers can never claim the same cell: the
        loser of the lock race sees the winner's fresh leases and skips
        them.

        ``now`` defaults to the store-side clock (:meth:`clock_now`,
        consistent across hosts sharing the store) and is injectable for
        tests; a lease is free again once ``lease_expires_at <= now``,
        which is how cells of crashed workers get recovered.
        ``exclude`` lists (user, time) cells to skip, e.g. cells this
        worker found uncomputable (no resumable session spec) that would
        otherwise be re-claimed forever.

        ``prefer_schema`` is the **shard-affinity** knob for worker
        pools on a sharded store: the claim scan drains that schema
        first (falling through to the others only when it has no stale
        cells left), so workers pinned to distinct shards upsert into
        distinct shard files and their writes never contend on one
        lock.  ``None`` keeps the global ledger order.  Returns the
        claimed cells.

        When a refresh budget is armed (:meth:`set_refresh_budget`),
        the claim is additionally capped at the budget's remaining
        cells, and the remainder is decremented by the number actually
        claimed — all inside the same ``BEGIN IMMEDIATE``, so
        concurrent workers can never jointly overspend the budget.  An
        exhausted budget claims nothing (workers observe this via
        :meth:`refresh_budget_remaining` and stop instead of spinning).
        """
        if limit < 1:
            raise StorageError("limit must be >= 1")
        now = float(self.clock_now() if now is None else now)
        expires = now + float(lease_seconds)
        excluded = {(str(u), int(t)) for u, t in exclude}
        claimed: list[tuple[str, int]] = []
        self._begin_immediate()
        try:
            budget_row = self._read(
                "SELECT remaining FROM main.refresh_budget WHERE id = 1"
            )
            scan_limit = int(limit)
            if budget_row:
                remaining = int(budget_row[0]["remaining"])
                if remaining <= 0:
                    self._conn.commit()
                    return []
                scan_limit = min(scan_limit, remaining)
            candidates = self._claimable_cells(
                fingerprints, worker_id, now, scan_limit + len(excluded),
                prefer_schema=prefer_schema,
            )
            for user_id, t in candidates:
                if len(claimed) >= scan_limit:
                    break
                if (user_id, t) in excluded:
                    continue
                db = self._db_for(user_id)
                ph = self._ph
                cursor = self._conn.execute(
                    f"""
                    INSERT INTO {db}.refresh_leases
                        (user_id, time, worker_id, lease_expires_at)
                    VALUES ({ph}, {ph}, {ph}, {ph})
                    ON CONFLICT (user_id, time) DO UPDATE SET
                        worker_id = excluded.worker_id,
                        lease_expires_at = excluded.lease_expires_at
                    WHERE refresh_leases.lease_expires_at <= {ph}
                       OR refresh_leases.worker_id = excluded.worker_id
                    """,
                    (user_id, t, str(worker_id), expires, now),
                )
                if cursor.rowcount:
                    claimed.append((user_id, t))
            if budget_row and claimed:
                self._conn.execute(
                    "UPDATE main.refresh_budget"
                    f" SET remaining = remaining - {self._ph} WHERE id = 1",
                    (len(claimed),),
                )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return claimed

    def _claim_scan_sql(
        self,
        db: str,
        fingerprints: dict[int, str],
        worker_id: str,
        now: float,
        limit: int,
    ) -> tuple[str, list]:
        """One schema's claim-round scan as ``(query, params)``.

        The lease filter runs inside SQL so a claim round is a bounded
        query instead of materialising the whole stale set under the
        write lock, and the ledger probe ``(ti.time = …, ti.model_fp !=
        …)`` is answered by the covering index
        ``idx_temporal_inputs_ledger`` — a partial scan over the stale
        rows only, not O(cells).  The scan addresses each schema's
        tables **directly** (not the sharded ``UNION ALL`` views: the
        planner satisfies the view's merge-ordering with full
        primary-key scans per shard, exactly the O(cells) walk the index
        exists to avoid).  Shared by :meth:`_claimable_cells`
        (execution) and :meth:`claim_query_plan` (EXPLAIN QUERY PLAN
        verification).

        **Priority ordering:** rows come back ``ORDER BY escalated
        DESC, priority DESC, user_id, time`` — SLA-escalated cells
        first, then the serving tier's decayed activity score (via a
        covering-index lookup into ``user_priority``; users without a
        score rank at 0.0), with the original deterministic ``(user,
        time)`` order as the tie-break.  A store with no priority rows
        and no escalations therefore claims in *exactly* the pre-
        priority ledger order, which the digest-identity suites pin.
        """
        values, fp_params = self._fingerprint_values(fingerprints)
        ph = self._ph
        query = (
            "SELECT ti.user_id AS user_id, ti.time AS time,"
            " COALESCE(up.score, 0.0) AS priority,"
            " CASE WHEN esc.user_id IS NULL THEN 0 ELSE 1 END AS escalated"
            f" FROM {db}.temporal_inputs AS ti"
            f" JOIN (VALUES {values}) AS fp"
            f" ON {self._STALE_PREDICATE}"
            f" LEFT JOIN {db}.user_priority AS up"
            " ON up.user_id = ti.user_id"
            f" LEFT JOIN {db}.refresh_escalations AS esc"
            " ON esc.user_id = ti.user_id AND esc.time = ti.time"
            f" LEFT JOIN {db}.refresh_leases AS rl"
            " ON rl.user_id = ti.user_id AND rl.time = ti.time"
            f" WHERE rl.user_id IS NULL OR rl.lease_expires_at <= {ph}"
            f" OR rl.worker_id = {ph}"
            " ORDER BY escalated DESC, priority DESC, ti.user_id, ti.time"
            f" LIMIT {ph}"
            f"{self._backend.for_update_suffix()}"
        )
        return query, [*fp_params, float(now), str(worker_id), int(limit)]

    def _claimable_cells(
        self,
        fingerprints: dict[int, str],
        worker_id: str,
        now: float,
        limit: int,
        prefer_schema: str | None = None,
    ) -> list[tuple[str, int]]:
        """Stale cells not blocked by a live foreign lease, in priority
        order, at most ``limit`` (see :meth:`_claim_scan_sql`).

        Each schema is scanned with its own bounded, index-backed query;
        the per-schema results (each already capped at ``limit``) are
        merged and re-capped here under the same ``(escalated DESC,
        priority DESC, user, time)`` order the per-schema SQL emits.
        Python tuple ordering on ``(user_id, time)`` matches SQLite's
        BINARY collation — UTF-8 byte order and code-point order agree —
        so with no priorities or escalations the merged order equals the
        global ledger order of :meth:`stale_cells`.

        With ``prefer_schema`` set (shard affinity), that schema is
        scanned first and later schemas only until the limit fills —
        the claim order becomes shard-local priority order, still
        deterministic for a given lease/priority state.
        """
        if not fingerprints or limit < 1:
            return []
        schemas = list(self._backend.schemas())
        affinity = prefer_schema in schemas
        if affinity:
            schemas.remove(prefer_schema)
            schemas.insert(0, prefer_schema)
        cells: list[tuple[int, float, str, int]] = []
        for db in schemas:
            query, params = self._claim_scan_sql(
                db, fingerprints, worker_id, now, limit - len(cells) if affinity else limit
            )
            cells.extend(
                (
                    -int(r["escalated"]),
                    -float(r["priority"]),
                    str(r["user_id"]),
                    int(r["time"]),
                )
                for r in self._read(query, params)
            )
            if affinity and len(cells) >= limit:
                break
        if not affinity:
            cells.sort()
        return [(user_id, t) for _, _, user_id, t in cells[:limit]]

    def claim_query_plan(
        self, fingerprints: dict[int, str] | None = None
    ) -> list[str]:
        """``EXPLAIN QUERY PLAN`` detail lines of the claim scan.

        Scale guard-rail introspection: tests and benchmarks assert
        every schema's plan SEARCHes ``temporal_inputs`` via the
        covering ledger index (``idx_temporal_inputs_ledger``), never a
        table scan.  On a populated ledger the plan is a MULTI-INDEX OR
        of two *range* seeks (``model_fp<?`` / ``model_fp>?``) per time
        partition — what actually skips the fresh rows; on a near-empty
        store the cost model may collapse to a single ``time=?`` probe,
        which is equivalent there.  ``fingerprints`` defaults to a
        representative single-entry map.  Returns the concatenated
        detail lines of every schema's plan.
        """
        fingerprints = fingerprints or {0: "fp0"}
        details: list[str] = []
        for db in self._backend.schemas():
            query, params = self._claim_scan_sql(db, fingerprints, "plan", 0.0, 1)
            details.extend(
                str(row[-1])
                for row in self._read("EXPLAIN QUERY PLAN " + query, params)
            )
        return details

    def has_stale_cells(
        self, fingerprints: dict[int, str], exclude=()
    ) -> bool:
        """Whether any stale cell remains outside ``exclude`` —
        regardless of leases.  Workers use this to distinguish "queue
        drained" from "remaining cells are leased to someone else"
        (the latter may become claimable again if that worker dies).

        Workers poll this once per wait cycle, so like the claim scan
        it addresses each schema's tables directly (index-backed ledger
        probe) instead of materialising the whole stale set through the
        sharded views.  The exclusion filter stays in Python — binding
        it as SQL parameters would hit SQLite's variable limit on large
        unrecoverable sets — but stays bounded: each schema fetches at
        most ``len(exclude) + 1`` rows, and by pigeonhole any full fetch
        must contain a non-excluded stale cell.
        """
        if not fingerprints:
            return False
        excluded = {(str(u), int(t)) for u, t in exclude}
        values, params = self._fingerprint_values(fingerprints)
        limit = len(excluded) + 1
        for db in self._backend.schemas():
            rows = self._read(
                "SELECT ti.user_id AS user_id, ti.time AS time"
                f" FROM {db}.temporal_inputs AS ti"
                f" JOIN (VALUES {values}) AS fp"
                f" ON {self._STALE_PREDICATE}"
                f" LIMIT {self._ph}",
                [*params, limit],
            )
            if any(
                (str(r["user_id"]), int(r["time"])) not in excluded
                for r in rows
            ):
                return True
        return False

    def renew_leases(
        self,
        worker_id: str,
        cells,
        *,
        lease_seconds: float = 30.0,
        now: float | None = None,
    ) -> int:
        """Extend this worker's live leases on ``cells``; returns how many
        were actually renewed.  A lease that already expired is *not*
        renewed (another worker may have legitimately reclaimed the
        cell), so a return value below ``len(cells)`` tells the worker
        to drop the lost cells instead of writing a result it no longer
        owns.  ``now`` defaults to the store-side clock
        (:meth:`clock_now`)."""
        now = float(self.clock_now() if now is None else now)
        expires = now + float(lease_seconds)
        ph = self._ph
        renewed = 0
        # routed per shard (each cell is an independent conditional
        # update, so no cross-shard transaction is needed): a worker's
        # renewals never contend with another shard's writers
        for db, db_cells in self._cells_by_db(cells).items():
            conn, prefix = self._write_target(db)
            with conn:
                for user_id, t in db_cells:
                    cursor = conn.execute(
                        f"UPDATE {prefix}.refresh_leases SET lease_expires_at = {ph}"
                        f" WHERE user_id = {ph} AND time = {ph} AND worker_id = {ph}"
                        f" AND lease_expires_at > {ph}",
                        (expires, user_id, t, str(worker_id), now),
                    )
                    renewed += cursor.rowcount
        return renewed

    def _cells_by_db(self, cells) -> dict[str, list[tuple[str, int]]]:
        """Group (user, time) cells by owning schema, input order kept."""
        grouped: dict[str, list[tuple[str, int]]] = {}
        for user_id, t in cells:
            grouped.setdefault(self._db_for(str(user_id)), []).append(
                (str(user_id), int(t))
            )
        return grouped

    def release_cells(self, worker_id: str, cells) -> int:
        """Drop this worker's lease rows for ``cells`` (after the cell's
        recompute was upserted, or to hand an unprocessed cell back to
        the pool early).  Releasing a cell leased to another worker is a
        no-op.  Returns the number of leases released."""
        ph = self._ph
        released = 0
        for db, db_cells in self._cells_by_db(cells).items():
            conn, prefix = self._write_target(db)
            with conn:
                for user_id, t in db_cells:
                    cursor = conn.execute(
                        f"DELETE FROM {prefix}.refresh_leases"
                        f" WHERE user_id = {ph} AND time = {ph} AND worker_id = {ph}",
                        (user_id, t, str(worker_id)),
                    )
                    released += cursor.rowcount
        return released

    def prune_expired_leases(self, now: float | None = None) -> int:
        """Delete lease rows that already expired; returns how many.

        Hygiene for the lease table: a worker that upserted a cell but
        died before releasing it leaves a lease row behind even though
        the cell is fresh (so no survivor ever claims — and thereby
        overwrites — the row).  Workers call this once their drain ends;
        only rows with ``lease_expires_at <= now`` go, so live foreign
        leases are never touched.  ``now`` defaults to the store-side
        clock (:meth:`clock_now`).
        """
        now = float(self.clock_now() if now is None else now)
        pruned = 0
        with self._conn:
            for db in self._backend.schemas():
                cursor = self._conn.execute(
                    f"DELETE FROM {db}.refresh_leases"
                    f" WHERE lease_expires_at <= {self._ph}",
                    (now,),
                )
                pruned += cursor.rowcount
        return pruned

    def lease_rows(self) -> list[tuple[str, int, str, float]]:
        """Current lease table, ``(user_id, time, worker_id,
        lease_expires_at)`` ordered by (user, time) — monitoring and
        test introspection."""
        rows = self._read(
            "SELECT user_id, time, worker_id, lease_expires_at"
            " FROM refresh_leases ORDER BY user_id, time"
        )
        return [
            (
                str(r["user_id"]),
                int(r["time"]),
                str(r["worker_id"]),
                float(r["lease_expires_at"]),
            )
            for r in rows
        ]

    # --------------------------------------------------- leader election
    #
    # The worker-lease machinery generalised to a single seat: N
    # orchestrator processes campaign over `main.leader_lease` and the
    # store clock — never host clocks — arbitrates who leads.  The
    # monotonically increasing `epoch` is a fencing token: every write
    # a leader makes on behalf of its leadership (checkpoints, drain
    # dispatch) first proves `(leader_id, epoch)` is still the live
    # seat, so a deposed leader that wakes up late is rejected instead
    # of silently merging its stale state over the new leader's.

    def acquire_leader_lease(
        self,
        node_id: str,
        *,
        ttl_seconds: float = 30.0,
        now: float | None = None,
    ) -> int | None:
        """Campaign for the leader seat; returns the fencing ``epoch``
        on success, ``None`` while another node's lease is live.

        Exactly one of three things happens, all inside one ``BEGIN
        IMMEDIATE`` so two campaigners can never both win:

        - no seat yet → take it at epoch 1;
        - this node already holds a live seat → renew in place (same
          epoch — re-campaigning is idempotent, like re-claiming one's
          own cell lease);
        - the seat's lease expired → take over at ``epoch + 1`` (the
          increment is what fences the previous leader's late writes).

        ``now`` defaults to the store-side clock (:meth:`clock_now`)
        and is injectable for tests.
        """
        now = float(self.clock_now() if now is None else now)
        expires = now + float(ttl_seconds)
        node_id = str(node_id)
        ph = self._ph
        self._begin_immediate()
        try:
            rows = self._read(
                "SELECT leader_id, epoch, lease_expires_at"
                " FROM main.leader_lease WHERE id = 1"
            )
            epoch: int | None
            if not rows:
                self._conn.execute(
                    "INSERT INTO main.leader_lease"
                    " (id, leader_id, epoch, acquired_at, renewed_at,"
                    " lease_expires_at)"
                    f" VALUES (1, {ph}, 1, {ph}, {ph}, {ph})",
                    (node_id, now, now, expires),
                )
                epoch = 1
            elif (
                str(rows[0]["leader_id"]) == node_id
                and float(rows[0]["lease_expires_at"]) > now
            ):
                epoch = int(rows[0]["epoch"])
                self._conn.execute(
                    "UPDATE main.leader_lease"
                    f" SET renewed_at = {ph}, lease_expires_at = {ph}"
                    " WHERE id = 1",
                    (now, expires),
                )
            elif float(rows[0]["lease_expires_at"]) <= now:
                epoch = int(rows[0]["epoch"]) + 1
                self._conn.execute(
                    "UPDATE main.leader_lease"
                    f" SET leader_id = {ph}, epoch = {ph}, acquired_at = {ph},"
                    f" renewed_at = {ph}, lease_expires_at = {ph}"
                    " WHERE id = 1",
                    (node_id, epoch, now, now, expires),
                )
            else:
                epoch = None
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return epoch

    def renew_leader_lease(
        self,
        node_id: str,
        epoch: int,
        *,
        ttl_seconds: float = 30.0,
        now: float | None = None,
    ) -> bool:
        """Heartbeat: extend the lease iff this node still holds the
        seat *at this epoch* and the lease has not already expired (an
        expired lease may have been taken over, so renewing it would
        resurrect a deposed leader).  Returns whether the seat is still
        held — ``False`` tells the caller to stop leading immediately.
        """
        now = float(self.clock_now() if now is None else now)
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE main.leader_lease"
                f" SET renewed_at = {self._ph}, lease_expires_at = {self._ph}"
                f" WHERE id = 1 AND leader_id = {self._ph}"
                f" AND epoch = {self._ph} AND lease_expires_at > {self._ph}",
                (now, now + float(ttl_seconds), str(node_id), int(epoch), now),
            )
        return bool(cursor.rowcount)

    def resign_leader_lease(
        self, node_id: str, epoch: int, *, now: float | None = None
    ) -> bool:
        """Step down cleanly: expire (never delete) this node's lease so
        a standby can take over without waiting out the TTL.  The row —
        and its ``epoch`` — stays, keeping the fencing token monotonic
        across leaderships.  A resign by a node that no longer holds the
        seat is a no-op; returns whether the seat was released.
        """
        now = float(self.clock_now() if now is None else now)
        with self._conn:
            cursor = self._conn.execute(
                f"UPDATE main.leader_lease SET lease_expires_at = {self._ph}"
                f" WHERE id = 1 AND leader_id = {self._ph}"
                f" AND epoch = {self._ph} AND lease_expires_at > {self._ph}",
                (now, str(node_id), int(epoch), now),
            )
        return bool(cursor.rowcount)

    def verify_leader(
        self, node_id: str, epoch: int, *, now: float | None = None
    ) -> bool:
        """Whether ``(node_id, epoch)`` is the live seat right now —
        the fencing check run before every leadership-scoped write."""
        now = float(self.clock_now() if now is None else now)
        rows = self._read(
            "SELECT 1 FROM main.leader_lease"
            f" WHERE id = 1 AND leader_id = {self._ph}"
            f" AND epoch = {self._ph} AND lease_expires_at > {self._ph}",
            (str(node_id), int(epoch), now),
        )
        return bool(rows)

    def leader_status(self, *, now: float | None = None) -> dict | None:
        """Current seat as a dict (monitoring / ``orchestrator-status``),
        or ``None`` when no node has ever campaigned.  ``lease_age`` is
        seconds since the last heartbeat, on the store clock."""
        now = float(self.clock_now() if now is None else now)
        rows = self._read(
            "SELECT leader_id, epoch, acquired_at, renewed_at,"
            " lease_expires_at FROM main.leader_lease WHERE id = 1"
        )
        if not rows:
            return None
        row = rows[0]
        expires = float(row["lease_expires_at"])
        return {
            "leader_id": str(row["leader_id"]),
            "epoch": int(row["epoch"]),
            "acquired_at": float(row["acquired_at"]),
            "renewed_at": float(row["renewed_at"]),
            "lease_expires_at": expires,
            "lease_age": max(0.0, now - float(row["renewed_at"])),
            "expired": expires <= now,
        }

    def set_orchestrator_metrics(
        self, payload: dict, *, now: float | None = None
    ) -> None:
        """Durably publish the orchestrator's health/metrics snapshot
        (coordinator state, digest-excluded) for the serving tier and
        ``orchestrator-status`` to read without sharing its process."""
        now = float(self.clock_now() if now is None else now)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._conn:
            self._conn.execute(
                "INSERT INTO main.orchestrator_metrics (id, updated_at, payload)"
                f" VALUES (1, {self._ph}, {self._ph})"
                " ON CONFLICT (id) DO UPDATE SET"
                " updated_at = excluded.updated_at,"
                " payload = excluded.payload",
                (now, blob),
            )

    def orchestrator_metrics(self) -> dict | None:
        """Last published snapshot as ``{"updated_at": ts, "metrics":
        {...}}``, or ``None`` before any orchestrator checkpointed."""
        rows = self._read(
            "SELECT updated_at, payload FROM main.orchestrator_metrics"
            " WHERE id = 1"
        )
        if not rows:
            return None
        return {
            "updated_at": float(rows[0]["updated_at"]),
            "metrics": json.loads(str(rows[0]["payload"])),
        }

    # ----------------------------------------- priority / budget / freshness

    def set_refresh_budget(self, remaining: int | None) -> None:
        """Arm (or clear) the durable per-epoch refresh budget.

        The budget lives in ``main.refresh_budget`` — coordinator
        state, not shard data, so it is excluded from
        :meth:`contents_digest` and survives worker crashes: each
        :meth:`claim_stale_cells` decrements it inside the claim's own
        ``BEGIN IMMEDIATE``.  ``None`` deletes the row, returning the
        store to unlimited draining.
        """
        with self._conn:
            if remaining is None:
                self._conn.execute("DELETE FROM main.refresh_budget WHERE id = 1")
            else:
                self._conn.execute(
                    "INSERT INTO main.refresh_budget (id, remaining)"
                    f" VALUES (1, {self._ph})"
                    " ON CONFLICT (id) DO UPDATE SET remaining = excluded.remaining",
                    (int(remaining),),
                )

    def refresh_budget_remaining(self) -> int | None:
        """Cells the armed budget still allows, or ``None`` when no
        budget is armed (unlimited).  Never negative."""
        rows = self._read("SELECT remaining FROM main.refresh_budget WHERE id = 1")
        if not rows:
            return None
        return max(0, int(rows[0]["remaining"]))

    def record_accesses(self, entries, now: float | None = None) -> int:
        """Append serving-tier read events to the ``access_log``.

        ``entries`` is an iterable of ``(user_id, question, ts)``;
        ``ts=None`` stamps the event with ``now`` (store-side clock by
        default).  Rows are routed to the user's shard so the serving
        tier's fire-and-forget batches never contend on one write lock.
        Returns the number of rows written.  The log is raw material
        for :meth:`materialize_priorities`; it is not part of
        :meth:`contents_digest`.
        """
        entries = [
            (str(user), str(question), None if ts is None else float(ts))
            for user, question, ts in entries
        ]
        if not entries:
            return 0
        if any(ts is None for _, _, ts in entries):
            now = float(self.clock_now() if now is None else now)
        ph = self._ph
        grouped: dict[str, list[tuple[str, str, float]]] = {}
        for user, question, ts in entries:
            grouped.setdefault(self._db_for(user), []).append(
                (user, question, now if ts is None else ts)
            )
        written = 0
        for db, rows in grouped.items():
            conn, prefix = self._write_target(db)
            with conn:
                conn.executemany(
                    f"INSERT INTO {prefix}.access_log"
                    f" (user_id, question, accessed_at) VALUES ({ph}, {ph}, {ph})",
                    rows,
                )
            written += len(rows)
        return written

    def materialize_priorities(
        self, *, now: float | None = None, halflife_seconds: float = 3600.0
    ) -> dict[str, float]:
        """Fold the ``access_log`` into decayed ``user_priority`` scores.

        Exponential decay with the given half-life: an existing score is
        decayed from its ``updated_at`` to ``now``, each logged access
        contributes ``0.5 ** (age / halflife)``, and the merged score is
        re-stamped at ``now``.  Each shard folds its own log inside one
        transaction (read → delete → upsert), so a concurrent
        :meth:`record_accesses` batch either lands before the fold or
        survives for the next one — never lost.  Returns the merged
        ``{user_id: score}`` mapping across all shards.
        """
        now = float(self.clock_now() if now is None else now)
        halflife = float(halflife_seconds)
        if halflife <= 0:
            raise StorageError("halflife_seconds must be > 0")
        ph = self._ph
        merged: dict[str, float] = {}
        for db in self._backend.schemas():
            conn, prefix = self._write_target(db)
            with conn:
                accesses = conn.execute(
                    f"SELECT user_id, accessed_at FROM {prefix}.access_log"
                ).fetchall()
                old = conn.execute(
                    f"SELECT user_id, score, updated_at FROM {prefix}.user_priority"
                ).fetchall()
                conn.execute(f"DELETE FROM {prefix}.access_log")
                scores: dict[str, float] = {}
                for user, score, updated in old:
                    age = max(0.0, now - float(updated))
                    scores[str(user)] = float(score) * 0.5 ** (age / halflife)
                for user, ts in accesses:
                    age = max(0.0, now - float(ts))
                    user = str(user)
                    scores[user] = scores.get(user, 0.0) + 0.5 ** (age / halflife)
                conn.executemany(
                    f"INSERT INTO {prefix}.user_priority"
                    f" (user_id, score, updated_at) VALUES ({ph}, {ph}, {ph})"
                    " ON CONFLICT (user_id) DO UPDATE SET"
                    " score = excluded.score, updated_at = excluded.updated_at",
                    [(user, score, now) for user, score in scores.items()],
                )
            merged.update(scores)
        return merged

    def set_user_priorities(
        self, scores: dict[str, float], now: float | None = None
    ) -> None:
        """Directly upsert priority scores (tests, benchmarks, and
        operators overriding the access-log feedback path)."""
        if not scores:
            return
        now = float(self.clock_now() if now is None else now)
        ph = self._ph
        grouped: dict[str, list[tuple[str, float, float]]] = {}
        for user, score in scores.items():
            grouped.setdefault(self._db_for(str(user)), []).append(
                (str(user), float(score), now)
            )
        for db, rows in grouped.items():
            conn, prefix = self._write_target(db)
            with conn:
                conn.executemany(
                    f"INSERT INTO {prefix}.user_priority"
                    f" (user_id, score, updated_at) VALUES ({ph}, {ph}, {ph})"
                    " ON CONFLICT (user_id) DO UPDATE SET"
                    " score = excluded.score, updated_at = excluded.updated_at",
                    rows,
                )

    def user_priorities(self) -> dict[str, float]:
        """Current ``{user_id: score}`` across all shards."""
        rows = self._read("SELECT user_id, score FROM user_priority")
        return {str(r["user_id"]): float(r["score"]) for r in rows}

    def escalate_cells(self, cells) -> None:
        """Mark cells as SLA-escalated: the claim scan orders them ahead
        of every score (``escalated DESC`` leads the ORDER BY), so a
        cell stale past its SLA drains first regardless of traffic."""
        ph = self._ph
        for db, db_cells in self._cells_by_db(cells).items():
            conn, prefix = self._write_target(db)
            with conn:
                conn.executemany(
                    f"INSERT OR REPLACE INTO {prefix}.refresh_escalations"
                    f" (user_id, time) VALUES ({ph}, {ph})",
                    db_cells,
                )

    def clear_escalations(self, cells=None) -> int:
        """Drop escalation marks — all of them (``cells=None``, e.g. at
        the top of an epoch before re-deriving the overdue set) or a
        specific list.  Returns the number of rows removed."""
        ph = self._ph
        removed = 0
        if cells is None:
            for db in self._backend.schemas():
                conn, prefix = self._write_target(db)
                with conn:
                    cursor = conn.execute(
                        f"DELETE FROM {prefix}.refresh_escalations"
                    )
                    removed += cursor.rowcount
            return removed
        for db, db_cells in self._cells_by_db(cells).items():
            conn, prefix = self._write_target(db)
            with conn:
                for user_id, t in db_cells:
                    cursor = conn.execute(
                        f"DELETE FROM {prefix}.refresh_escalations"
                        f" WHERE user_id = {ph} AND time = {ph}",
                        (user_id, t),
                    )
                    removed += cursor.rowcount
        return removed

    def traffic_weighted_freshness(
        self, fingerprints: dict[int, str]
    ) -> dict:
        """Freshness of the store as read traffic would experience it.

        A cell is stale when its ledger fingerprint differs from the
        current one in ``fingerprints`` (times absent from
        ``fingerprints`` don't count either way, matching
        :meth:`stale_cells`).  Each user's fresh fraction is weighted by
        their priority score, so the headline number answers "what
        fraction of *traffic* is served fresh", not "what fraction of
        cells is fresh".  Users without a score weigh 0; when no user
        has positive weight the weighted number falls back to the
        unweighted mean.
        """
        ledger = self.ledger_snapshot()
        weights = self.user_priorities()
        total_cells = 0
        stale_cells = 0
        fractions: dict[str, float] = {}
        for user, times in ledger.items():
            considered = 0
            stale = 0
            for t, fp in times.items():
                current = fingerprints.get(t)
                if current is None:
                    continue
                considered += 1
                if fp != current:
                    stale += 1
            total_cells += considered
            stale_cells += stale
            fractions[user] = (
                1.0 if considered == 0 else (considered - stale) / considered
            )
        total_weight = sum(weights.get(user, 0.0) for user in fractions)
        if total_weight > 0:
            weighted = (
                sum(
                    weights.get(user, 0.0) * frac
                    for user, frac in fractions.items()
                )
                / total_weight
            )
        elif fractions:
            weighted = sum(fractions.values()) / len(fractions)
        else:
            weighted = 1.0
        return {
            "users": len(fractions),
            "cells": total_cells,
            "stale_cells": stale_cells,
            "fresh_fraction": (
                1.0 if total_cells == 0
                else (total_cells - stale_cells) / total_cells
            ),
            "weighted_fresh_fraction": weighted,
        }

    def freshness_report(self, now: float | None = None) -> dict:
        """Age-based freshness summary from the ``refreshed_at`` stamps.

        Per user the *oldest* backing cell bounds how stale any answer
        for that user can be; the report aggregates that bound across
        users (max and priority-weighted mean).  Rows written before the
        stamp column existed carry ``refreshed_at = 0`` and are counted
        separately as ``unstamped_users`` instead of polluting the ages.
        """
        now = float(self.clock_now() if now is None else now)
        rows = self._read(
            "SELECT user_id, MIN(refreshed_at) AS oldest"
            " FROM temporal_inputs GROUP BY user_id"
        )
        weights = self.user_priorities()
        ages: dict[str, float] = {}
        unstamped = 0
        for r in rows:
            oldest = float(r["oldest"])
            if oldest <= 0:
                unstamped += 1
                continue
            ages[str(r["user_id"])] = max(0.0, now - oldest)
        total_weight = sum(weights.get(user, 0.0) for user in ages)
        if total_weight > 0:
            weighted_mean = (
                sum(weights.get(user, 0.0) * age for user, age in ages.items())
                / total_weight
            )
        elif ages:
            weighted_mean = sum(ages.values()) / len(ages)
        else:
            weighted_mean = 0.0
        return {
            "users": len(ages) + unstamped,
            "unstamped_users": unstamped,
            "max_age": max(ages.values(), default=0.0),
            "mean_age": (
                sum(ages.values()) / len(ages) if ages else 0.0
            ),
            "weighted_mean_age": weighted_mean,
            "now": now,
        }

    # -------------------------------------------------------------- reads

    def cell_vectors(self, user_id: str, time: int) -> np.ndarray:
        """Stored candidate feature vectors of one cell, shape ``(n, d)``.

        Insertion-ordered (by rowid); the warm-start path feeds these to
        the beam as seed states.
        """
        rows = self._read(
            "SELECT * FROM candidates WHERE user_id = ? AND time = ?"
            " ORDER BY id",
            (user_id, int(time)),
        )
        if not rows:
            return np.empty((0, len(self.schema)))
        return np.vstack([self.row_to_vector(row) for row in rows])

    def load_candidates(
        self, user_id: str, time: int | None = None
    ) -> list[Candidate]:
        """Reconstruct the user's :class:`Candidate` objects from rows,
        optionally restricted to one time point (the warm-start top-m
        selection ranks a single cell's stored candidates)."""
        if time is None:
            rows = self._read(
                "SELECT * FROM candidates WHERE user_id = ? ORDER BY time, id",
                (user_id,),
            )
        else:
            rows = self._read(
                "SELECT * FROM candidates WHERE user_id = ? AND time = ?"
                " ORDER BY id",
                (user_id, int(time)),
            )
        return [
            Candidate(
                self.row_to_vector(row),
                int(row["time"]),
                CandidateMetrics(
                    diff=float(row["diff"]),
                    gap=int(row["gap"]),
                    confidence=float(row["p"]),
                ),
                plan_rank=(
                    -1 if row["plan_rank"] is None else int(row["plan_rank"])
                ),
                plan_quality=(
                    None
                    if row["plan_quality"] is None
                    else float(row["plan_quality"])
                ),
                plan_min_dist=(
                    None
                    if row["plan_min_dist"] is None
                    else float(row["plan_min_dist"])
                ),
            )
            for row in rows
        ]

    def load_session_specs(self) -> list[tuple[str, np.ndarray, list[str] | None]]:
        """Persisted session specs: ``(user_id, profile, constraint_texts)``."""
        rows = self._read(
            "SELECT user_id, profile, constraints FROM user_sessions"
            " ORDER BY user_id"
        )
        specs = []
        for row in rows:
            constraints = (
                None
                if row["constraints"] is None
                else list(json.loads(row["constraints"]))
            )
            specs.append(
                (
                    str(row["user_id"]),
                    np.asarray(json.loads(row["profile"]), dtype=float),
                    constraints,
                )
            )
        return specs

    def row_to_vector(self, row: sqlite3.Row) -> np.ndarray:
        """Extract the feature vector from any row with feature columns."""
        return np.array([row[name] for name in self.schema.names], dtype=float)

    def contents_digest(self) -> str:
        """SHA-256 over the store's canonical logical contents.

        Two stores holding the same sessions, temporal inputs and
        candidates produce the same digest **regardless of which worker
        wrote which cell**: rows are serialised in (user, time) order and
        the ``candidates.id`` autoincrement — pure storage metadata whose
        global values depend on cell *completion* order across a worker
        pool — is excluded.  Per-cell candidate order is preserved (rows
        of one cell are written by a single worker in generation order,
        so ``id`` still sorts them within the cell).  This is the
        identity check behind "an N-process refresh equals the
        single-process refresh byte for byte".

        Plan-set metadata (``plan_rank``/``plan_quality``/
        ``plan_min_dist``) is folded in only for rows that carry it
        (``plan_rank >= 0``): rows without a stored plan set — legacy
        databases, candidates stored by hand — serialise exactly as they
        did before the columns existed, so historical digests remain
        comparable.
        """
        digest = hashlib.sha256()
        feature_cols = ", ".join(self.schema.names)
        for row in self._read(
            f"SELECT user_id, time, {feature_cols}, model_fp"
            " FROM temporal_inputs ORDER BY user_id, time"
        ):
            digest.update(repr(tuple(row)).encode())
        for row in self._read(
            f"SELECT user_id, time, {feature_cols}, diff, gap, p, model_fp,"
            " plan_rank, plan_quality, plan_min_dist"
            " FROM candidates ORDER BY user_id, time, id"
        ):
            values = tuple(row)
            digest.update(repr(values[:-3]).encode())
            rank = values[-3]
            if rank is not None and int(rank) >= 0:
                digest.update(repr(values[-3:]).encode())
        for row in self._read(
            "SELECT user_id, profile, constraints FROM user_sessions"
            " ORDER BY user_id"
        ):
            digest.update(repr(tuple(row)).encode())
        return digest.hexdigest()


# --------------------------------------------------------------- write ops
#
# One shard-local unit of a grouped write.  Rows are marshalled (and
# validated) at construction time — before any transaction opens — and
# both methods run inside the owning shard's transaction: ``undo``
# SELECTs the pre-write state into a JSON-able payload (phase-1
# journalling; only invoked on the multi-shard two-phase path, and
# floats survive the JSON round trip exactly — Python serialises them
# via shortest-round-trip repr), ``apply`` executes the deletes/inserts
# and returns the number of candidate rows written.


def _dump_rows(conn, sql: str, params) -> list[list]:
    return [list(row) for row in conn.execute(sql, params).fetchall()]


class _CellWrite:
    """Replace one (user, time) cell — see :meth:`CandidateStore.upsert_cells`."""

    __slots__ = ("user_id", "time", "rows", "ledger_fp", "x_row", "stamp")

    def __init__(self, store, user_id, time, candidates, x_t, fingerprints, stamp):
        self.user_id = str(user_id)
        self.time = int(time)
        self.stamp = float(stamp)
        self.rows = store._candidate_rows(self.user_id, candidates, fingerprints)
        for row in self.rows:
            if int(row[1]) != self.time:
                raise StorageError(
                    f"candidate for time {row[1]} in cell"
                    f" ({self.user_id!r}, {self.time})"
                )
        self.ledger_fp = fingerprints.get(self.time) or ""
        if x_t is None:
            self.x_row = None
        else:
            vector = np.asarray(x_t, dtype=float).ravel()
            if vector.size != len(store.schema):
                raise StorageError(
                    f"x_t has {vector.size} entries, schema"
                    f" expects {len(store.schema)}"
                )
            self.x_row = (
                self.user_id, self.time, *map(float, vector), self.ledger_fp,
                self.stamp,
            )

    def undo(self, store, conn, prefix) -> dict:
        ph = store._ph
        cand_cols, input_cols = store._undo_columns()
        ledger = conn.execute(
            f"SELECT {', '.join(input_cols)} FROM {prefix}.temporal_inputs"
            f" WHERE user_id = {ph} AND time = {ph}",
            (self.user_id, self.time),
        ).fetchone()
        return {
            "kind": "cell",
            "user": self.user_id,
            "time": self.time,
            "candidates": _dump_rows(
                conn,
                f"SELECT {', '.join(cand_cols)} FROM {prefix}.candidates"
                f" WHERE user_id = {ph} AND time = {ph} ORDER BY id",
                (self.user_id, self.time),
            ),
            "ledger": None if ledger is None else list(ledger),
        }

    def apply(self, store, conn, prefix) -> int:
        ph = store._ph
        conn.execute(
            f"DELETE FROM {prefix}.candidates"
            f" WHERE user_id = {ph} AND time = {ph}",
            (self.user_id, self.time),
        )
        conn.executemany(
            store._insert_sql(prefix, "candidates", store._CANDIDATE_EXTRA),
            self.rows,
        )
        cursor = conn.execute(
            f"UPDATE {prefix}.temporal_inputs SET model_fp = {ph},"
            f" refreshed_at = {ph}"
            f" WHERE user_id = {ph} AND time = {ph}",
            (self.ledger_fp, self.stamp, self.user_id, self.time),
        )
        if cursor.rowcount == 0:
            if self.x_row is None:
                raise StorageError(
                    f"cell ({self.user_id!r}, {self.time}) has no"
                    " temporal_inputs row; pass x_t to restore it"
                )
            conn.execute(
                store._insert_sql(
                    prefix, "temporal_inputs", ("model_fp", "refreshed_at")
                ),
                self.x_row,
            )
        return len(self.rows)


class _SessionWrite:
    """Replace one user's full horizon — the per-user unit of
    :meth:`CandidateStore.store_sessions`."""

    __slots__ = ("user_id", "input_rows", "cand_rows")

    def __init__(self, store, user_id, trajectory, candidates, fingerprints,
                 stamp=None):
        self.user_id = str(user_id)
        self.input_rows = store._input_rows(
            user_id, trajectory, fingerprints, stamp=stamp
        )
        self.cand_rows = store._candidate_rows(user_id, candidates, fingerprints)

    def undo(self, store, conn, prefix) -> dict:
        ph = store._ph
        cand_cols, input_cols = store._undo_columns()
        return {
            "kind": "user",
            "user": self.user_id,
            "candidates": _dump_rows(
                conn,
                f"SELECT {', '.join(cand_cols)} FROM {prefix}.candidates"
                f" WHERE user_id = {ph} ORDER BY id",
                (self.user_id,),
            ),
            "inputs": _dump_rows(
                conn,
                f"SELECT {', '.join(input_cols)} FROM {prefix}.temporal_inputs"
                f" WHERE user_id = {ph} ORDER BY time",
                (self.user_id,),
            ),
        }

    def apply(self, store, conn, prefix) -> int:
        ph = store._ph
        conn.execute(
            f"DELETE FROM {prefix}.candidates WHERE user_id = {ph}",
            (self.user_id,),
        )
        conn.execute(
            f"DELETE FROM {prefix}.temporal_inputs WHERE user_id = {ph}",
            (self.user_id,),
        )
        conn.executemany(
            store._insert_sql(
                prefix, "temporal_inputs", ("model_fp", "refreshed_at")
            ),
            self.input_rows,
        )
        conn.executemany(
            store._insert_sql(prefix, "candidates", store._CANDIDATE_EXTRA),
            self.cand_rows,
        )
        return len(self.cand_rows)


class _SpecWrite:
    """Persist one session spec (``user_sessions`` upsert)."""

    __slots__ = ("row",)

    def __init__(self, store, spec):
        self.row = store._spec_row(*spec)

    def undo(self, store, conn, prefix) -> dict:
        existing = conn.execute(
            f"SELECT user_id, profile, constraints FROM {prefix}.user_sessions"
            f" WHERE user_id = {store._ph}",
            (self.row[0],),
        ).fetchone()
        return {
            "kind": "spec",
            "user": self.row[0],
            "session": None if existing is None else list(existing),
        }

    def apply(self, store, conn, prefix) -> int:
        ph = store._ph
        conn.execute(
            f"INSERT OR REPLACE INTO {prefix}.user_sessions"
            f" (user_id, profile, constraints) VALUES ({ph}, {ph}, {ph})",
            self.row,
        )
        return 0
