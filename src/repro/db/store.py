"""Relational candidate store over pluggable SQLite backends.

The original system stores generated candidates in MySQL; the schema here
mirrors the paper's two relations (SQLite executes the same SQL92 the
paper's Figure 2 shows):

``temporal_inputs(user_id, time, <feature columns...>, model_fp)``
    The future representations ``x_0 .. x_T`` of each user's profile.
    ``model_fp`` records the content fingerprint of the future model the
    cell's candidates were last computed under — one row per (user, t)
    cell, so it doubles as the refresh subsystem's staleness ledger.

``candidates(id, user_id, time, <feature columns...>, diff, gap, p, model_fp)``
    The per-time-point decision-altering candidates; ``p`` is the model
    confidence (the paper's Q5 orders by ``p``), ``diff``/``gap`` the two
    distance properties, ``model_fp`` the producing model's fingerprint.

``user_sessions(user_id, profile, constraints)``
    Session specs (profile vector + DSL constraint texts as JSON) so a
    long-running service can rehydrate sessions after a restart and
    refresh them.

``refresh_leases(user_id, time, worker_id, lease_expires_at)``
    Cross-process refresh coordination: a worker that intends to
    recompute a stale (user, t) cell first *claims* it by writing a
    lease row.  Claims are atomic (``BEGIN IMMEDIATE`` serialises them
    on the main database's write lock, which every process of a shared
    file-backed store contends on), so a pool of worker processes can
    drain :meth:`CandidateStore.stale_cells` concurrently without
    double-computing; expired leases are reclaimable, which is how the
    pool recovers cells from crashed workers.  Lease timestamps default
    to the **store-side clock** (:meth:`CandidateStore.clock_now`,
    backed by ``julianday('now')``) so hosts sharing a store agree on
    expiry, and the claim scan is answered by the covering
    ``idx_temporal_inputs_ledger`` index — a partial scan over the
    stale rows, not O(cells) per round.

Feature columns are generated from the dataset schema; names are
validated as SQL identifiers.  All user-supplied *values* go through
parametrised statements.  Storage topology (single file, in-memory, or
user-sharded) is delegated to :mod:`repro.db.backends`; on a sharded
backend every table exists once per shard and reads go through
``UNION ALL`` views, so all SQL below stays backend agnostic.
"""

from __future__ import annotations

import hashlib
import json
import re
import sqlite3
from pathlib import Path

import numpy as np

from repro.core.candidates import Candidate
from repro.core.objectives import CandidateMetrics
from repro.data.schema import DatasetSchema
from repro.db.backends import StoreBackend, make_backend
from repro.exceptions import StorageError

__all__ = ["CandidateStore"]

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_RESERVED = {"id", "user_id", "time", "diff", "gap", "p", "model_fp"}

#: statement openers accepted by the read-only expert passthrough
_READONLY_OPENERS = ("select", "with", "values", "explain")


def _strip_leading_comments(query: str) -> str:
    """Drop leading whitespace and ``--``/``/* */`` SQL comments so the
    opener check sees the first real token (experts annotate queries)."""
    s = query
    while True:
        s = s.lstrip()
        if s.startswith("--"):
            newline = s.find("\n")
            if newline == -1:
                return ""
            s = s[newline + 1 :]
        elif s.startswith("/*"):
            end = s.find("*/")
            if end == -1:
                return ""
            s = s[end + 2 :]
        else:
            return s


class CandidateStore:
    """Candidate + temporal-input relational store over sqlite3.

    Parameters
    ----------
    schema:
        Dataset schema; one column per feature is created in both tables.
    path:
        Database file, or ``':memory:'`` (default) for an in-process DB.
    backend:
        Backend name (``'sqlite'``, ``'memory'``, ``'sharded'``), a
        :class:`~repro.db.backends.StoreBackend` instance, or ``None`` to
        infer from ``path``.
    n_shards:
        Shard count for the ``'sharded'`` backend (ignored otherwise).
    """

    def __init__(
        self,
        schema: DatasetSchema,
        path: str | Path = ":memory:",
        *,
        backend: str | StoreBackend | None = None,
        n_shards: int = 4,
    ):
        for name in schema.names:
            if not _IDENTIFIER_RE.match(name):
                raise StorageError(f"feature name {name!r} is not a SQL identifier")
            if name.lower() in _RESERVED:
                raise StorageError(
                    f"feature name {name!r} collides with a reserved column"
                )
        self.schema = schema
        self._backend = make_backend(backend, path, n_shards=n_shards)
        self._conn = self._backend.conn
        self._conn.row_factory = sqlite3.Row
        self._create_tables()

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    # ------------------------------------------------------------- schema

    def _create_tables(self) -> None:
        feature_cols = ", ".join(f"{name} REAL NOT NULL" for name in self.schema.names)
        with self._conn:
            for db in self._backend.schemas():
                self._conn.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {db}.temporal_inputs (
                        user_id TEXT NOT NULL,
                        time INTEGER NOT NULL,
                        {feature_cols},
                        model_fp TEXT NOT NULL DEFAULT '',
                        PRIMARY KEY (user_id, time)
                    )
                    """
                )
                self._conn.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {db}.candidates (
                        id INTEGER PRIMARY KEY AUTOINCREMENT,
                        user_id TEXT NOT NULL,
                        time INTEGER NOT NULL,
                        {feature_cols},
                        diff REAL NOT NULL,
                        gap INTEGER NOT NULL,
                        p REAL NOT NULL,
                        model_fp TEXT NOT NULL DEFAULT ''
                    )
                    """
                )
                self._conn.execute(
                    f"CREATE INDEX IF NOT EXISTS {db}.idx_candidates_user_time"
                    " ON candidates (user_id, time)"
                )
                self._conn.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {db}.user_sessions (
                        user_id TEXT PRIMARY KEY,
                        profile TEXT NOT NULL,
                        constraints TEXT
                    )
                    """
                )
                self._conn.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {db}.refresh_leases (
                        user_id TEXT NOT NULL,
                        time INTEGER NOT NULL,
                        worker_id TEXT NOT NULL,
                        lease_expires_at REAL NOT NULL,
                        PRIMARY KEY (user_id, time)
                    )
                    """
                )
                # migrate databases created before the refresh subsystem:
                # their tables predate the model_fp column (cells read as
                # fingerprint '' — i.e. stale, which is the safe default)
                for table in ("temporal_inputs", "candidates"):
                    columns = {
                        row[1]
                        for row in self._conn.execute(
                            f"PRAGMA {db}.table_info({table})"
                        )
                    }
                    if "model_fp" not in columns:
                        self._conn.execute(
                            f"ALTER TABLE {db}.{table} ADD COLUMN"
                            " model_fp TEXT NOT NULL DEFAULT ''"
                        )
                # staleness-ledger index, created after the legacy
                # migration so model_fp always exists.  The claim scan
                # probes (time = ?, model_fp mismatch): the equality
                # seeks straight to the time partition and the mismatch
                # — spelled as two range seeks, see _STALE_PREDICATE —
                # skips the (usually dominant) fresh-fingerprint run
                # inside it, so a claim round touches only the stale
                # rows instead of scanning O(cells).  user_id makes the
                # index covering — the scan never reads the (wide)
                # table rows at all.
                self._conn.execute(
                    f"CREATE INDEX IF NOT EXISTS {db}.idx_temporal_inputs_ledger"
                    " ON temporal_inputs (time, model_fp, user_id)"
                )
            if self._backend.sharded:
                # read-side: one UNION ALL view per table so global
                # queries (expert SQL, Figure-2 canned SQL) are
                # shard-transparent; sqlite views are read-only, which
                # suits the expert interface
                for table in (
                    "temporal_inputs",
                    "candidates",
                    "user_sessions",
                    "refresh_leases",
                ):
                    union = " UNION ALL ".join(
                        f"SELECT * FROM {db}.{table}"
                        for db in self._backend.schemas()
                    )
                    self._conn.execute(
                        f"CREATE TEMP VIEW IF NOT EXISTS {table} AS {union}"
                    )

    def _db_for(self, user_id: str) -> str:
        """Qualified schema prefix owning ``user_id``'s rows."""
        return self._backend.schema_for(user_id)

    def close(self) -> None:
        # standard SQLite hygiene: accumulate planner statistics where
        # needed before the connection goes away, so long-lived stores
        # give the cost model real table sizes (the claim scan's
        # fingerprint range seeks depend on it at scale)
        try:
            self._conn.execute("PRAGMA optimize")
        except sqlite3.Error:
            pass  # read-only/poisoned connection: stats are best-effort
        self._backend.close()

    def __enter__(self) -> "CandidateStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- writes

    def _insert_sql(
        self, db: str, table: str, extra_columns: tuple[str, ...] = ()
    ) -> str:
        columns = ["user_id", "time", *self.schema.names, *extra_columns]
        placeholders = ", ".join("?" for _ in columns)
        return (
            f"INSERT INTO {db}.{table} ({', '.join(columns)})"
            f" VALUES ({placeholders})"
        )

    def _input_rows(
        self, user_id: str, trajectory, fingerprints: dict[int, str] | None
    ) -> list[tuple]:
        trajectory = np.atleast_2d(np.asarray(trajectory, dtype=float))
        if trajectory.shape[1] != len(self.schema):
            raise StorageError(
                f"trajectory has {trajectory.shape[1]} columns,"
                f" schema expects {len(self.schema)}"
            )
        fingerprints = fingerprints or {}
        return [
            (user_id, t, *map(float, row), fingerprints.get(t) or "")
            for t, row in enumerate(trajectory)
        ]

    def _candidate_rows(
        self, user_id: str, candidates, fingerprints: dict[int, str] | None
    ) -> list[tuple]:
        fingerprints = fingerprints or {}
        return [
            (
                user_id,
                int(c.time),
                *map(float, c.x),
                float(c.diff),
                int(c.gap),
                float(c.confidence),
                fingerprints.get(int(c.time)) or "",
            )
            for c in candidates
        ]

    @staticmethod
    def _spec_row(user_id: str, profile, constraint_texts) -> tuple:
        """Marshal one session spec to a ``user_sessions`` row.

        ``constraint_texts`` is a list of JSON-able entries — DSL strings
        or ``{"expr", "times", "label"}`` dicts for scoped constraints —
        or ``None`` when the session's constraints are not serialisable
        (opaque :class:`ConstraintsFunction` objects), in which case the
        session is not resumable by default.
        """
        profile_json = json.dumps([float(v) for v in np.asarray(profile).ravel()])
        constraints_json = (
            None
            if constraint_texts is None
            else json.dumps(list(constraint_texts))
        )
        return (user_id, profile_json, constraints_json)

    def store_temporal_inputs(
        self, user_id: str, trajectory, fingerprints: dict[int, str] | None = None
    ) -> None:
        """Insert/replace the rows ``x_0 .. x_T`` for ``user_id``."""
        rows = self._input_rows(user_id, trajectory, fingerprints)
        db = self._db_for(user_id)
        with self._conn:
            self._conn.execute(
                f"DELETE FROM {db}.temporal_inputs WHERE user_id = ?", (user_id,)
            )
            self._conn.executemany(
                self._insert_sql(db, "temporal_inputs", ("model_fp",)), rows
            )

    def store_candidates(
        self,
        user_id: str,
        candidates: list[Candidate],
        fingerprints: dict[int, str] | None = None,
    ) -> None:
        """Append candidates (any time points) for ``user_id``."""
        rows = self._candidate_rows(user_id, candidates, fingerprints)
        db = self._db_for(user_id)
        with self._conn:
            self._conn.executemany(
                self._insert_sql(db, "candidates", ("diff", "gap", "p", "model_fp")),
                rows,
            )

    def store_sessions(
        self,
        sessions,
        fingerprints: dict[int, str] | None = None,
        specs=None,
    ) -> None:
        """Bulk multi-user write in one transaction.

        ``sessions`` is an iterable of ``(user_id, trajectory,
        candidates)`` triples.  For every user the existing rows are
        replaced and the temporal inputs + candidates inserted; a single
        transaction covers the whole batch, so a 50-user ingest pays one
        commit instead of 150.  ``fingerprints`` maps time index to the
        producing model's content fingerprint; ``specs`` is an optional
        iterable of ``(user_id, profile, constraint_texts_or_None)``
        persisted to ``user_sessions`` for later rehydration.
        """
        per_db: dict[str, dict[str, list]] = {}
        seen: set[str] = set()
        for user_id, trajectory, candidates in sessions:
            if user_id in seen:
                raise StorageError(
                    f"duplicate user_id {user_id!r} in store_sessions batch"
                )
            seen.add(user_id)
            bucket = per_db.setdefault(
                self._db_for(user_id), {"users": [], "inputs": [], "cands": []}
            )
            bucket["users"].append((user_id,))
            bucket["inputs"].extend(
                self._input_rows(user_id, trajectory, fingerprints)
            )
            bucket["cands"].extend(
                self._candidate_rows(user_id, candidates, fingerprints)
            )
        spec_rows: dict[str, list[tuple]] = {}
        for spec in specs or ():
            row = self._spec_row(*spec)
            spec_rows.setdefault(self._db_for(spec[0]), []).append(row)
        with self._conn:
            for db, bucket in per_db.items():
                self._conn.executemany(
                    f"DELETE FROM {db}.candidates WHERE user_id = ?",
                    bucket["users"],
                )
                self._conn.executemany(
                    f"DELETE FROM {db}.temporal_inputs WHERE user_id = ?",
                    bucket["users"],
                )
                self._conn.executemany(
                    self._insert_sql(db, "temporal_inputs", ("model_fp",)),
                    bucket["inputs"],
                )
                self._conn.executemany(
                    self._insert_sql(
                        db, "candidates", ("diff", "gap", "p", "model_fp")
                    ),
                    bucket["cands"],
                )
            for db, rows in spec_rows.items():
                self._conn.executemany(
                    f"INSERT OR REPLACE INTO {db}.user_sessions"
                    " (user_id, profile, constraints) VALUES (?, ?, ?)",
                    rows,
                )

    def upsert_cells(
        self, cells, fingerprints: dict[int, str] | None = None
    ) -> int:
        """Replace the candidates of specific (user, time) cells.

        ``cells`` is an iterable of ``(user_id, time, candidates)`` or
        ``(user_id, time, candidates, x_t)`` tuples; all deletes and
        inserts run in **one transaction** (the incremental refresh
        writes every recomputed cell through a single call).  Rows of
        untouched cells are left byte-identical.  The cell's
        ``temporal_inputs`` ledger row is stamped with the new model
        fingerprint; if that row is missing (e.g. the user was fully
        cleared while their session stayed live) it is re-inserted from
        ``x_t`` when given, and the upsert fails otherwise — candidates
        without a horizon row would be invisible to the staleness ledger
        and the Figure-2 horizon queries.  Returns the number of
        candidate rows written.
        """
        fingerprints = fingerprints or {}
        written = 0
        with self._conn:
            for cell in cells:
                user_id, time, candidates = cell[0], int(cell[1]), cell[2]
                x_t = cell[3] if len(cell) > 3 else None
                db = self._db_for(user_id)
                self._conn.execute(
                    f"DELETE FROM {db}.candidates WHERE user_id = ? AND time = ?",
                    (user_id, time),
                )
                rows = self._candidate_rows(user_id, candidates, fingerprints)
                for row in rows:
                    if int(row[1]) != time:
                        raise StorageError(
                            f"candidate for time {row[1]} in cell"
                            f" ({user_id!r}, {time})"
                        )
                self._conn.executemany(
                    self._insert_sql(
                        db, "candidates", ("diff", "gap", "p", "model_fp")
                    ),
                    rows,
                )
                cursor = self._conn.execute(
                    f"UPDATE {db}.temporal_inputs SET model_fp = ?"
                    " WHERE user_id = ? AND time = ?",
                    (fingerprints.get(time) or "", user_id, time),
                )
                if cursor.rowcount == 0:
                    if x_t is None:
                        raise StorageError(
                            f"cell ({user_id!r}, {time}) has no"
                            " temporal_inputs row; pass x_t to restore it"
                        )
                    vector = np.asarray(x_t, dtype=float).ravel()
                    if vector.size != len(self.schema):
                        raise StorageError(
                            f"x_t has {vector.size} entries, schema"
                            f" expects {len(self.schema)}"
                        )
                    self._conn.execute(
                        self._insert_sql(db, "temporal_inputs", ("model_fp",)),
                        (
                            user_id,
                            time,
                            *map(float, vector),
                            fingerprints.get(time) or "",
                        ),
                    )
                written += len(rows)
        return written

    def clear_user(self, user_id: str, time: int | None = None) -> None:
        """Remove rows belonging to ``user_id``.

        With ``time`` given, only that (user, time) cell is invalidated —
        its candidates are dropped and its ledger row stamped with the
        empty fingerprint (i.e. stale, so :meth:`stale_cells` reports it
        and a refresh recomputes it), while the user's still-valid cells
        at other time points survive untouched.  The temporal-input
        vector itself stays: it is model independent, and the Figure-2
        horizon queries (Q3/Q6) must keep seeing the full horizon.
        Without ``time``, every row of the user is dropped (including
        the persisted session spec) — note that if the user still has a
        *registered* live session, the next refresh will recompute and
        re-store their cells; use :meth:`JustInTime.drop_session` to
        fully forget a user.
        """
        db = self._db_for(user_id)
        with self._conn:
            if time is None:
                self._conn.execute(
                    f"DELETE FROM {db}.candidates WHERE user_id = ?", (user_id,)
                )
                self._conn.execute(
                    f"DELETE FROM {db}.temporal_inputs WHERE user_id = ?",
                    (user_id,),
                )
                self._conn.execute(
                    f"DELETE FROM {db}.user_sessions WHERE user_id = ?",
                    (user_id,),
                )
            else:
                self._conn.execute(
                    f"DELETE FROM {db}.candidates WHERE user_id = ? AND time = ?",
                    (user_id, int(time)),
                )
                self._conn.execute(
                    f"UPDATE {db}.temporal_inputs SET model_fp = ''"
                    " WHERE user_id = ? AND time = ?",
                    (user_id, int(time)),
                )

    # -------------------------------------------------------------- reads

    def _read(self, query: str, params=()) -> list[sqlite3.Row]:
        """Internal read path: trusted, fixed SQL — no expert-interface
        policing (and none of its per-call PRAGMA round-trips).  Also
        used by the canned Figure-2 queries (:mod:`repro.db.queries`)
        and the insights layer; only :meth:`sql` — the expert
        passthrough behind the canned-question UI — is policed."""
        try:
            return self._conn.execute(query, params).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"SQL error: {exc}") from exc

    def sql(self, query: str, params=()) -> list[sqlite3.Row]:
        """Expert passthrough: run **read-only** SQL and return rows.

        The paper lets "expert users compose additional SQL queries";
        this is that interface, intended to sit behind a canned-question
        UI — so it must never be able to mutate the store.  Enforcement
        is two-layer: a statement-opener check rejects anything that is
        not a ``SELECT``/``WITH``/``VALUES``/``EXPLAIN`` with a clear
        error, and ``PRAGMA query_only`` makes the connection itself
        refuse writes for the duration (catching e.g. a
        ``WITH ... INSERT`` that passes the opener check).
        """
        stripped = _strip_leading_comments(query)
        opener = stripped.split("(", 1)[0].split(None, 1)
        if not opener or opener[0].lower() not in _READONLY_OPENERS:
            raise StorageError(
                "sql() is read-only: statements must start with one of"
                f" {tuple(o.upper() for o in _READONLY_OPENERS)};"
                " use the store's write methods to modify data"
            )
        self._conn.execute("PRAGMA query_only = ON")
        try:
            cursor = self._conn.execute(query, params)
            return cursor.fetchall()
        except (sqlite3.Error, sqlite3.Warning) as exc:
            lowered = str(exc).lower()
            # "attempt to write a readonly database" (query_only) or
            # "cannot modify X because it is a view" (sharded union views)
            if "readonly" in lowered or "read-only" in lowered or (
                "cannot modify" in lowered
            ):
                raise StorageError(
                    f"sql() is read-only: statement rejected ({exc})"
                ) from exc
            raise StorageError(f"SQL error: {exc}") from exc
        finally:
            self._conn.execute("PRAGMA query_only = OFF")

    def candidate_count(self, user_id: str | None = None) -> int:
        if user_id is None:
            rows = self._read("SELECT COUNT(*) AS n FROM candidates")
        else:
            rows = self._read(
                "SELECT COUNT(*) AS n FROM candidates WHERE user_id = ?",
                (user_id,),
            )
        return int(rows[0]["n"])

    def temporal_input(self, user_id: str, time: int) -> np.ndarray:
        """Fetch one temporal-input vector back out of the store."""
        rows = self._read(
            "SELECT * FROM temporal_inputs WHERE user_id = ? AND time = ?",
            (user_id, int(time)),
        )
        if not rows:
            raise StorageError(
                f"no temporal input for user {user_id!r} at time {time}"
            )
        row = rows[0]
        return np.array([row[name] for name in self.schema.names], dtype=float)

    def times_for(self, user_id: str) -> list[int]:
        """Sorted distinct time points present in temporal_inputs."""
        rows = self._read(
            "SELECT DISTINCT time FROM temporal_inputs WHERE user_id = ?"
            " ORDER BY time",
            (user_id,),
        )
        return [int(r["time"]) for r in rows]

    def user_ids(self) -> list[str]:
        """Sorted distinct user ids present in temporal_inputs."""
        rows = self._read(
            "SELECT DISTINCT user_id FROM temporal_inputs ORDER BY user_id"
        )
        return [str(r["user_id"]) for r in rows]

    def cell_fingerprints(self, user_id: str) -> dict[int, str]:
        """``{time: model fingerprint}`` the user's cells were computed under."""
        rows = self._read(
            "SELECT time, model_fp FROM temporal_inputs WHERE user_id = ?"
            " ORDER BY time",
            (user_id,),
        )
        return {int(r["time"]): str(r["model_fp"]) for r in rows}

    def ledger_snapshot(self) -> dict[str, dict[int, str]]:
        """The whole staleness ledger in one scan:
        ``{user_id: {time: model_fp}}`` (one scan beats per-user or
        per-time queries, which on the sharded backend would each fan out
        across every shard)."""
        rows = self._read(
            "SELECT user_id, time, model_fp FROM temporal_inputs"
            " ORDER BY user_id, time"
        )
        snapshot: dict[str, dict[int, str]] = {}
        for row in rows:
            snapshot.setdefault(str(row["user_id"]), {})[int(row["time"])] = str(
                row["model_fp"]
            )
        return snapshot

    def stale_cells(
        self, fingerprints: dict[int, str]
    ) -> list[tuple[str, int]]:
        """(user, time) cells whose ledger fingerprint differs from current.

        ``fingerprints`` maps time index to the *current* model
        fingerprint; any cell recorded under a different (or empty)
        fingerprint is stale.  Cells at time points missing from
        ``fingerprints`` are not reported.

        **Ordering contract:** rows come back ``ORDER BY user_id, time``
        (SQLite BINARY collation), evaluated inside the database on every
        backend — on the sharded backend the ORDER BY applies to the
        ``UNION ALL`` view output, so the order is identical across
        ``sqlite`` / ``memory`` / ``sharded`` rather than reflecting
        shard layout.  Worker pools claim cells in this order, which
        makes claim sequences reproducible in tests.
        """
        if not fingerprints:
            return []
        values, params = self._fingerprint_values(fingerprints)
        rows = self._read(
            "SELECT ti.user_id AS user_id, ti.time AS time"
            " FROM temporal_inputs AS ti"
            f" JOIN (VALUES {values}) AS fp"
            f" ON {self._STALE_PREDICATE}"
            " ORDER BY ti.user_id, ti.time",
            params,
        )
        return [(str(r["user_id"]), int(r["time"])) for r in rows]

    # ------------------------------------------------------------- leases

    #: The staleness join predicate against the fingerprint VALUES
    #: table.  The fingerprint mismatch is spelled ``< OR >`` rather
    #: than ``!=`` deliberately: an inequality cannot seek, so ``!=``
    #: degrades the ledger index to a full covering-index walk of each
    #: probed time partition (every fresh row visited and filtered),
    #: while the OR form becomes a MULTI-INDEX OR of two *range seeks*
    #: per partition that skip the contiguous fresh-fingerprint run
    #: entirely — a measured ~200× per claim round at 400k cells.  Both
    #: columns are NOT NULL text, so the forms are equivalent.
    _STALE_PREDICATE = (
        "ti.time = fp.column1"
        " AND (ti.model_fp < fp.column2 OR ti.model_fp > fp.column2)"
    )

    @staticmethod
    def _fingerprint_values(
        fingerprints: dict[int, str],
    ) -> tuple[str, list]:
        """``(values_sql, params)`` of the staleness predicate's
        ``(time, fingerprint)`` VALUES join — with
        :data:`_STALE_PREDICATE`, the one definition shared by
        :meth:`stale_cells`, the claim scan and the stale probe, so the
        three can never diverge on what "stale" means."""
        pairs = sorted((int(t), fp or "") for t, fp in fingerprints.items())
        values = ", ".join("(?, ?)" for _ in pairs)
        return values, [value for pair in pairs for value in pair]

    def clock_now(self) -> float:
        """Unix seconds read from the **store-side clock**.

        Lease arithmetic (claim expiry, renewal windows) uses this
        instead of ``time.time()`` by default: the value comes from an
        SQL expression the backend owns
        (:meth:`~repro.db.backends.StoreBackend.clock_sql`), so every
        worker of a shared store reads one clock source and host clock
        skew cannot shrink or stretch leases.  Tests (and callers that
        need a reproducible clock) keep passing ``now=`` explicitly.
        """
        row = self._conn.execute(
            f"SELECT {self._backend.clock_sql()}"
        ).fetchone()
        return float(row[0])

    def _begin_immediate(self) -> None:
        """Open an IMMEDIATE transaction (write lock on the main database
        up front).  Every process sharing a file-backed store — plain or
        sharded, whose router file is the main database — contends on
        that one lock, so everything until COMMIT is atomic across the
        worker pool."""
        if self._conn.in_transaction:
            raise StorageError(
                "cannot start a lease claim inside an open transaction"
            )
        try:
            self._conn.execute("BEGIN IMMEDIATE")
        except sqlite3.Error as exc:
            raise StorageError(f"could not lock store for claim: {exc}") from exc

    def claim_stale_cells(
        self,
        fingerprints: dict[int, str],
        worker_id: str,
        *,
        limit: int = 4,
        lease_seconds: float = 30.0,
        now: float | None = None,
        exclude=(),
    ) -> list[tuple[str, int]]:
        """Atomically lease up to ``limit`` stale cells to ``worker_id``.

        Walks :meth:`stale_cells` in its deterministic (user, time) order
        and writes a lease row for each cell that is unleased, expired,
        or already held by this worker (re-claiming one's own lease just
        extends it, so a retrying worker is idempotent).  The scan and
        all lease writes happen in **one** ``BEGIN IMMEDIATE``
        transaction, so two workers can never claim the same cell: the
        loser of the lock race sees the winner's fresh leases and skips
        them.

        ``now`` defaults to the store-side clock (:meth:`clock_now`,
        consistent across hosts sharing the store) and is injectable for
        tests; a lease is free again once ``lease_expires_at <= now``,
        which is how cells of crashed workers get recovered.
        ``exclude`` lists (user, time) cells to skip, e.g. cells this
        worker found uncomputable (no resumable session spec) that would
        otherwise be re-claimed forever.  Returns the claimed cells, in
        ledger order.
        """
        if limit < 1:
            raise StorageError("limit must be >= 1")
        now = float(self.clock_now() if now is None else now)
        expires = now + float(lease_seconds)
        excluded = {(str(u), int(t)) for u, t in exclude}
        claimed: list[tuple[str, int]] = []
        self._begin_immediate()
        try:
            candidates = self._claimable_cells(
                fingerprints, worker_id, now, limit + len(excluded)
            )
            for user_id, t in candidates:
                if len(claimed) >= limit:
                    break
                if (user_id, t) in excluded:
                    continue
                db = self._db_for(user_id)
                cursor = self._conn.execute(
                    f"""
                    INSERT INTO {db}.refresh_leases
                        (user_id, time, worker_id, lease_expires_at)
                    VALUES (?, ?, ?, ?)
                    ON CONFLICT (user_id, time) DO UPDATE SET
                        worker_id = excluded.worker_id,
                        lease_expires_at = excluded.lease_expires_at
                    WHERE refresh_leases.lease_expires_at <= ?
                       OR refresh_leases.worker_id = excluded.worker_id
                    """,
                    (user_id, t, str(worker_id), expires, now),
                )
                if cursor.rowcount:
                    claimed.append((user_id, t))
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return claimed

    def _claim_scan_sql(
        self,
        db: str,
        fingerprints: dict[int, str],
        worker_id: str,
        now: float,
        limit: int,
    ) -> tuple[str, list]:
        """One schema's claim-round scan as ``(query, params)``.

        The lease filter runs inside SQL so a claim round is a bounded
        query instead of materialising the whole stale set under the
        write lock, and the ledger probe ``(ti.time = …, ti.model_fp !=
        …)`` is answered by the covering index
        ``idx_temporal_inputs_ledger`` — a partial scan over the stale
        rows only, not O(cells).  The scan addresses each schema's
        tables **directly** (not the sharded ``UNION ALL`` views: the
        planner satisfies the view's merge-ordering with full
        primary-key scans per shard, exactly the O(cells) walk the index
        exists to avoid).  Shared by :meth:`_claimable_cells`
        (execution) and :meth:`claim_query_plan` (EXPLAIN QUERY PLAN
        verification).
        """
        values, fp_params = self._fingerprint_values(fingerprints)
        query = (
            "SELECT ti.user_id AS user_id, ti.time AS time"
            f" FROM {db}.temporal_inputs AS ti"
            f" JOIN (VALUES {values}) AS fp"
            f" ON {self._STALE_PREDICATE}"
            f" LEFT JOIN {db}.refresh_leases AS rl"
            " ON rl.user_id = ti.user_id AND rl.time = ti.time"
            " WHERE rl.user_id IS NULL OR rl.lease_expires_at <= ?"
            " OR rl.worker_id = ?"
            " ORDER BY ti.user_id, ti.time LIMIT ?"
        )
        return query, [*fp_params, float(now), str(worker_id), int(limit)]

    def _claimable_cells(
        self, fingerprints: dict[int, str], worker_id: str, now: float, limit: int
    ) -> list[tuple[str, int]]:
        """Stale cells not blocked by a live foreign lease, in ledger
        order, at most ``limit`` (see :meth:`_claim_scan_sql`).

        Each schema is scanned with its own bounded, index-backed query;
        the per-schema results (each already capped at ``limit``) are
        merged and re-capped here.  Python tuple ordering on ``(user_id,
        time)`` matches SQLite's BINARY collation — UTF-8 byte order and
        code-point order agree — so the merged order equals the global
        ledger order of :meth:`stale_cells`.
        """
        if not fingerprints or limit < 1:
            return []
        cells: list[tuple[str, int]] = []
        for db in self._backend.schemas():
            query, params = self._claim_scan_sql(
                db, fingerprints, worker_id, now, limit
            )
            cells.extend(
                (str(r["user_id"]), int(r["time"])) for r in self._read(query, params)
            )
        cells.sort()
        return cells[:limit]

    def claim_query_plan(
        self, fingerprints: dict[int, str] | None = None
    ) -> list[str]:
        """``EXPLAIN QUERY PLAN`` detail lines of the claim scan.

        Scale guard-rail introspection: tests and benchmarks assert
        every schema's plan SEARCHes ``temporal_inputs`` via the
        covering ledger index (``idx_temporal_inputs_ledger``), never a
        table scan.  On a populated ledger the plan is a MULTI-INDEX OR
        of two *range* seeks (``model_fp<?`` / ``model_fp>?``) per time
        partition — what actually skips the fresh rows; on a near-empty
        store the cost model may collapse to a single ``time=?`` probe,
        which is equivalent there.  ``fingerprints`` defaults to a
        representative single-entry map.  Returns the concatenated
        detail lines of every schema's plan.
        """
        fingerprints = fingerprints or {0: "fp0"}
        details: list[str] = []
        for db in self._backend.schemas():
            query, params = self._claim_scan_sql(db, fingerprints, "plan", 0.0, 1)
            details.extend(
                str(row[-1])
                for row in self._read("EXPLAIN QUERY PLAN " + query, params)
            )
        return details

    def has_stale_cells(
        self, fingerprints: dict[int, str], exclude=()
    ) -> bool:
        """Whether any stale cell remains outside ``exclude`` —
        regardless of leases.  Workers use this to distinguish "queue
        drained" from "remaining cells are leased to someone else"
        (the latter may become claimable again if that worker dies).

        Workers poll this once per wait cycle, so like the claim scan
        it addresses each schema's tables directly (index-backed ledger
        probe) instead of materialising the whole stale set through the
        sharded views.  The exclusion filter stays in Python — binding
        it as SQL parameters would hit SQLite's variable limit on large
        unrecoverable sets — but stays bounded: each schema fetches at
        most ``len(exclude) + 1`` rows, and by pigeonhole any full fetch
        must contain a non-excluded stale cell.
        """
        if not fingerprints:
            return False
        excluded = {(str(u), int(t)) for u, t in exclude}
        values, params = self._fingerprint_values(fingerprints)
        limit = len(excluded) + 1
        for db in self._backend.schemas():
            rows = self._read(
                "SELECT ti.user_id AS user_id, ti.time AS time"
                f" FROM {db}.temporal_inputs AS ti"
                f" JOIN (VALUES {values}) AS fp"
                f" ON {self._STALE_PREDICATE}"
                " LIMIT ?",
                [*params, limit],
            )
            if any(
                (str(r["user_id"]), int(r["time"])) not in excluded
                for r in rows
            ):
                return True
        return False

    def renew_leases(
        self,
        worker_id: str,
        cells,
        *,
        lease_seconds: float = 30.0,
        now: float | None = None,
    ) -> int:
        """Extend this worker's live leases on ``cells``; returns how many
        were actually renewed.  A lease that already expired is *not*
        renewed (another worker may have legitimately reclaimed the
        cell), so a return value below ``len(cells)`` tells the worker
        to drop the lost cells instead of writing a result it no longer
        owns.  ``now`` defaults to the store-side clock
        (:meth:`clock_now`)."""
        now = float(self.clock_now() if now is None else now)
        expires = now + float(lease_seconds)
        renewed = 0
        with self._conn:
            for user_id, t in cells:
                db = self._db_for(str(user_id))
                cursor = self._conn.execute(
                    f"UPDATE {db}.refresh_leases SET lease_expires_at = ?"
                    " WHERE user_id = ? AND time = ? AND worker_id = ?"
                    " AND lease_expires_at > ?",
                    (expires, str(user_id), int(t), str(worker_id), now),
                )
                renewed += cursor.rowcount
        return renewed

    def release_cells(self, worker_id: str, cells) -> int:
        """Drop this worker's lease rows for ``cells`` (after the cell's
        recompute was upserted, or to hand an unprocessed cell back to
        the pool early).  Releasing a cell leased to another worker is a
        no-op.  Returns the number of leases released."""
        released = 0
        with self._conn:
            for user_id, t in cells:
                db = self._db_for(str(user_id))
                cursor = self._conn.execute(
                    f"DELETE FROM {db}.refresh_leases"
                    " WHERE user_id = ? AND time = ? AND worker_id = ?",
                    (str(user_id), int(t), str(worker_id)),
                )
                released += cursor.rowcount
        return released

    def prune_expired_leases(self, now: float | None = None) -> int:
        """Delete lease rows that already expired; returns how many.

        Hygiene for the lease table: a worker that upserted a cell but
        died before releasing it leaves a lease row behind even though
        the cell is fresh (so no survivor ever claims — and thereby
        overwrites — the row).  Workers call this once their drain ends;
        only rows with ``lease_expires_at <= now`` go, so live foreign
        leases are never touched.  ``now`` defaults to the store-side
        clock (:meth:`clock_now`).
        """
        now = float(self.clock_now() if now is None else now)
        pruned = 0
        with self._conn:
            for db in self._backend.schemas():
                cursor = self._conn.execute(
                    f"DELETE FROM {db}.refresh_leases"
                    " WHERE lease_expires_at <= ?",
                    (now,),
                )
                pruned += cursor.rowcount
        return pruned

    def lease_rows(self) -> list[tuple[str, int, str, float]]:
        """Current lease table, ``(user_id, time, worker_id,
        lease_expires_at)`` ordered by (user, time) — monitoring and
        test introspection."""
        rows = self._read(
            "SELECT user_id, time, worker_id, lease_expires_at"
            " FROM refresh_leases ORDER BY user_id, time"
        )
        return [
            (
                str(r["user_id"]),
                int(r["time"]),
                str(r["worker_id"]),
                float(r["lease_expires_at"]),
            )
            for r in rows
        ]

    # -------------------------------------------------------------- reads

    def cell_vectors(self, user_id: str, time: int) -> np.ndarray:
        """Stored candidate feature vectors of one cell, shape ``(n, d)``.

        Insertion-ordered (by rowid); the warm-start path feeds these to
        the beam as seed states.
        """
        rows = self._read(
            "SELECT * FROM candidates WHERE user_id = ? AND time = ?"
            " ORDER BY id",
            (user_id, int(time)),
        )
        if not rows:
            return np.empty((0, len(self.schema)))
        return np.vstack([self.row_to_vector(row) for row in rows])

    def load_candidates(
        self, user_id: str, time: int | None = None
    ) -> list[Candidate]:
        """Reconstruct the user's :class:`Candidate` objects from rows,
        optionally restricted to one time point (the warm-start top-m
        selection ranks a single cell's stored candidates)."""
        if time is None:
            rows = self._read(
                "SELECT * FROM candidates WHERE user_id = ? ORDER BY time, id",
                (user_id,),
            )
        else:
            rows = self._read(
                "SELECT * FROM candidates WHERE user_id = ? AND time = ?"
                " ORDER BY id",
                (user_id, int(time)),
            )
        return [
            Candidate(
                self.row_to_vector(row),
                int(row["time"]),
                CandidateMetrics(
                    diff=float(row["diff"]),
                    gap=int(row["gap"]),
                    confidence=float(row["p"]),
                ),
            )
            for row in rows
        ]

    def load_session_specs(self) -> list[tuple[str, np.ndarray, list[str] | None]]:
        """Persisted session specs: ``(user_id, profile, constraint_texts)``."""
        rows = self._read(
            "SELECT user_id, profile, constraints FROM user_sessions"
            " ORDER BY user_id"
        )
        specs = []
        for row in rows:
            constraints = (
                None
                if row["constraints"] is None
                else list(json.loads(row["constraints"]))
            )
            specs.append(
                (
                    str(row["user_id"]),
                    np.asarray(json.loads(row["profile"]), dtype=float),
                    constraints,
                )
            )
        return specs

    def row_to_vector(self, row: sqlite3.Row) -> np.ndarray:
        """Extract the feature vector from any row with feature columns."""
        return np.array([row[name] for name in self.schema.names], dtype=float)

    def contents_digest(self) -> str:
        """SHA-256 over the store's canonical logical contents.

        Two stores holding the same sessions, temporal inputs and
        candidates produce the same digest **regardless of which worker
        wrote which cell**: rows are serialised in (user, time) order and
        the ``candidates.id`` autoincrement — pure storage metadata whose
        global values depend on cell *completion* order across a worker
        pool — is excluded.  Per-cell candidate order is preserved (rows
        of one cell are written by a single worker in generation order,
        so ``id`` still sorts them within the cell).  This is the
        identity check behind "an N-process refresh equals the
        single-process refresh byte for byte".
        """
        digest = hashlib.sha256()
        feature_cols = ", ".join(self.schema.names)
        for row in self._read(
            f"SELECT user_id, time, {feature_cols}, model_fp"
            " FROM temporal_inputs ORDER BY user_id, time"
        ):
            digest.update(repr(tuple(row)).encode())
        for row in self._read(
            f"SELECT user_id, time, {feature_cols}, diff, gap, p, model_fp"
            " FROM candidates ORDER BY user_id, time, id"
        ):
            digest.update(repr(tuple(row)).encode())
        for row in self._read(
            "SELECT user_id, profile, constraints FROM user_sessions"
            " ORDER BY user_id"
        ):
            digest.update(repr(tuple(row)).encode())
        return digest.hexdigest()
