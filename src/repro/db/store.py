"""SQLite-backed candidate database.

The original system stores generated candidates in MySQL; the schema here
mirrors the paper's two relations (SQLite executes the same SQL92 the
paper's Figure 2 shows):

``temporal_inputs(user_id, time, <feature columns...>)``
    The future representations ``x_0 .. x_T`` of each user's profile.

``candidates(id, user_id, time, <feature columns...>, diff, gap, p)``
    The per-time-point decision-altering candidates; ``p`` is the model
    confidence (the paper's Q5 orders by ``p``), ``diff``/``gap`` the two
    distance properties.

Feature columns are generated from the dataset schema; names are
validated as SQL identifiers.  All user-supplied *values* go through
parametrised statements.
"""

from __future__ import annotations

import re
import sqlite3
from pathlib import Path

import numpy as np

from repro.core.candidates import Candidate
from repro.data.schema import DatasetSchema
from repro.exceptions import StorageError

__all__ = ["CandidateStore"]

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_RESERVED = {"id", "user_id", "time", "diff", "gap", "p"}


class CandidateStore:
    """Candidate + temporal-input relational store over sqlite3.

    Parameters
    ----------
    schema:
        Dataset schema; one column per feature is created in both tables.
    path:
        Database file, or ``':memory:'`` (default) for an in-process DB.
    """

    def __init__(self, schema: DatasetSchema, path: str | Path = ":memory:"):
        for name in schema.names:
            if not _IDENTIFIER_RE.match(name):
                raise StorageError(f"feature name {name!r} is not a SQL identifier")
            if name.lower() in _RESERVED:
                raise StorageError(
                    f"feature name {name!r} collides with a reserved column"
                )
        self.schema = schema
        self._conn = sqlite3.connect(str(path))
        self._conn.row_factory = sqlite3.Row
        self._create_tables()

    # ------------------------------------------------------------- schema

    def _create_tables(self) -> None:
        feature_cols = ", ".join(f"{name} REAL NOT NULL" for name in self.schema.names)
        with self._conn:
            self._conn.execute(
                f"""
                CREATE TABLE IF NOT EXISTS temporal_inputs (
                    user_id TEXT NOT NULL,
                    time INTEGER NOT NULL,
                    {feature_cols},
                    PRIMARY KEY (user_id, time)
                )
                """
            )
            self._conn.execute(
                f"""
                CREATE TABLE IF NOT EXISTS candidates (
                    id INTEGER PRIMARY KEY AUTOINCREMENT,
                    user_id TEXT NOT NULL,
                    time INTEGER NOT NULL,
                    {feature_cols},
                    diff REAL NOT NULL,
                    gap INTEGER NOT NULL,
                    p REAL NOT NULL
                )
                """
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_candidates_user_time"
                " ON candidates (user_id, time)"
            )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CandidateStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- writes

    def _insert_sql(self, table: str, extra_columns: tuple[str, ...] = ()) -> str:
        columns = ["user_id", "time", *self.schema.names, *extra_columns]
        placeholders = ", ".join("?" for _ in columns)
        return (
            f"INSERT INTO {table} ({', '.join(columns)}) VALUES ({placeholders})"
        )

    def _input_rows(self, user_id: str, trajectory) -> list[tuple]:
        trajectory = np.atleast_2d(np.asarray(trajectory, dtype=float))
        if trajectory.shape[1] != len(self.schema):
            raise StorageError(
                f"trajectory has {trajectory.shape[1]} columns,"
                f" schema expects {len(self.schema)}"
            )
        return [
            (user_id, t, *map(float, row)) for t, row in enumerate(trajectory)
        ]

    def _candidate_rows(self, user_id: str, candidates) -> list[tuple]:
        return [
            (
                user_id,
                int(c.time),
                *map(float, c.x),
                float(c.diff),
                int(c.gap),
                float(c.confidence),
            )
            for c in candidates
        ]

    def store_temporal_inputs(self, user_id: str, trajectory) -> None:
        """Insert/replace the rows ``x_0 .. x_T`` for ``user_id``."""
        rows = self._input_rows(user_id, trajectory)
        with self._conn:
            self._conn.execute(
                "DELETE FROM temporal_inputs WHERE user_id = ?", (user_id,)
            )
            self._conn.executemany(self._insert_sql("temporal_inputs"), rows)

    def store_candidates(self, user_id: str, candidates: list[Candidate]) -> None:
        """Append candidates (any time points) for ``user_id``."""
        rows = self._candidate_rows(user_id, candidates)
        with self._conn:
            self._conn.executemany(
                self._insert_sql("candidates", ("diff", "gap", "p")), rows
            )

    def store_sessions(self, sessions) -> None:
        """Bulk multi-user write in one transaction.

        ``sessions`` is an iterable of ``(user_id, trajectory,
        candidates)`` triples.  For every user the existing rows are
        replaced and the temporal inputs + candidates inserted; a single
        transaction covers the whole batch, so a 50-user ingest pays one
        commit instead of 150.
        """
        input_rows: list[tuple] = []
        cand_rows: list[tuple] = []
        user_ids: list[str] = []
        seen: set[str] = set()
        for user_id, trajectory, candidates in sessions:
            if user_id in seen:
                raise StorageError(
                    f"duplicate user_id {user_id!r} in store_sessions batch"
                )
            seen.add(user_id)
            user_ids.append(user_id)
            input_rows.extend(self._input_rows(user_id, trajectory))
            cand_rows.extend(self._candidate_rows(user_id, candidates))
        with self._conn:
            self._conn.executemany(
                "DELETE FROM candidates WHERE user_id = ?",
                [(u,) for u in user_ids],
            )
            self._conn.executemany(
                "DELETE FROM temporal_inputs WHERE user_id = ?",
                [(u,) for u in user_ids],
            )
            self._conn.executemany(self._insert_sql("temporal_inputs"), input_rows)
            self._conn.executemany(
                self._insert_sql("candidates", ("diff", "gap", "p")), cand_rows
            )

    def clear_user(self, user_id: str) -> None:
        """Remove all rows belonging to ``user_id`` from both tables."""
        with self._conn:
            self._conn.execute(
                "DELETE FROM candidates WHERE user_id = ?", (user_id,)
            )
            self._conn.execute(
                "DELETE FROM temporal_inputs WHERE user_id = ?", (user_id,)
            )

    # -------------------------------------------------------------- reads

    def sql(self, query: str, params=()) -> list[sqlite3.Row]:
        """Expert passthrough: run arbitrary SQL and return rows.

        The paper lets "expert users compose additional SQL queries";
        this is that interface.
        """
        try:
            cursor = self._conn.execute(query, params)
        except sqlite3.Error as exc:
            raise StorageError(f"SQL error: {exc}") from exc
        return cursor.fetchall()

    def candidate_count(self, user_id: str | None = None) -> int:
        if user_id is None:
            rows = self.sql("SELECT COUNT(*) AS n FROM candidates")
        else:
            rows = self.sql(
                "SELECT COUNT(*) AS n FROM candidates WHERE user_id = ?",
                (user_id,),
            )
        return int(rows[0]["n"])

    def temporal_input(self, user_id: str, time: int) -> np.ndarray:
        """Fetch one temporal-input vector back out of the store."""
        rows = self.sql(
            "SELECT * FROM temporal_inputs WHERE user_id = ? AND time = ?",
            (user_id, int(time)),
        )
        if not rows:
            raise StorageError(
                f"no temporal input for user {user_id!r} at time {time}"
            )
        row = rows[0]
        return np.array([row[name] for name in self.schema.names], dtype=float)

    def times_for(self, user_id: str) -> list[int]:
        """Sorted distinct time points present in temporal_inputs."""
        rows = self.sql(
            "SELECT DISTINCT time FROM temporal_inputs WHERE user_id = ?"
            " ORDER BY time",
            (user_id,),
        )
        return [int(r["time"]) for r in rows]

    def row_to_vector(self, row: sqlite3.Row) -> np.ndarray:
        """Extract the feature vector from any row with feature columns."""
        return np.array([row[name] for name in self.schema.names], dtype=float)
