"""Relational candidate store over pluggable SQLite backends.

The original system stores generated candidates in MySQL; the schema here
mirrors the paper's two relations (SQLite executes the same SQL92 the
paper's Figure 2 shows):

``temporal_inputs(user_id, time, <feature columns...>, model_fp)``
    The future representations ``x_0 .. x_T`` of each user's profile.
    ``model_fp`` records the content fingerprint of the future model the
    cell's candidates were last computed under — one row per (user, t)
    cell, so it doubles as the refresh subsystem's staleness ledger.

``candidates(id, user_id, time, <feature columns...>, diff, gap, p, model_fp)``
    The per-time-point decision-altering candidates; ``p`` is the model
    confidence (the paper's Q5 orders by ``p``), ``diff``/``gap`` the two
    distance properties, ``model_fp`` the producing model's fingerprint.

``user_sessions(user_id, profile, constraints)``
    Session specs (profile vector + DSL constraint texts as JSON) so a
    long-running service can rehydrate sessions after a restart and
    refresh them.

Feature columns are generated from the dataset schema; names are
validated as SQL identifiers.  All user-supplied *values* go through
parametrised statements.  Storage topology (single file, in-memory, or
user-sharded) is delegated to :mod:`repro.db.backends`; on a sharded
backend every table exists once per shard and reads go through
``UNION ALL`` views, so all SQL below stays backend agnostic.
"""

from __future__ import annotations

import json
import re
import sqlite3
from pathlib import Path

import numpy as np

from repro.core.candidates import Candidate
from repro.core.objectives import CandidateMetrics
from repro.data.schema import DatasetSchema
from repro.db.backends import StoreBackend, make_backend
from repro.exceptions import StorageError

__all__ = ["CandidateStore"]

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_RESERVED = {"id", "user_id", "time", "diff", "gap", "p", "model_fp"}

#: statement openers accepted by the read-only expert passthrough
_READONLY_OPENERS = ("select", "with", "values", "explain")


def _strip_leading_comments(query: str) -> str:
    """Drop leading whitespace and ``--``/``/* */`` SQL comments so the
    opener check sees the first real token (experts annotate queries)."""
    s = query
    while True:
        s = s.lstrip()
        if s.startswith("--"):
            newline = s.find("\n")
            if newline == -1:
                return ""
            s = s[newline + 1 :]
        elif s.startswith("/*"):
            end = s.find("*/")
            if end == -1:
                return ""
            s = s[end + 2 :]
        else:
            return s


class CandidateStore:
    """Candidate + temporal-input relational store over sqlite3.

    Parameters
    ----------
    schema:
        Dataset schema; one column per feature is created in both tables.
    path:
        Database file, or ``':memory:'`` (default) for an in-process DB.
    backend:
        Backend name (``'sqlite'``, ``'memory'``, ``'sharded'``), a
        :class:`~repro.db.backends.StoreBackend` instance, or ``None`` to
        infer from ``path``.
    n_shards:
        Shard count for the ``'sharded'`` backend (ignored otherwise).
    """

    def __init__(
        self,
        schema: DatasetSchema,
        path: str | Path = ":memory:",
        *,
        backend: str | StoreBackend | None = None,
        n_shards: int = 4,
    ):
        for name in schema.names:
            if not _IDENTIFIER_RE.match(name):
                raise StorageError(f"feature name {name!r} is not a SQL identifier")
            if name.lower() in _RESERVED:
                raise StorageError(
                    f"feature name {name!r} collides with a reserved column"
                )
        self.schema = schema
        self._backend = make_backend(backend, path, n_shards=n_shards)
        self._conn = self._backend.conn
        self._conn.row_factory = sqlite3.Row
        self._create_tables()

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    # ------------------------------------------------------------- schema

    def _create_tables(self) -> None:
        feature_cols = ", ".join(f"{name} REAL NOT NULL" for name in self.schema.names)
        with self._conn:
            for db in self._backend.schemas():
                self._conn.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {db}.temporal_inputs (
                        user_id TEXT NOT NULL,
                        time INTEGER NOT NULL,
                        {feature_cols},
                        model_fp TEXT NOT NULL DEFAULT '',
                        PRIMARY KEY (user_id, time)
                    )
                    """
                )
                self._conn.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {db}.candidates (
                        id INTEGER PRIMARY KEY AUTOINCREMENT,
                        user_id TEXT NOT NULL,
                        time INTEGER NOT NULL,
                        {feature_cols},
                        diff REAL NOT NULL,
                        gap INTEGER NOT NULL,
                        p REAL NOT NULL,
                        model_fp TEXT NOT NULL DEFAULT ''
                    )
                    """
                )
                self._conn.execute(
                    f"CREATE INDEX IF NOT EXISTS {db}.idx_candidates_user_time"
                    " ON candidates (user_id, time)"
                )
                self._conn.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {db}.user_sessions (
                        user_id TEXT PRIMARY KEY,
                        profile TEXT NOT NULL,
                        constraints TEXT
                    )
                    """
                )
                # migrate databases created before the refresh subsystem:
                # their tables predate the model_fp column (cells read as
                # fingerprint '' — i.e. stale, which is the safe default)
                for table in ("temporal_inputs", "candidates"):
                    columns = {
                        row[1]
                        for row in self._conn.execute(
                            f"PRAGMA {db}.table_info({table})"
                        )
                    }
                    if "model_fp" not in columns:
                        self._conn.execute(
                            f"ALTER TABLE {db}.{table} ADD COLUMN"
                            " model_fp TEXT NOT NULL DEFAULT ''"
                        )
            if self._backend.sharded:
                # read-side: one UNION ALL view per table so global
                # queries (expert SQL, Figure-2 canned SQL) are
                # shard-transparent; sqlite views are read-only, which
                # suits the expert interface
                for table in ("temporal_inputs", "candidates", "user_sessions"):
                    union = " UNION ALL ".join(
                        f"SELECT * FROM {db}.{table}"
                        for db in self._backend.schemas()
                    )
                    self._conn.execute(
                        f"CREATE TEMP VIEW IF NOT EXISTS {table} AS {union}"
                    )

    def _db_for(self, user_id: str) -> str:
        """Qualified schema prefix owning ``user_id``'s rows."""
        return self._backend.schema_for(user_id)

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "CandidateStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- writes

    def _insert_sql(
        self, db: str, table: str, extra_columns: tuple[str, ...] = ()
    ) -> str:
        columns = ["user_id", "time", *self.schema.names, *extra_columns]
        placeholders = ", ".join("?" for _ in columns)
        return (
            f"INSERT INTO {db}.{table} ({', '.join(columns)})"
            f" VALUES ({placeholders})"
        )

    def _input_rows(
        self, user_id: str, trajectory, fingerprints: dict[int, str] | None
    ) -> list[tuple]:
        trajectory = np.atleast_2d(np.asarray(trajectory, dtype=float))
        if trajectory.shape[1] != len(self.schema):
            raise StorageError(
                f"trajectory has {trajectory.shape[1]} columns,"
                f" schema expects {len(self.schema)}"
            )
        fingerprints = fingerprints or {}
        return [
            (user_id, t, *map(float, row), fingerprints.get(t) or "")
            for t, row in enumerate(trajectory)
        ]

    def _candidate_rows(
        self, user_id: str, candidates, fingerprints: dict[int, str] | None
    ) -> list[tuple]:
        fingerprints = fingerprints or {}
        return [
            (
                user_id,
                int(c.time),
                *map(float, c.x),
                float(c.diff),
                int(c.gap),
                float(c.confidence),
                fingerprints.get(int(c.time)) or "",
            )
            for c in candidates
        ]

    @staticmethod
    def _spec_row(user_id: str, profile, constraint_texts) -> tuple:
        """Marshal one session spec to a ``user_sessions`` row.

        ``constraint_texts`` is a list of JSON-able entries — DSL strings
        or ``{"expr", "times", "label"}`` dicts for scoped constraints —
        or ``None`` when the session's constraints are not serialisable
        (opaque :class:`ConstraintsFunction` objects), in which case the
        session is not resumable by default.
        """
        profile_json = json.dumps([float(v) for v in np.asarray(profile).ravel()])
        constraints_json = (
            None
            if constraint_texts is None
            else json.dumps(list(constraint_texts))
        )
        return (user_id, profile_json, constraints_json)

    def store_temporal_inputs(
        self, user_id: str, trajectory, fingerprints: dict[int, str] | None = None
    ) -> None:
        """Insert/replace the rows ``x_0 .. x_T`` for ``user_id``."""
        rows = self._input_rows(user_id, trajectory, fingerprints)
        db = self._db_for(user_id)
        with self._conn:
            self._conn.execute(
                f"DELETE FROM {db}.temporal_inputs WHERE user_id = ?", (user_id,)
            )
            self._conn.executemany(
                self._insert_sql(db, "temporal_inputs", ("model_fp",)), rows
            )

    def store_candidates(
        self,
        user_id: str,
        candidates: list[Candidate],
        fingerprints: dict[int, str] | None = None,
    ) -> None:
        """Append candidates (any time points) for ``user_id``."""
        rows = self._candidate_rows(user_id, candidates, fingerprints)
        db = self._db_for(user_id)
        with self._conn:
            self._conn.executemany(
                self._insert_sql(db, "candidates", ("diff", "gap", "p", "model_fp")),
                rows,
            )

    def store_sessions(
        self,
        sessions,
        fingerprints: dict[int, str] | None = None,
        specs=None,
    ) -> None:
        """Bulk multi-user write in one transaction.

        ``sessions`` is an iterable of ``(user_id, trajectory,
        candidates)`` triples.  For every user the existing rows are
        replaced and the temporal inputs + candidates inserted; a single
        transaction covers the whole batch, so a 50-user ingest pays one
        commit instead of 150.  ``fingerprints`` maps time index to the
        producing model's content fingerprint; ``specs`` is an optional
        iterable of ``(user_id, profile, constraint_texts_or_None)``
        persisted to ``user_sessions`` for later rehydration.
        """
        per_db: dict[str, dict[str, list]] = {}
        seen: set[str] = set()
        for user_id, trajectory, candidates in sessions:
            if user_id in seen:
                raise StorageError(
                    f"duplicate user_id {user_id!r} in store_sessions batch"
                )
            seen.add(user_id)
            bucket = per_db.setdefault(
                self._db_for(user_id), {"users": [], "inputs": [], "cands": []}
            )
            bucket["users"].append((user_id,))
            bucket["inputs"].extend(
                self._input_rows(user_id, trajectory, fingerprints)
            )
            bucket["cands"].extend(
                self._candidate_rows(user_id, candidates, fingerprints)
            )
        spec_rows: dict[str, list[tuple]] = {}
        for spec in specs or ():
            row = self._spec_row(*spec)
            spec_rows.setdefault(self._db_for(spec[0]), []).append(row)
        with self._conn:
            for db, bucket in per_db.items():
                self._conn.executemany(
                    f"DELETE FROM {db}.candidates WHERE user_id = ?",
                    bucket["users"],
                )
                self._conn.executemany(
                    f"DELETE FROM {db}.temporal_inputs WHERE user_id = ?",
                    bucket["users"],
                )
                self._conn.executemany(
                    self._insert_sql(db, "temporal_inputs", ("model_fp",)),
                    bucket["inputs"],
                )
                self._conn.executemany(
                    self._insert_sql(
                        db, "candidates", ("diff", "gap", "p", "model_fp")
                    ),
                    bucket["cands"],
                )
            for db, rows in spec_rows.items():
                self._conn.executemany(
                    f"INSERT OR REPLACE INTO {db}.user_sessions"
                    " (user_id, profile, constraints) VALUES (?, ?, ?)",
                    rows,
                )

    def upsert_cells(
        self, cells, fingerprints: dict[int, str] | None = None
    ) -> int:
        """Replace the candidates of specific (user, time) cells.

        ``cells`` is an iterable of ``(user_id, time, candidates)`` or
        ``(user_id, time, candidates, x_t)`` tuples; all deletes and
        inserts run in **one transaction** (the incremental refresh
        writes every recomputed cell through a single call).  Rows of
        untouched cells are left byte-identical.  The cell's
        ``temporal_inputs`` ledger row is stamped with the new model
        fingerprint; if that row is missing (e.g. the user was fully
        cleared while their session stayed live) it is re-inserted from
        ``x_t`` when given, and the upsert fails otherwise — candidates
        without a horizon row would be invisible to the staleness ledger
        and the Figure-2 horizon queries.  Returns the number of
        candidate rows written.
        """
        fingerprints = fingerprints or {}
        written = 0
        with self._conn:
            for cell in cells:
                user_id, time, candidates = cell[0], int(cell[1]), cell[2]
                x_t = cell[3] if len(cell) > 3 else None
                db = self._db_for(user_id)
                self._conn.execute(
                    f"DELETE FROM {db}.candidates WHERE user_id = ? AND time = ?",
                    (user_id, time),
                )
                rows = self._candidate_rows(user_id, candidates, fingerprints)
                for row in rows:
                    if int(row[1]) != time:
                        raise StorageError(
                            f"candidate for time {row[1]} in cell"
                            f" ({user_id!r}, {time})"
                        )
                self._conn.executemany(
                    self._insert_sql(
                        db, "candidates", ("diff", "gap", "p", "model_fp")
                    ),
                    rows,
                )
                cursor = self._conn.execute(
                    f"UPDATE {db}.temporal_inputs SET model_fp = ?"
                    " WHERE user_id = ? AND time = ?",
                    (fingerprints.get(time) or "", user_id, time),
                )
                if cursor.rowcount == 0:
                    if x_t is None:
                        raise StorageError(
                            f"cell ({user_id!r}, {time}) has no"
                            " temporal_inputs row; pass x_t to restore it"
                        )
                    vector = np.asarray(x_t, dtype=float).ravel()
                    if vector.size != len(self.schema):
                        raise StorageError(
                            f"x_t has {vector.size} entries, schema"
                            f" expects {len(self.schema)}"
                        )
                    self._conn.execute(
                        self._insert_sql(db, "temporal_inputs", ("model_fp",)),
                        (
                            user_id,
                            time,
                            *map(float, vector),
                            fingerprints.get(time) or "",
                        ),
                    )
                written += len(rows)
        return written

    def clear_user(self, user_id: str, time: int | None = None) -> None:
        """Remove rows belonging to ``user_id``.

        With ``time`` given, only that (user, time) cell is invalidated —
        its candidates are dropped and its ledger row stamped with the
        empty fingerprint (i.e. stale, so :meth:`stale_cells` reports it
        and a refresh recomputes it), while the user's still-valid cells
        at other time points survive untouched.  The temporal-input
        vector itself stays: it is model independent, and the Figure-2
        horizon queries (Q3/Q6) must keep seeing the full horizon.
        Without ``time``, every row of the user is dropped (including
        the persisted session spec) — note that if the user still has a
        *registered* live session, the next refresh will recompute and
        re-store their cells; use :meth:`JustInTime.drop_session` to
        fully forget a user.
        """
        db = self._db_for(user_id)
        with self._conn:
            if time is None:
                self._conn.execute(
                    f"DELETE FROM {db}.candidates WHERE user_id = ?", (user_id,)
                )
                self._conn.execute(
                    f"DELETE FROM {db}.temporal_inputs WHERE user_id = ?",
                    (user_id,),
                )
                self._conn.execute(
                    f"DELETE FROM {db}.user_sessions WHERE user_id = ?",
                    (user_id,),
                )
            else:
                self._conn.execute(
                    f"DELETE FROM {db}.candidates WHERE user_id = ? AND time = ?",
                    (user_id, int(time)),
                )
                self._conn.execute(
                    f"UPDATE {db}.temporal_inputs SET model_fp = ''"
                    " WHERE user_id = ? AND time = ?",
                    (user_id, int(time)),
                )

    # -------------------------------------------------------------- reads

    def _read(self, query: str, params=()) -> list[sqlite3.Row]:
        """Internal read path: trusted, fixed SQL — no expert-interface
        policing (and none of its per-call PRAGMA round-trips).  Also
        used by the canned Figure-2 queries (:mod:`repro.db.queries`)
        and the insights layer; only :meth:`sql` — the expert
        passthrough behind the canned-question UI — is policed."""
        try:
            return self._conn.execute(query, params).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"SQL error: {exc}") from exc

    def sql(self, query: str, params=()) -> list[sqlite3.Row]:
        """Expert passthrough: run **read-only** SQL and return rows.

        The paper lets "expert users compose additional SQL queries";
        this is that interface, intended to sit behind a canned-question
        UI — so it must never be able to mutate the store.  Enforcement
        is two-layer: a statement-opener check rejects anything that is
        not a ``SELECT``/``WITH``/``VALUES``/``EXPLAIN`` with a clear
        error, and ``PRAGMA query_only`` makes the connection itself
        refuse writes for the duration (catching e.g. a
        ``WITH ... INSERT`` that passes the opener check).
        """
        stripped = _strip_leading_comments(query)
        opener = stripped.split("(", 1)[0].split(None, 1)
        if not opener or opener[0].lower() not in _READONLY_OPENERS:
            raise StorageError(
                "sql() is read-only: statements must start with one of"
                f" {tuple(o.upper() for o in _READONLY_OPENERS)};"
                " use the store's write methods to modify data"
            )
        self._conn.execute("PRAGMA query_only = ON")
        try:
            cursor = self._conn.execute(query, params)
            return cursor.fetchall()
        except (sqlite3.Error, sqlite3.Warning) as exc:
            lowered = str(exc).lower()
            # "attempt to write a readonly database" (query_only) or
            # "cannot modify X because it is a view" (sharded union views)
            if "readonly" in lowered or "read-only" in lowered or (
                "cannot modify" in lowered
            ):
                raise StorageError(
                    f"sql() is read-only: statement rejected ({exc})"
                ) from exc
            raise StorageError(f"SQL error: {exc}") from exc
        finally:
            self._conn.execute("PRAGMA query_only = OFF")

    def candidate_count(self, user_id: str | None = None) -> int:
        if user_id is None:
            rows = self._read("SELECT COUNT(*) AS n FROM candidates")
        else:
            rows = self._read(
                "SELECT COUNT(*) AS n FROM candidates WHERE user_id = ?",
                (user_id,),
            )
        return int(rows[0]["n"])

    def temporal_input(self, user_id: str, time: int) -> np.ndarray:
        """Fetch one temporal-input vector back out of the store."""
        rows = self._read(
            "SELECT * FROM temporal_inputs WHERE user_id = ? AND time = ?",
            (user_id, int(time)),
        )
        if not rows:
            raise StorageError(
                f"no temporal input for user {user_id!r} at time {time}"
            )
        row = rows[0]
        return np.array([row[name] for name in self.schema.names], dtype=float)

    def times_for(self, user_id: str) -> list[int]:
        """Sorted distinct time points present in temporal_inputs."""
        rows = self._read(
            "SELECT DISTINCT time FROM temporal_inputs WHERE user_id = ?"
            " ORDER BY time",
            (user_id,),
        )
        return [int(r["time"]) for r in rows]

    def user_ids(self) -> list[str]:
        """Sorted distinct user ids present in temporal_inputs."""
        rows = self._read(
            "SELECT DISTINCT user_id FROM temporal_inputs ORDER BY user_id"
        )
        return [str(r["user_id"]) for r in rows]

    def cell_fingerprints(self, user_id: str) -> dict[int, str]:
        """``{time: model fingerprint}`` the user's cells were computed under."""
        rows = self._read(
            "SELECT time, model_fp FROM temporal_inputs WHERE user_id = ?"
            " ORDER BY time",
            (user_id,),
        )
        return {int(r["time"]): str(r["model_fp"]) for r in rows}

    def ledger_snapshot(self) -> dict[str, dict[int, str]]:
        """The whole staleness ledger in one scan:
        ``{user_id: {time: model_fp}}`` (one scan beats per-user or
        per-time queries, which on the sharded backend would each fan out
        across every shard)."""
        rows = self._read(
            "SELECT user_id, time, model_fp FROM temporal_inputs"
            " ORDER BY user_id, time"
        )
        snapshot: dict[str, dict[int, str]] = {}
        for row in rows:
            snapshot.setdefault(str(row["user_id"]), {})[int(row["time"])] = str(
                row["model_fp"]
            )
        return snapshot

    def stale_cells(
        self, fingerprints: dict[int, str]
    ) -> list[tuple[str, int]]:
        """(user, time) cells whose ledger fingerprint differs from current.

        ``fingerprints`` maps time index to the *current* model
        fingerprint; any cell recorded under a different (or empty)
        fingerprint is stale.  Cells at time points missing from
        ``fingerprints`` are not reported.
        """
        return [
            (user_id, t)
            for user_id, cells in sorted(self.ledger_snapshot().items())
            for t, fp in sorted(cells.items())
            if t in fingerprints and fp != (fingerprints[t] or "")
        ]

    def cell_vectors(self, user_id: str, time: int) -> np.ndarray:
        """Stored candidate feature vectors of one cell, shape ``(n, d)``.

        Insertion-ordered (by rowid); the warm-start path feeds these to
        the beam as seed states.
        """
        rows = self._read(
            "SELECT * FROM candidates WHERE user_id = ? AND time = ?"
            " ORDER BY id",
            (user_id, int(time)),
        )
        if not rows:
            return np.empty((0, len(self.schema)))
        return np.vstack([self.row_to_vector(row) for row in rows])

    def load_candidates(self, user_id: str) -> list[Candidate]:
        """Reconstruct the user's :class:`Candidate` objects from rows."""
        rows = self._read(
            "SELECT * FROM candidates WHERE user_id = ? ORDER BY time, id",
            (user_id,),
        )
        return [
            Candidate(
                self.row_to_vector(row),
                int(row["time"]),
                CandidateMetrics(
                    diff=float(row["diff"]),
                    gap=int(row["gap"]),
                    confidence=float(row["p"]),
                ),
            )
            for row in rows
        ]

    def load_session_specs(self) -> list[tuple[str, np.ndarray, list[str] | None]]:
        """Persisted session specs: ``(user_id, profile, constraint_texts)``."""
        rows = self._read(
            "SELECT user_id, profile, constraints FROM user_sessions"
            " ORDER BY user_id"
        )
        specs = []
        for row in rows:
            constraints = (
                None
                if row["constraints"] is None
                else list(json.loads(row["constraints"]))
            )
            specs.append(
                (
                    str(row["user_id"]),
                    np.asarray(json.loads(row["profile"]), dtype=float),
                    constraints,
                )
            )
        return specs

    def row_to_vector(self, row: sqlite3.Row) -> np.ndarray:
        """Extract the feature vector from any row with feature columns."""
        return np.array([row[name] for name in self.schema.names], dtype=float)
