"""Pluggable storage backends for the candidate store.

:class:`~repro.db.store.CandidateStore` owns the relational schema, SQL
generation and row marshalling; a :class:`StoreBackend` owns *where* the
rows live.  Three backends are provided:

``SQLiteBackend`` (``'sqlite'``)
    One SQLite database file — the durable single-node default.
``MemoryBackend`` (``'memory'``)
    One in-process ``:memory:`` database — tests, demos, ephemeral
    sessions.
``ShardedSQLiteBackend`` (``'sharded'``)
    ``n_shards`` SQLite databases attached to one router connection;
    each user's rows live in exactly one shard, chosen by a stable hash
    of the user id.  Writes address the owning shard directly (separate
    files → separate write locks when backed by disk), while global
    reads — the expert SQL passthrough and the Figure-2 canned queries —
    go through ``UNION ALL`` views, so the query layer is backend
    agnostic.

All backends speak sqlite3 underneath: the contract is *connection
topology* (how many databases, which schema a user's rows live in), not
a new query language.  The shared backend-contract test suite in
``tests/test_store_backends.py`` runs every public store operation
against all three.
"""

from __future__ import annotations

import sqlite3
import zlib
from pathlib import Path

from repro.exceptions import StorageError

#: SQLite busy timeout (seconds).  Worker-pool processes contend on the
#: shared file's write lock during lease claims and cell upserts; the
#: sqlite3 default of 5s is too twitchy when a claim scan lands behind a
#: bulk upsert on a loaded machine.
_BUSY_TIMEOUT_S = 30.0

__all__ = [
    "BACKEND_NAMES",
    "MemoryBackend",
    "ShardedSQLiteBackend",
    "SQLiteBackend",
    "StoreBackend",
    "make_backend",
]


class StoreBackend:
    """Connection topology behind a :class:`~repro.db.store.CandidateStore`.

    Subclasses provide one sqlite3 connection (possibly with several
    attached databases) and answer two questions: which database schemas
    hold table copies, and which schema owns a given user's rows.

    The backend also owns the **store-side clock** (:meth:`clock_sql`):
    lease timestamps are taken from an SQL expression evaluated *by the
    database*, not from ``time.time()`` in whichever process happens to
    call — so every worker sharing a store reads the same clock source
    and host clock skew cannot shrink or stretch leases.  For the
    sqlite3 family that is ``julianday('now')`` converted to Unix
    seconds; an out-of-process backend would return its server-side
    equivalent (e.g. ``EXTRACT(EPOCH FROM now())``).
    """

    #: the single connection all reads and writes go through
    conn: sqlite3.Connection

    #: Unix-epoch seconds as computed by SQLite itself.  2440587.5 is the
    #: julian day of 1970-01-01T00:00:00Z; julianday('now') has ~1 ms
    #: resolution, ample for multi-second leases.
    CLOCK_SQL = "(julianday('now') - 2440587.5) * 86400.0"

    def schemas(self) -> tuple[str, ...]:
        """Database schema names holding one copy of each table."""
        raise NotImplementedError

    def schema_for(self, user_id: str) -> str:
        """Schema owning ``user_id``'s rows (stable across processes)."""
        raise NotImplementedError

    def clock_sql(self) -> str:
        """SQL expression yielding the store-side clock in Unix seconds."""
        return self.CLOCK_SQL

    @property
    def sharded(self) -> bool:
        return len(self.schemas()) > 1

    def close(self) -> None:
        self.conn.close()


class SQLiteBackend(StoreBackend):
    """Single SQLite database (file-backed unless ``':memory:'``)."""

    name = "sqlite"

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)
        self.conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S)

    def schemas(self) -> tuple[str, ...]:
        return ("main",)

    def schema_for(self, user_id: str) -> str:
        return "main"


class MemoryBackend(SQLiteBackend):
    """In-process ``:memory:`` database; contents die with the store."""

    name = "memory"

    def __init__(self):
        super().__init__(":memory:")


class ShardedSQLiteBackend(StoreBackend):
    """``n_shards`` databases attached to one router connection.

    ``path`` of ``':memory:'`` attaches independent in-memory shards;
    otherwise shard ``i`` lives in ``<path>.shard<i>``.  The shard count
    is capped by SQLite's attached-database limit (10 by default); the
    cap here is 8, leaving room for the router and one user attach.
    """

    name = "sharded"
    MAX_SHARDS = 8

    def __init__(self, path: str | Path = ":memory:", n_shards: int = 4):
        if not 1 <= n_shards <= self.MAX_SHARDS:
            raise StorageError(
                f"n_shards must be in [1, {self.MAX_SHARDS}], got {n_shards}"
            )
        self.path = str(path)
        self.n_shards = n_shards
        if self.path != ":memory:":
            # reopening with a different shard count than exists on disk
            # would rehome users (crc32 % n_shards): fewer shards hides
            # rows, more shards duplicates them on the next rewrite
            existing = _existing_shard_count(self.path)
            if existing not in (0, n_shards):
                raise StorageError(
                    f"{self.path} has {existing} shard files but n_shards"
                    f"={n_shards}; reopen with the original shard count"
                )
        # file-backed shards get a file-backed router at <path> (it holds
        # no tables, only the journal anchor): SQLite only guarantees
        # atomic commits across attached databases when the main database
        # is not ':memory:', and store_sessions promises one atomic
        # transaction over the whole multi-shard batch
        router = ":memory:" if self.path == ":memory:" else self.path
        self.conn = sqlite3.connect(router, timeout=_BUSY_TIMEOUT_S)
        for i in range(n_shards):
            target = (
                ":memory:" if self.path == ":memory:" else f"{self.path}.shard{i}"
            )
            self.conn.execute(f"ATTACH DATABASE ? AS shard{i}", (target,))

    def schemas(self) -> tuple[str, ...]:
        return tuple(f"shard{i}" for i in range(self.n_shards))

    def schema_for(self, user_id: str) -> str:
        # crc32 is stable across processes and python versions (unlike
        # hash()), so a user's shard assignment survives restarts
        return f"shard{zlib.crc32(str(user_id).encode()) % self.n_shards}"


_BACKENDS = {
    "sqlite": SQLiteBackend,
    "memory": MemoryBackend,
    "sharded": ShardedSQLiteBackend,
}

#: Names accepted wherever a backend is given as a string.
BACKEND_NAMES: tuple[str, ...] = tuple(sorted(_BACKENDS))


def _existing_shard_count(path: str) -> int:
    """Consecutive ``<path>.shard<i>`` files already on disk."""
    count = 0
    while Path(f"{path}.shard{count}").exists():
        count += 1
    return count


def make_backend(
    backend: str | StoreBackend | None,
    path: str | Path = ":memory:",
    n_shards: int = 4,
) -> StoreBackend:
    """Resolve a backend spec to an instance.

    ``None`` infers from ``path``: ``'memory'`` for ``':memory:'``;
    ``'sharded'`` (with the on-disk shard count) when ``path`` does not
    exist but ``<path>.shard0`` does — so a sharded database reopens
    correctly without re-passing the flag; ``'sqlite'`` otherwise,
    preserving the historical ``CandidateStore(schema, path)``
    behaviour.
    """
    path_str = str(path)
    if isinstance(backend, StoreBackend):
        # a pre-built instance carries its own location — a conflicting
        # explicit path would be silently ignored (data written elsewhere
        # than the caller believes), so reject the ambiguity
        instance_path = getattr(backend, "path", ":memory:")
        if path_str != ":memory:" and instance_path != path_str:
            raise StorageError(
                f"backend instance is bound to {instance_path!r} but"
                f" path={path_str!r} was also given; pass one or the other"
            )
        return backend
    existing_shards = (
        0 if path_str == ":memory:" else _existing_shard_count(path_str)
    )
    if backend is None:
        if path_str == ":memory:":
            backend = "memory"
        elif existing_shards:
            # <path>.shard0 .. exist: this is a sharded store (the file
            # at <path> itself is only its router/journal anchor)
            backend = "sharded"
            n_shards = existing_shards
        else:
            backend = "sqlite"
    if backend not in _BACKENDS:
        raise StorageError(
            f"unknown store backend {backend!r}; choose from {BACKEND_NAMES}"
        )
    # backend-type mismatch guard: opening existing data with the wrong
    # topology would silently present an empty store (sharded views
    # shadow a plain database; a bare router file has no tables)
    if (
        backend == "sharded"
        and not existing_shards
        and path_str != ":memory:"
        and Path(path_str).exists()
        and Path(path_str).stat().st_size > 0
    ):
        raise StorageError(
            f"{path_str} holds a plain SQLite database (no shard files);"
            " open it with backend='sqlite'"
        )
    if backend == "sqlite" and existing_shards:
        raise StorageError(
            f"{path_str} is a sharded store ({existing_shards} shard"
            " files); open it with backend='sharded'"
        )
    if backend == "memory" and path_str != ":memory:":
        # silently dropping a real path would make the caller believe
        # their sessions were persisted
        raise StorageError(
            f"backend 'memory' cannot take a database path ({path_str});"
            " drop the path or use backend='sqlite'/'sharded'"
        )
    if backend == "memory":
        return MemoryBackend()
    if backend == "sharded":
        return ShardedSQLiteBackend(path, n_shards=n_shards)
    return SQLiteBackend(path)
