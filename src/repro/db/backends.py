"""Pluggable storage backends for the candidate store.

:class:`~repro.db.store.CandidateStore` owns the relational schema, SQL
generation and row marshalling; a :class:`StoreBackend` owns *where* the
rows live.  Three backends are provided:

``SQLiteBackend`` (``'sqlite'``)
    One SQLite database file — the durable single-node default.
``MemoryBackend`` (``'memory'``)
    One in-process ``:memory:`` database — tests, demos, ephemeral
    sessions.
``ShardedSQLiteBackend`` (``'sharded'``)
    ``n_shards`` SQLite databases attached to one router connection;
    each user's rows live in exactly one shard, chosen by a stable hash
    of the user id.  Writes address the owning shard directly (separate
    files → separate write locks when backed by disk), while global
    reads — the expert SQL passthrough and the Figure-2 canned queries —
    go through ``UNION ALL`` views, so the query layer is backend
    agnostic.

All backends speak sqlite3 underneath: the contract is *connection
topology* (how many databases, which schema a user's rows live in) plus
a small **DB-API dialect seam** (:meth:`StoreBackend.placeholder`,
:meth:`StoreBackend.begin_immediate_sql`,
:meth:`StoreBackend.clock_sql`, :meth:`StoreBackend.write_connection`)
— the handful of spots where SQL engines actually differ — so an
out-of-process backend (postgres/mysql) is a ~100-line subclass, not a
store rewrite.  The shared backend-contract test suite in
``tests/test_store_backends.py`` runs every public store operation
against all three.
"""

from __future__ import annotations

import sqlite3
import zlib
from pathlib import Path

from repro.exceptions import StorageError

#: SQLite busy timeout (seconds).  Worker-pool processes contend on the
#: shared file's write lock during lease claims and cell upserts; the
#: sqlite3 default of 5s is too twitchy when a claim scan lands behind a
#: bulk upsert on a loaded machine.
_BUSY_TIMEOUT_S = 30.0

__all__ = [
    "BACKEND_NAMES",
    "MemoryBackend",
    "ShardedSQLiteBackend",
    "SQLiteBackend",
    "StoreBackend",
    "make_backend",
    "recover_rebalance",
]


class StoreBackend:
    """Connection topology behind a :class:`~repro.db.store.CandidateStore`.

    Subclasses provide one sqlite3 connection (possibly with several
    attached databases) and answer two questions: which database schemas
    hold table copies, and which schema owns a given user's rows.

    The backend also owns the **SQL dialect seam** — the four spots
    where relational engines actually differ, so the store's SQL
    generation stays engine agnostic:

    :meth:`placeholder`
        Bind-parameter marker (sqlite3 ``?``; a postgres/mysql backend
        returns ``%s``).
    :meth:`begin_immediate_sql`
        Statement opening a transaction that takes the coordination
        write lock *up front* — what serialises lease claims across
        processes.  SQLite: ``BEGIN IMMEDIATE``; postgres would return
        ``BEGIN`` and rely on ``SELECT ... FOR UPDATE`` row locks
        (:meth:`for_update_suffix`).
    :meth:`for_update_suffix`
        Row-lock suffix appended to the claim scan.  Empty for the
        sqlite3 family (the immediate transaction already owns the
        database write lock); ``" FOR UPDATE"`` on server backends.
    :meth:`clock_sql`
        The **store-side clock**: lease timestamps are taken from an
        SQL expression evaluated *by the database*, not from
        ``time.time()`` in whichever process happens to call — so every
        worker sharing a store reads the same clock source and host
        clock skew cannot shrink or stretch leases.  For the sqlite3
        family that is ``julianday('now')`` converted to Unix seconds;
        an out-of-process backend would return its server-side
        equivalent (e.g. ``EXTRACT(EPOCH FROM now())``).

    Finally the backend owns **write routing**
    (:meth:`write_connection`): which connection a bulk write to one
    schema should use.  Single-connection backends return ``self.conn``;
    the file-backed sharded backend returns a dedicated per-shard
    connection so writes to different shards commit in parallel
    (:attr:`parallel_write_schemas`), coordinated by the store's
    two-phase group commit.
    """

    #: the router connection: global reads, lease claims, coordination
    conn: sqlite3.Connection

    #: Unix-epoch seconds as computed by SQLite itself.  2440587.5 is the
    #: julian day of 1970-01-01T00:00:00Z; julianday('now') has ~1 ms
    #: resolution, ample for multi-second leases.
    CLOCK_SQL = "(julianday('now') - 2440587.5) * 86400.0"

    def schemas(self) -> tuple[str, ...]:
        """Database schema names holding one copy of each table."""
        raise NotImplementedError

    def schema_for(self, user_id: str) -> str:
        """Schema owning ``user_id``'s rows (stable across processes)."""
        raise NotImplementedError

    # ------------------------------------------------------ dialect seam

    def placeholder(self) -> str:
        """Bind-parameter marker of the engine's DB-API paramstyle."""
        return "?"

    def begin_immediate_sql(self) -> str:
        """Statement opening a write-lock-up-front transaction."""
        return "BEGIN IMMEDIATE"

    def for_update_suffix(self) -> str:
        """Row-lock suffix for the claim scan ('' when the transaction
        lock already covers it)."""
        return ""

    def clock_sql(self) -> str:
        """SQL expression yielding the store-side clock in Unix seconds."""
        return self.CLOCK_SQL

    # ----------------------------------------------------- write routing

    def write_connection(self, schema: str) -> tuple[sqlite3.Connection, str]:
        """``(connection, schema prefix)`` for bulk writes to ``schema``.

        The returned prefix qualifies table names on that connection:
        single-connection backends keep the schema name; a dedicated
        per-shard connection sees its shard as ``main``.
        """
        return self.conn, schema

    @property
    def parallel_write_schemas(self) -> bool:
        """Whether :meth:`write_connection` hands out independent
        connections whose commits do not serialise on one lock (the
        store then runs multi-schema writes as a two-phase group
        commit)."""
        return False

    # ----------------------------------------------------- read replicas

    def replica_connection(
        self, schema: str
    ) -> tuple[sqlite3.Connection, str] | None:
        """A **new read-only** connection to ``schema``, or ``None``.

        The serving tier's replica pool calls this to open reader
        connections that cannot contend with (or corrupt) the write
        path: each is an independent handle onto the schema's database,
        opened read-only at the engine level and additionally pinned
        with ``PRAGMA query_only`` so even a bug in the serving layer
        cannot write through it.  Returns ``(connection, prefix)`` like
        :meth:`write_connection`; ``None`` means the topology has no
        separately-openable replica (in-memory databases are reachable
        only through their creating connection) and the pool must fall
        back to the router.  ``check_same_thread=False`` because the
        pool hands connections to server executor threads (each
        connection is used by one thread at a time).

        A server backend (postgres/mysql) overrides this to connect to
        an actual read replica — same seam, same pool.
        """
        return None

    @property
    def sharded(self) -> bool:
        return len(self.schemas()) > 1

    def close(self) -> None:
        self.conn.close()


class SQLiteBackend(StoreBackend):
    """Single SQLite database (file-backed unless ``':memory:'``)."""

    name = "sqlite"

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)
        # check_same_thread=False: the serving tier's replica pool falls
        # back to this connection (behind a mutex) when the database has
        # no separately-openable replica files
        self.conn = sqlite3.connect(
            self.path, timeout=_BUSY_TIMEOUT_S, check_same_thread=False
        )

    def schemas(self) -> tuple[str, ...]:
        return ("main",)

    def schema_for(self, user_id: str) -> str:
        return "main"

    def replica_connection(
        self, schema: str
    ) -> tuple[sqlite3.Connection, str] | None:
        if self.path == ":memory:":
            return None
        return _open_replica(self.path), "main"


class MemoryBackend(SQLiteBackend):
    """In-process ``:memory:`` database; contents die with the store."""

    name = "memory"

    def __init__(self):
        super().__init__(":memory:")


class ShardedSQLiteBackend(StoreBackend):
    """``n_shards`` databases attached to one router connection.

    ``path`` of ``':memory:'`` attaches independent in-memory shards;
    otherwise shard ``i`` lives in ``<path>.shard<i>``.  The shard count
    is capped by SQLite's attached-database limit (10 by default); the
    cap here is 8, leaving room for the router and one user attach.
    """

    name = "sharded"
    MAX_SHARDS = 8

    def __init__(self, path: str | Path = ":memory:", n_shards: int = 4):
        if not 1 <= n_shards <= self.MAX_SHARDS:
            raise StorageError(
                f"n_shards must be in [1, {self.MAX_SHARDS}], got {n_shards}"
            )
        self.path = str(path)
        self.n_shards = n_shards
        if self.path != ":memory:":
            # a crashed rebalance may have left the shard files mid-swap;
            # finish (or roll back) the migration before counting them
            recover_rebalance(self.path)
            # reopening with a different shard count than exists on disk
            # would rehome users (crc32 % n_shards): fewer shards hides
            # rows, more shards duplicates them on the next rewrite
            existing = _existing_shard_count(self.path)
            if existing not in (0, n_shards):
                raise StorageError(
                    f"{self.path} has {existing} shard files but n_shards"
                    f"={n_shards}; reopen with the original shard count"
                )
        # file-backed shards get a file-backed router at <path> (it holds
        # the coordination tables — group-commit markers, rebalance
        # state — never user rows): SQLite only guarantees atomic
        # commits across attached databases when the main database is
        # not ':memory:', and the lease claim path relies on the
        # router's write lock
        router = ":memory:" if self.path == ":memory:" else self.path
        # check_same_thread=False for the same reason as SQLiteBackend:
        # the replica pool's in-memory fallback serves reads through the
        # router from server worker threads, serialised by a mutex
        self.conn = sqlite3.connect(
            router, timeout=_BUSY_TIMEOUT_S, check_same_thread=False
        )
        for i in range(n_shards):
            target = (
                ":memory:" if self.path == ":memory:" else f"{self.path}.shard{i}"
            )
            self.conn.execute(f"ATTACH DATABASE ? AS shard{i}", (target,))
        #: lazily opened dedicated per-shard write connections
        self._shard_conns: dict[str, sqlite3.Connection] = {}

    def schemas(self) -> tuple[str, ...]:
        return tuple(f"shard{i}" for i in range(self.n_shards))

    @staticmethod
    def shard_index(user_id: str, n_shards: int) -> int:
        """Stable shard assignment: crc32 survives processes and python
        versions (unlike ``hash()``), so it also survives restarts —
        and rebalancing reuses the same function for the target
        layout."""
        return zlib.crc32(str(user_id).encode()) % n_shards

    def schema_for(self, user_id: str) -> str:
        return f"shard{self.shard_index(user_id, self.n_shards)}"

    def write_connection(self, schema: str) -> tuple[sqlite3.Connection, str]:
        """A dedicated connection to ``schema``'s shard file.

        Separate files have separate write locks, so bulk writes to
        different shards commit concurrently instead of serialising on
        the router.  In-memory shards are reachable only through the
        router's ATTACHes, so they keep the single-connection path.
        ``check_same_thread=False`` lets the store's group commit drive
        the per-shard phase-1 transactions from worker threads; each
        connection is only ever used by one thread at a time.
        """
        if self.path == ":memory:":
            return self.conn, schema
        conn = self._shard_conns.get(schema)
        if conn is None:
            index = int(schema.removeprefix("shard"))
            conn = sqlite3.connect(
                f"{self.path}.shard{index}",
                timeout=_BUSY_TIMEOUT_S,
                check_same_thread=False,
            )
            conn.row_factory = sqlite3.Row
            self._shard_conns[schema] = conn
        return conn, "main"

    @property
    def parallel_write_schemas(self) -> bool:
        return self.path != ":memory:"

    def replica_connection(
        self, schema: str
    ) -> tuple[sqlite3.Connection, str] | None:
        """Read-only connection straight to the shard file.

        Replica reads address the owning shard directly (prefix
        ``main``), skipping the router's ``UNION ALL`` views — a
        per-user read only ever needs its own shard, and the direct
        index scan is what makes replica reads fast.
        """
        if self.path == ":memory:":
            return None
        index = int(schema.removeprefix("shard"))
        return _open_replica(f"{self.path}.shard{index}"), "main"

    def close(self) -> None:
        for conn in self._shard_conns.values():
            conn.close()
        self._shard_conns.clear()
        super().close()


def _open_replica(path: str) -> sqlite3.Connection:
    """Open ``path`` as a read-only reader connection.

    ``mode=ro`` refuses the open at the engine level if anything tried
    to write; ``PRAGMA query_only`` belt-and-braces the session so a
    stray ``INSERT`` raises instead of upgrading to a write lock.
    """
    conn = sqlite3.connect(
        f"file:{path}?mode=ro",
        uri=True,
        timeout=_BUSY_TIMEOUT_S,
        check_same_thread=False,
    )
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA query_only = ON")
    return conn


_BACKENDS = {
    "sqlite": SQLiteBackend,
    "memory": MemoryBackend,
    "sharded": ShardedSQLiteBackend,
}

#: Names accepted wherever a backend is given as a string.
BACKEND_NAMES: tuple[str, ...] = tuple(sorted(_BACKENDS))


def _existing_shard_count(path: str) -> int:
    """Consecutive ``<path>.shard<i>`` files already on disk."""
    count = 0
    while Path(f"{path}.shard{count}").exists():
        count += 1
    return count


# -------------------------------------------------- rebalance recovery
#
# `CandidateStore.rebalance(n_shards)` migrates a file-backed sharded
# store to a new shard count in two durable phases recorded in the
# router's `rebalance_state` table:
#
#   phase 'build' — the new layout is written to staging files
#       `<path>.rebal<i>`; the live shard files are never touched, so a
#       crash here simply aborts (staging files are disposable).
#   phase 'swap'  — staging files replace the shard files one atomic
#       rename at a time (old files are parked at `<path>.old<i>` until
#       the state row clears).  Each index has exactly one consistent
#       action, so the swap is restartable from any crash point.
#
# `recover_rebalance(path)` is called before any shard-count inference
# (`make_backend`, `ShardedSQLiteBackend.__init__`) so a half-swapped
# directory is healed before anything reads it.


def recover_rebalance(path: str | Path) -> str | None:
    """Finish or roll back a rebalance a dead process left half done.

    Returns ``'completed'`` (swap rolled forward), ``'aborted'`` (build
    discarded) or ``None`` (no migration was in flight).  Safe to call
    any time the store is not actively rebalancing; parked ``.old<i>``
    files of a fully finished swap are swept as a side effect.
    """
    router = Path(path)
    if not router.exists():
        return None
    conn = sqlite3.connect(str(router), timeout=_BUSY_TIMEOUT_S)
    try:
        try:
            row = conn.execute(
                "SELECT phase, old_shards, new_shards FROM rebalance_state"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            lowered = str(exc).lower()
            if "no such table" in lowered or "not a database" in lowered:
                # no state table was ever created (or the path is not
                # SQLite at all — the real open will say so properly):
                # nothing was in flight
                return None
            # anything else (e.g. 'database is locked' past the busy
            # timeout) must NOT read as 'no migration in flight' — the
            # caller would infer a shard layout from a possibly
            # half-swapped directory
            raise StorageError(
                f"could not check for an interrupted rebalance: {exc}"
            ) from exc
        if row is None:
            _sweep_files(str(router), "old")
            return None
        phase, old_n, new_n = str(row[0]), int(row[1]), int(row[2])
        if phase == "build":
            # live shards untouched: discard staging, forget the intent
            _sweep_files(str(router), "rebal")
            with conn:
                conn.execute("DELETE FROM rebalance_state")
            return "aborted"
        complete_swap(str(router), old_n, new_n, conn)
        return "completed"
    finally:
        conn.close()


def complete_swap(
    path: str, old_n: int, new_n: int, state_conn: sqlite3.Connection,
    fault_hook=None,
) -> None:
    """Roll the rename phase of a rebalance forward to completion.

    Idempotent and restartable: for every shard index exactly one
    consistent action remains (`.rebal<i>` present → it is the new
    shard; absent with ``i >= new_n`` → the old shard is surplus), and
    each step is a single atomic :func:`os.replace`.  ``fault_hook`` is
    test instrumentation — raising from it simulates the process dying
    between renames.
    """
    for i in range(max(old_n, new_n)):
        staging = Path(f"{path}.rebal{i}")
        shard = Path(f"{path}.shard{i}")
        parked = Path(f"{path}.old{i}")
        if staging.exists():
            if shard.exists():
                shard.replace(parked)
            staging.replace(shard)
        elif i >= new_n and shard.exists():
            shard.replace(parked)  # shrinking: surplus shard retired
        if fault_hook is not None:
            fault_hook(f"swapped:{i}")
    with state_conn:
        state_conn.execute("DELETE FROM rebalance_state")
    if fault_hook is not None:
        fault_hook("state-cleared")
    _sweep_files(path, "old")


def _sweep_files(path: str, tag: str) -> None:
    """Delete every ``<path>.<tag><i>`` file (parked/staging leftovers).

    Globbed, not counted: a crash mid-swap can park a non-contiguous
    index set (e.g. only ``.old2``).
    """
    router = Path(path)
    for leftover in router.parent.glob(f"{router.name}.{tag}[0-9]*"):
        leftover.unlink()


def make_backend(
    backend: str | StoreBackend | None,
    path: str | Path = ":memory:",
    n_shards: int = 4,
) -> StoreBackend:
    """Resolve a backend spec to an instance.

    ``None`` infers from ``path``: ``'memory'`` for ``':memory:'``;
    ``'sharded'`` (with the on-disk shard count) when ``path`` does not
    exist but ``<path>.shard0`` does — so a sharded database reopens
    correctly without re-passing the flag; ``'sqlite'`` otherwise,
    preserving the historical ``CandidateStore(schema, path)``
    behaviour.
    """
    path_str = str(path)
    if isinstance(backend, StoreBackend):
        # a pre-built instance carries its own location — a conflicting
        # explicit path would be silently ignored (data written elsewhere
        # than the caller believes), so reject the ambiguity
        instance_path = getattr(backend, "path", ":memory:")
        if path_str != ":memory:" and instance_path != path_str:
            raise StorageError(
                f"backend instance is bound to {instance_path!r} but"
                f" path={path_str!r} was also given; pass one or the other"
            )
        return backend
    if path_str != ":memory:":
        # heal a crashed rebalance before the shard files are counted —
        # a half-swapped directory would otherwise infer a wrong layout.
        # ShardedSQLiteBackend.__init__ runs the same (idempotent, two
        # cheap queries) probe so *direct* construction is covered too;
        # this call must stay because the inference and mismatch guards
        # below read the shard files before any backend exists.
        recover_rebalance(path_str)
    existing_shards = (
        0 if path_str == ":memory:" else _existing_shard_count(path_str)
    )
    if backend is None:
        if path_str == ":memory:":
            backend = "memory"
        elif existing_shards:
            # <path>.shard0 .. exist: this is a sharded store (the file
            # at <path> itself is only its router/journal anchor)
            backend = "sharded"
            n_shards = existing_shards
        else:
            backend = "sqlite"
    if backend not in _BACKENDS:
        raise StorageError(
            f"unknown store backend {backend!r}; choose from {BACKEND_NAMES}"
        )
    # backend-type mismatch guard: opening existing data with the wrong
    # topology would silently present an empty store (sharded views
    # shadow a plain database; a bare router file has no tables)
    if (
        backend == "sharded"
        and not existing_shards
        and path_str != ":memory:"
        and Path(path_str).exists()
        and Path(path_str).stat().st_size > 0
    ):
        raise StorageError(
            f"{path_str} holds a plain SQLite database (no shard files);"
            " open it with backend='sqlite'"
        )
    if backend == "sqlite" and existing_shards:
        raise StorageError(
            f"{path_str} is a sharded store ({existing_shards} shard"
            " files); open it with backend='sharded'"
        )
    if backend == "memory" and path_str != ":memory:":
        # silently dropping a real path would make the caller believe
        # their sessions were persisted
        raise StorageError(
            f"backend 'memory' cannot take a database path ({path_str});"
            " drop the path or use backend='sqlite'/'sharded'"
        )
    if backend == "memory":
        return MemoryBackend()
    if backend == "sharded":
        return ShardedSQLiteBackend(path, n_shards=n_shards)
    return SQLiteBackend(path)
