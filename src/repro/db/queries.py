"""The six canned queries of Figure 2.

Each function mirrors one predefined question from the paper's
introduction and its SQL from Figure 2, scoped to a single user (the
demo's candidates table is per-user; the reproduction stores all users in
one table with a ``user_id`` column, so every query adds that predicate).

Deviations from the verbatim Figure-2 SQL, all semantic-preserving:

* ``diff = 0`` is ``diff <= :eps`` — diff is a float computed in a scaled
  space;
* Q3's feature column is parametrised (Figure 2 hard-codes ``income``);
  the column name is validated against the schema before interpolation;
* Q6's ``>= ALL (...)`` (not valid SQLite) is rewritten with the standard
  double ``NOT EXISTS`` encoding of universal quantification.

Every function returns plain Python values / row dicts, ready for the
insights layer.

The SQL itself lives in :mod:`repro.db.prepared`, compiled once per
(dialect placeholder, feature schema) and bound per call — these
functions are the store-facing entry points, going through the public
:meth:`CandidateStore.read` / :attr:`CandidateStore.placeholder` seam.
The serving tier binds the *same* compiled statements against its
read-only replica connections, which is what guarantees byte-identical
answers between the two paths.
"""

from __future__ import annotations

from typing import Any

from repro.db.prepared import PreparedQueries, prepared_for, row_to_dict
from repro.db.store import CandidateStore

__all__ = [
    "prepared",
    "q1_no_modification",
    "q2_minimal_features_set",
    "q3_dominant_feature",
    "q4_minimal_overall_modification",
    "q5_maximal_confidence",
    "q6_turning_point",
    "q7_affordable_time",
    "row_to_dict",
]


def prepared(store: CandidateStore) -> PreparedQueries:
    """The compiled query set matching ``store``'s dialect and schema."""
    return prepared_for(store.placeholder, store.schema.names)


def q1_no_modification(store: CandidateStore, user_id: str) -> int | None:
    """Q1: closest time point at which reapplying *unchanged* is approved.

    Figure 2: ``SELECT Min(time) FROM candidates WHERE diff = 0``.
    Returns the time index, or ``None`` when no such point exists.
    """
    return prepared(store).q1(store.read, user_id)


def q7_affordable_time(
    store: CandidateStore, user_id: str, budget: float
) -> dict[str, Any] | None:
    """Q7 (extension): earliest time reachable within an effort budget.

    Not one of the six Figure-2 queries — the paper presents its list as
    examples ("such as") and this is the natural seventh: "given that I
    can only afford ``diff <= budget`` of change, when is the earliest I
    can be approved, and how?"  Returns the cheapest qualifying row at
    the earliest qualifying time, or ``None``.
    """
    return prepared(store).q7(store.read, user_id, budget)


def q2_minimal_features_set(
    store: CandidateStore, user_id: str
) -> dict[str, Any] | None:
    """Q2: the candidate modifying the fewest features.

    Figure 2: ``SELECT * FROM candidates ORDER BY gap LIMIT 1`` (diff then
    confidence break ties deterministically).
    """
    return prepared(store).q2(store.read, user_id)


def q3_dominant_feature(
    store: CandidateStore, user_id: str, feature: str
) -> dict[str, Any]:
    """Q3: at which time points does modifying *only* ``feature`` suffice?

    Figure 2 (for income): times with a candidate of ``gap = 0`` or
    ``gap = 1`` whose single change is the feature.  The feature is
    *dominant* when those times cover every time point in the user's
    horizon.  Returns ``{'times': [...], 'all_times': [...], 'dominant': bool}``.
    """
    return prepared(store).q3(
        store.read, user_id, feature, store.times_for(user_id)
    )


def q4_minimal_overall_modification(
    store: CandidateStore, user_id: str
) -> dict[str, Any] | None:
    """Q4: the overall-minimal modification by the diff distance measure.

    Figure 2: ``SELECT Min(diff) FROM candidates``; the full achieving row
    is returned so the UI can render the plan, not just the number.
    """
    return prepared(store).q4(store.read, user_id)


def q5_maximal_confidence(
    store: CandidateStore, user_id: str
) -> dict[str, Any] | None:
    """Q5: the modification (and time) maximising approval confidence.

    Figure 2: ``SELECT * FROM candidates ORDER BY p DESC LIMIT 1``.
    """
    return prepared(store).q5(store.read, user_id)


def q6_turning_point(
    store: CandidateStore, user_id: str, alpha: float
) -> int | None:
    """Q6: earliest time after which confidence > α is always achievable.

    Smallest time point t* such that *every* time point ``t >= t*`` has a
    candidate with ``p > α``; ``None`` when even the final time point has
    no such candidate.  Universal quantification is encoded with a double
    ``NOT EXISTS`` (Figure 2 uses the non-portable ``>= ALL``).
    """
    return prepared(store).q6(store.read, user_id, alpha)
