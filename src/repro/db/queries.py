"""The six canned queries of Figure 2.

Each function mirrors one predefined question from the paper's
introduction and its SQL from Figure 2, scoped to a single user (the
demo's candidates table is per-user; the reproduction stores all users in
one table with a ``user_id`` column, so every query adds that predicate).

Deviations from the verbatim Figure-2 SQL, all semantic-preserving:

* ``diff = 0`` is ``diff <= :eps`` — diff is a float computed in a scaled
  space;
* Q3's feature column is parametrised (Figure 2 hard-codes ``income``);
  the column name is validated against the schema before interpolation;
* Q6's ``>= ALL (...)`` (not valid SQLite) is rewritten with the standard
  double ``NOT EXISTS`` encoding of universal quantification.

Every function returns plain Python values / row dicts, ready for the
insights layer.

Positional bind parameters go through the store backend's dialect seam
(``StoreBackend.placeholder()``) so the canned SQL survives a move to a
``%s``-style DB-API driver unchanged; the named-parameter queries
(Q3/Q6) bind dicts, which every DB-API paramstyle family also supports.
"""

from __future__ import annotations

from typing import Any

from repro.db.store import CandidateStore
from repro.exceptions import QueryError

__all__ = [
    "q1_no_modification",
    "q2_minimal_features_set",
    "q3_dominant_feature",
    "q4_minimal_overall_modification",
    "q5_maximal_confidence",
    "q6_turning_point",
    "q7_affordable_time",
    "row_to_dict",
]

_DIFF_EPS = 1e-9


def row_to_dict(row) -> dict[str, Any]:
    """Convert a sqlite3.Row to a plain dict."""
    return {key: row[key] for key in row.keys()}


def q1_no_modification(store: CandidateStore, user_id: str) -> int | None:
    """Q1: closest time point at which reapplying *unchanged* is approved.

    Figure 2: ``SELECT Min(time) FROM candidates WHERE diff = 0``.
    Returns the time index, or ``None`` when no such point exists.
    """
    ph = store._ph
    rows = store._read(
        "SELECT MIN(time) AS t FROM candidates"
        f" WHERE user_id = {ph} AND diff <= {ph}",
        (user_id, _DIFF_EPS),
    )
    value = rows[0]["t"]
    return None if value is None else int(value)


def q7_affordable_time(
    store: CandidateStore, user_id: str, budget: float
) -> dict[str, Any] | None:
    """Q7 (extension): earliest time reachable within an effort budget.

    Not one of the six Figure-2 queries — the paper presents its list as
    examples ("such as") and this is the natural seventh: "given that I
    can only afford ``diff <= budget`` of change, when is the earliest I
    can be approved, and how?"  Returns the cheapest qualifying row at
    the earliest qualifying time, or ``None``.
    """
    if budget < 0:
        raise QueryError("budget must be non-negative")
    ph = store._ph
    rows = store._read(
        f"""
        SELECT * FROM candidates
        WHERE user_id = {ph} AND diff <= {ph}
        ORDER BY time, diff, p DESC
        LIMIT 1
        """,
        (user_id, float(budget)),
    )
    return row_to_dict(rows[0]) if rows else None


def q2_minimal_features_set(
    store: CandidateStore, user_id: str
) -> dict[str, Any] | None:
    """Q2: the candidate modifying the fewest features.

    Figure 2: ``SELECT * FROM candidates ORDER BY gap LIMIT 1`` (diff then
    confidence break ties deterministically).
    """
    rows = store._read(
        f"SELECT * FROM candidates WHERE user_id = {store._ph}"
        " ORDER BY gap, diff, p DESC LIMIT 1",
        (user_id,),
    )
    return row_to_dict(rows[0]) if rows else None


def q3_dominant_feature(
    store: CandidateStore, user_id: str, feature: str
) -> dict[str, Any]:
    """Q3: at which time points does modifying *only* ``feature`` suffice?

    Figure 2 (for income): times with a candidate of ``gap = 0`` or
    ``gap = 1`` whose single change is the feature.  The feature is
    *dominant* when those times cover every time point in the user's
    horizon.  Returns ``{'times': [...], 'all_times': [...], 'dominant': bool}``.
    """
    if feature not in store.schema:
        raise QueryError(
            f"unknown feature {feature!r}; schema has {store.schema.names}"
        )
    rows = store._read(
        f"""
        SELECT DISTINCT c.time AS t
        FROM candidates c
        WHERE c.user_id = :user AND EXISTS (
            SELECT 1
            FROM candidates cnd
            INNER JOIN temporal_inputs ti
                ON ti.time = cnd.time AND ti.user_id = cnd.user_id
            WHERE cnd.user_id = :user
              AND cnd.time = c.time
              AND (cnd.gap = 0
                   OR (cnd.gap = 1 AND cnd.{feature} != ti.{feature}))
        )
        ORDER BY t
        """,
        {"user": user_id},
    )
    times = [int(r["t"]) for r in rows]
    all_times = store.times_for(user_id)
    return {
        "times": times,
        "all_times": all_times,
        "dominant": bool(all_times) and set(times) == set(all_times),
    }


def q4_minimal_overall_modification(
    store: CandidateStore, user_id: str
) -> dict[str, Any] | None:
    """Q4: the overall-minimal modification by the diff distance measure.

    Figure 2: ``SELECT Min(diff) FROM candidates``; the full achieving row
    is returned so the UI can render the plan, not just the number.
    """
    rows = store._read(
        f"SELECT * FROM candidates WHERE user_id = {store._ph}"
        " ORDER BY diff, gap, p DESC LIMIT 1",
        (user_id,),
    )
    return row_to_dict(rows[0]) if rows else None


def q5_maximal_confidence(
    store: CandidateStore, user_id: str
) -> dict[str, Any] | None:
    """Q5: the modification (and time) maximising approval confidence.

    Figure 2: ``SELECT * FROM candidates ORDER BY p DESC LIMIT 1``.
    """
    rows = store._read(
        f"SELECT * FROM candidates WHERE user_id = {store._ph}"
        " ORDER BY p DESC, diff LIMIT 1",
        (user_id,),
    )
    return row_to_dict(rows[0]) if rows else None


def q6_turning_point(
    store: CandidateStore, user_id: str, alpha: float
) -> int | None:
    """Q6: earliest time after which confidence > α is always achievable.

    Smallest time point t* such that *every* time point ``t >= t*`` has a
    candidate with ``p > α``; ``None`` when even the final time point has
    no such candidate.  Universal quantification is encoded with a double
    ``NOT EXISTS`` (Figure 2 uses the non-portable ``>= ALL``).
    """
    if not 0.0 <= alpha <= 1.0:
        raise QueryError("alpha must lie in [0, 1]")
    rows = store._read(
        """
        SELECT MIN(ti.time) AS t
        FROM temporal_inputs ti
        WHERE ti.user_id = :user
          AND NOT EXISTS (
              SELECT 1
              FROM temporal_inputs t2
              WHERE t2.user_id = :user
                AND t2.time >= ti.time
                AND NOT EXISTS (
                    SELECT 1
                    FROM candidates c
                    WHERE c.user_id = :user
                      AND c.time = t2.time
                      AND c.p > :alpha
                )
          )
        """,
        {"user": user_id, "alpha": alpha},
    )
    value = rows[0]["t"]
    return None if value is None else int(value)
