"""Temporal update function (Definition II.4).

Maps a user's profile ``x`` to its expected future representation at time
point ``t``: identity on non-temporal features, a per-feature rule on
temporal ones.  Example II.5: ``f(x, 3)[age] = x[age] + 3Δ``.

Rules are declarative per feature name; :func:`linear_rule` covers the
paper's age/seniority style drift, and arbitrary callables are accepted
for custom domains.  Outputs are clipped to schema bounds (seniority
cannot exceed its physical maximum, for example).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.schema import DatasetSchema
from repro.exceptions import SchemaError

__all__ = [
    "LinearRule",
    "linear_rule",
    "TemporalUpdateFunction",
    "lending_update_function",
]

#: A rule maps (current value, time index t, step Δ) to the future value.
UpdateRule = Callable[[float, int, float], float]


class LinearRule:
    """Feature grows by ``rate`` per unit of elapsed time (``rate * t * Δ``).

    A class rather than a closure so temporal update functions pickle
    (see :mod:`repro.core.persistence`).
    """

    def __init__(self, rate: float = 1.0):
        self.rate = rate

    def __call__(self, value: float, t: int, delta: float) -> float:
        return value + self.rate * t * delta

    def __repr__(self) -> str:
        return f"LinearRule(rate={self.rate})"


def linear_rule(rate: float = 1.0) -> UpdateRule:
    """Convenience constructor for :class:`LinearRule`."""
    return LinearRule(rate)


class TemporalUpdateFunction:
    """Per-feature future projection of a profile vector.

    Parameters
    ----------
    schema:
        Feature schema; every rule key must name a schema feature.
    rules:
        ``{feature_name: rule}``; features without a rule are non-temporal
        and use the identity (Definition II.4).
    delta:
        Interval Δ between consecutive time points, in timestamp units
        (years in the lending scenario).
    """

    def __init__(
        self,
        schema: DatasetSchema,
        rules: dict[str, UpdateRule] | None = None,
        delta: float = 1.0,
    ):
        if delta <= 0:
            raise SchemaError("delta must be positive")
        self.schema = schema
        self.delta = delta
        self.rules: dict[str, UpdateRule] = {}
        for name, rule in (rules or {}).items():
            if name not in schema:
                raise SchemaError(f"update rule for unknown feature {name!r}")
            self.rules[name] = rule

    def apply(self, x, t: int) -> np.ndarray:
        """Return ``f(x, t)`` — the profile projected ``t`` steps ahead."""
        if t < 0:
            raise SchemaError("time index t must be non-negative")
        x = np.asarray(x, dtype=float).ravel()
        if x.size != len(self.schema):
            raise SchemaError(
                f"vector has {x.size} entries, schema expects {len(self.schema)}"
            )
        out = x.copy()
        for name, rule in self.rules.items():
            idx = self.schema.index_of(name)
            out[idx] = rule(float(x[idx]), t, self.delta)
        return self.schema.clip(out)

    def trajectory(self, x, T: int) -> np.ndarray:
        """Return the stacked future representations ``x_0 .. x_T``.

        Row ``t`` is ``f(x, t)``; shape ``(T + 1, d)``.  These rows are
        exactly what the paper stores in the ``temporal_inputs`` table.
        """
        if T < 0:
            raise SchemaError("T must be non-negative")
        return np.vstack([self.apply(x, t) for t in range(T + 1)])


def lending_update_function(
    schema: DatasetSchema, delta: float = 1.0
) -> TemporalUpdateFunction:
    """Default lending rules: age and seniority grow one year per year.

    Matches the paper's motivation that "age increases over time, and
    often so does seniority".
    """
    return TemporalUpdateFunction(
        schema,
        rules={
            "age": LinearRule(1.0),
            "seniority": LinearRule(1.0),
        },
        delta=delta,
    )
