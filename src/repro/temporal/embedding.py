"""Kernels and kernel mean embeddings.

The models generator "relies on two techniques: probability distribution
embedding into a reproducing kernel Hilbert space, and vector-valued
regression" (§II.B, citing Lampert CVPR 2015).  This module provides the
RKHS half: kernel functions, the empirical kernel mean embedding
``μ_P = (1/m) Σ φ(x_i)`` represented explicitly as a weighted sample set,
inner products between embeddings, and the MMD distance used by tests and
the forecast ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ForecastError

__all__ = [
    "Kernel",
    "RBFKernel",
    "LinearKernel",
    "PolynomialKernel",
    "median_heuristic_gamma",
    "WeightedSample",
    "embedding_inner",
    "mmd",
]


class Kernel:
    """Positive-definite kernel ``k(x, z)`` evaluated on row batches."""

    def __call__(self, X, Z) -> np.ndarray:
        """Return the Gram matrix ``K[i, j] = k(X[i], Z[j])``."""
        raise NotImplementedError


@dataclass(frozen=True)
class RBFKernel(Kernel):
    """Gaussian kernel ``exp(-γ ||x - z||²)`` — characteristic, so the
    mean embedding uniquely identifies the distribution."""

    gamma: float = 1.0

    def __post_init__(self):
        if self.gamma <= 0:
            raise ForecastError("gamma must be positive")

    def __call__(self, X, Z) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Z = np.atleast_2d(np.asarray(Z, dtype=float))
        sq = (
            np.sum(X**2, axis=1)[:, None]
            + np.sum(Z**2, axis=1)[None, :]
            - 2.0 * X @ Z.T
        )
        np.maximum(sq, 0.0, out=sq)
        return np.exp(-self.gamma * sq)


@dataclass(frozen=True)
class LinearKernel(Kernel):
    """Plain inner product; embeds only the mean of the distribution."""

    def __call__(self, X, Z) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Z = np.atleast_2d(np.asarray(Z, dtype=float))
        return X @ Z.T


@dataclass(frozen=True)
class PolynomialKernel(Kernel):
    """``(x·z + c)^degree`` — embeds moments up to ``degree``."""

    degree: int = 2
    c: float = 1.0

    def __post_init__(self):
        if self.degree < 1:
            raise ForecastError("degree must be >= 1")

    def __call__(self, X, Z) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Z = np.atleast_2d(np.asarray(Z, dtype=float))
        return (X @ Z.T + self.c) ** self.degree


def median_heuristic_gamma(X, max_points: int = 500, rng=None) -> float:
    """Bandwidth by the median pairwise-distance heuristic.

    Returns ``γ = 1 / (2 median²)``; falls back to 1.0 for degenerate
    (all-identical) samples.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n = X.shape[0]
    if n > max_points:
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        X = X[rng.choice(n, size=max_points, replace=False)]
        n = max_points
    diffs = X[:, None, :] - X[None, :, :]
    dist = np.sqrt(np.sum(diffs**2, axis=-1))
    upper = dist[np.triu_indices(n, k=1)]
    median = float(np.median(upper)) if upper.size else 0.0
    if median <= 0:
        return 1.0
    return 1.0 / (2.0 * median**2)


@dataclass(frozen=True)
class WeightedSample:
    """An RKHS element ``Σ_i w_i φ(z_i)`` in sample representation.

    The empirical mean embedding of a sample set is the special case of
    uniform weights ``1/m``; EDD predictions are general (possibly
    negative) weightings.
    """

    points: np.ndarray  # (m, d)
    weights: np.ndarray  # (m,)

    @staticmethod
    def mean_embedding(points) -> "WeightedSample":
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[0] == 0:
            raise ForecastError("cannot embed an empty sample")
        m = points.shape[0]
        return WeightedSample(points, np.full(m, 1.0 / m))

    def __post_init__(self):
        points = np.atleast_2d(np.asarray(self.points, dtype=float))
        weights = np.asarray(self.weights, dtype=float).ravel()
        if points.shape[0] != weights.shape[0]:
            raise ForecastError("points and weights disagree on sample count")
        object.__setattr__(self, "points", points)
        object.__setattr__(self, "weights", weights)

    def witness(self, kernel: Kernel, X) -> np.ndarray:
        """Evaluate ``⟨μ, φ(x)⟩ = Σ_i w_i k(z_i, x)`` at rows of ``X``."""
        return (self.weights[None, :] @ kernel(self.points, X)).ravel()


def embedding_inner(
    kernel: Kernel, a: WeightedSample, b: WeightedSample
) -> float:
    """RKHS inner product ``⟨μ_a, μ_b⟩ = w_a' K w_b``."""
    return float(a.weights @ kernel(a.points, b.points) @ b.weights)


def mmd(kernel: Kernel, a: WeightedSample, b: WeightedSample) -> float:
    """Maximum mean discrepancy ``||μ_a - μ_b||_H`` (biased estimate)."""
    sq = (
        embedding_inner(kernel, a, a)
        - 2.0 * embedding_inner(kernel, a, b)
        + embedding_inner(kernel, b, b)
    )
    return float(np.sqrt(max(sq, 0.0)))
