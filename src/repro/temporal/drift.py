"""Distribution-drift diagnostics for administrators.

The admin "sets parameters controlling the amount and time intervals
between future time points" (§I) — T and Δ.  Choosing them well requires
knowing *how fast* the data actually drifts.  This module measures drift
directly on the timestamped history using the same RKHS machinery the EDD
forecaster uses:

* :func:`mmd_drift_profile` — MMD between each consecutive pair of
  Δ-wide windows (covariate drift);
* :func:`label_shift_profile` — per-window positive rate (prior drift);
* :func:`suggest_delta` — the smallest candidate Δ whose window-to-window
  MMD stays above the sampling noise floor, i.e. the finest granularity
  at which the data visibly moves.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TemporalDataset
from repro.exceptions import ForecastError
from repro.ml.preprocessing import StandardScaler
from repro.temporal.embedding import (
    Kernel,
    RBFKernel,
    WeightedSample,
    median_heuristic_gamma,
    mmd,
)

__all__ = ["mmd_drift_profile", "label_shift_profile", "suggest_delta"]


def _windows(history: TemporalDataset, delta: float, min_samples: int):
    return [
        (start, w)
        for start, w in history.periods(delta)
        if len(w) >= min_samples
    ]


def mmd_drift_profile(
    history: TemporalDataset,
    delta: float = 1.0,
    *,
    kernel: Kernel | None = None,
    min_samples: int = 20,
) -> list[tuple[float, float]]:
    """MMD between consecutive Δ-wide windows of the history.

    Returns ``[(boundary_time, mmd), ...]`` where ``boundary_time`` is the
    start of the *later* window.  Features are globally standardised and
    the kernel bandwidth comes from the median heuristic, so values are
    comparable across datasets.
    """
    windows = _windows(history, delta, min_samples)
    if len(windows) < 2:
        raise ForecastError(
            f"need at least 2 windows of >= {min_samples} samples"
        )
    scaler = StandardScaler().fit(history.X)
    if kernel is None:
        kernel = RBFKernel(median_heuristic_gamma(scaler.transform(history.X)))
    profile = []
    previous = WeightedSample.mean_embedding(scaler.transform(windows[0][1].X))
    for start, window in windows[1:]:
        current = WeightedSample.mean_embedding(scaler.transform(window.X))
        profile.append((float(start), mmd(kernel, previous, current)))
        previous = current
    return profile


def label_shift_profile(
    history: TemporalDataset, delta: float = 1.0, *, min_samples: int = 20
) -> list[tuple[float, float]]:
    """Positive-label rate per Δ-wide window: ``[(window_start, rate)]``.

    On the lending data this exposes the policy drift itself (e.g. the
    2008-09 crunch) even when covariates are stationary.
    """
    windows = _windows(history, delta, min_samples)
    if not windows:
        raise ForecastError(f"no window has >= {min_samples} samples")
    return [(float(start), float(w.y.mean())) for start, w in windows]


def suggest_delta(
    history: TemporalDataset,
    candidates: tuple[float, ...] = (0.5, 1.0, 2.0),
    *,
    min_samples: int = 20,
    noise_rounds: int = 5,
    random_state: int | None = 0,
) -> float:
    """Pick the smallest Δ at which drift is distinguishable from noise.

    For each candidate Δ the mean consecutive-window MMD is compared to a
    permutation noise floor (windows of the same sizes drawn from the
    pooled data, ``noise_rounds`` times).  The smallest Δ whose observed
    drift exceeds its noise floor is returned; if none qualifies, the
    largest candidate is returned (slow drift → coarse grid is enough).
    """
    if not candidates:
        raise ForecastError("candidates must be non-empty")
    rng = np.random.default_rng(random_state)
    scaler = StandardScaler().fit(history.X)
    Xs = scaler.transform(history.X)
    kernel = RBFKernel(median_heuristic_gamma(Xs, rng=rng))
    for delta in sorted(candidates):
        try:
            profile = mmd_drift_profile(
                history, delta, kernel=kernel, min_samples=min_samples
            )
        except ForecastError:
            continue
        observed = float(np.mean([v for _, v in profile]))
        sizes = [len(w) for _, w in _windows(history, delta, min_samples)]
        noise = []
        for _ in range(noise_rounds):
            values = []
            for a, b in zip(sizes, sizes[1:]):
                idx = rng.choice(Xs.shape[0], size=a + b, replace=False)
                first = WeightedSample.mean_embedding(Xs[idx[:a]])
                second = WeightedSample.mean_embedding(Xs[idx[a:]])
                values.append(mmd(kernel, first, second))
            noise.append(np.mean(values))
        if observed > float(np.mean(noise)) + 2 * float(np.std(noise) + 1e-12):
            return float(delta)
    return float(max(candidates))
