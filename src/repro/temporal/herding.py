"""Kernel herding: materialise samples from a predicted mean embedding.

EDD predicts the *embedding* of the future distribution; to train a
classifier we need actual points.  Kernel herding (Chen, Welling &
Smola 2010, the technique Lampert's EDD uses for this step) greedily
selects points ``s_1, s_2, ...`` so that the empirical embedding of the
selected set tracks the target embedding:

    s_{j+1} = argmax_{s ∈ pool} ⟨μ*, φ(s)⟩ − (1/(j+1)) Σ_{l ≤ j} k(s_l, s)

The candidate pool is a finite set (here: the union of historical samples,
optionally jittered), which keeps the argmax exact and the procedure
deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ForecastError
from repro.temporal.embedding import Kernel, WeightedSample

__all__ = ["herd"]


def herd(
    kernel: Kernel,
    target: WeightedSample,
    pool: np.ndarray,
    n_samples: int,
    *,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Select ``n_samples`` pool points whose embedding approximates ``target``.

    Parameters
    ----------
    kernel:
        RKHS kernel (must match the one the target was built with).
    target:
        Predicted mean embedding ``μ* = Σ w_i φ(z_i)``.
    pool:
        ``(p, d)`` candidate points; selection is with replacement, as in
        standard herding (a point may be picked repeatedly if the target
        concentrates mass there).
    n_samples:
        Number of herded points to return.
    jitter:
        Optional Gaussian noise (std per feature unit) added to each
        *returned* point — decorrelates repeated picks when the herded set
        feeds a tree learner.
    rng:
        Random generator for jitter.

    Returns the ``(n_samples, d)`` herded matrix.
    """
    pool = np.atleast_2d(np.asarray(pool, dtype=float))
    if pool.shape[0] == 0:
        raise ForecastError("herding pool is empty")
    if n_samples < 1:
        raise ForecastError("n_samples must be >= 1")
    # ⟨μ*, φ(s)⟩ for every pool point — fixed over iterations
    attraction = target.witness(kernel, pool)
    # running Σ_l k(s_l, s) over selected points
    repulsion = np.zeros(pool.shape[0])
    chosen_idx = np.empty(n_samples, dtype=int)
    for j in range(n_samples):
        scores = attraction - repulsion / (j + 1)
        pick = int(np.argmax(scores))
        chosen_idx[j] = pick
        repulsion += kernel(pool[pick : pick + 1], pool).ravel()
    herded = pool[chosen_idx].copy()
    if jitter > 0:
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        scale = pool.std(axis=0)
        scale[scale == 0] = 1.0
        herded += rng.normal(0.0, jitter, size=herded.shape) * scale
    return herded
