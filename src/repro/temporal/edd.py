"""Extrapolating the Distribution Dynamics (EDD) — Lampert, CVPR 2015.

Given a sequence of sample sets ``S_1 .. S_n`` drawn from a time-varying
distribution ``P_1 .. P_n``, EDD:

1. embeds each ``P_t`` as its empirical kernel mean ``μ_t`` in an RKHS;
2. learns the dynamics operator ``A : μ_{t} ↦ μ_{t+1}`` by vector-valued
   ridge regression over the observed consecutive pairs;
3. applies ``A`` to the newest embedding to predict ``μ_{n+1}`` (and, by
   iterating, ``μ_{n+h}``), expressed as a weighted combination of
   historical samples;
4. (client step) herds concrete samples from the predicted embedding.

With the operator constrained to the span of the observed embeddings, the
ridge solution has the closed form used below: the predicted embedding is
``μ̂_{n+1} = Σ_{t=1}^{n-1} β_t μ_{t+1}`` with
``β = (G + λI)^{-1} g``, where ``G[s,t] = ⟨μ_s, μ_t⟩`` over the first
``n−1`` embeddings and ``g[s] = ⟨μ_s, μ_n⟩``.  Multi-step predictions
re-apply the same regression against the previous prediction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ForecastError
from repro.temporal.embedding import (
    Kernel,
    RBFKernel,
    WeightedSample,
    embedding_inner,
)

__all__ = ["EDDPredictor"]


class EDDPredictor:
    """Vector-valued ridge regression over a kernel-mean-embedding sequence.

    Parameters
    ----------
    kernel:
        RKHS kernel; RBF with a median-heuristic bandwidth is the default
        choice in the EDD paper.
    ridge:
        Regularisation λ of the operator regression.
    """

    def __init__(self, kernel: Kernel | None = None, ridge: float = 0.1):
        if ridge <= 0:
            raise ForecastError("ridge must be positive")
        self.kernel = kernel or RBFKernel(gamma=0.5)
        self.ridge = ridge
        self._embeddings: list[WeightedSample] | None = None
        self._beta_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------ fit

    def fit(self, sample_sets: list[np.ndarray]) -> "EDDPredictor":
        """Learn the dynamics from an ordered list of per-window samples."""
        if len(sample_sets) < 3:
            raise ForecastError(
                f"EDD needs at least 3 windows to learn dynamics,"
                f" got {len(sample_sets)}"
            )
        embeddings = [WeightedSample.mean_embedding(s) for s in sample_sets]
        n = len(embeddings)
        # Gram of the predictor embeddings μ_1 .. μ_{n-1}
        G = np.empty((n - 1, n - 1))
        for i in range(n - 1):
            for j in range(i, n - 1):
                G[i, j] = G[j, i] = embedding_inner(
                    self.kernel, embeddings[i], embeddings[j]
                )
        # β(target) = (G + λI)^{-1} ⟨μ_., μ_target⟩; precompute the inverse
        self._gram_inv = np.linalg.inv(G + self.ridge * np.eye(n - 1))
        self._embeddings = embeddings
        return self

    # -------------------------------------------------------------- predict

    def _coefficients_for(self, query: WeightedSample) -> np.ndarray:
        """Regression coefficients β for one application of the operator."""
        g = np.array(
            [
                embedding_inner(self.kernel, emb, query)
                for emb in self._embeddings[:-1]
            ]
        )
        return self._gram_inv @ g

    def predict_embedding(self, horizon: int = 1) -> WeightedSample:
        """Predict ``μ_{n+horizon}`` as a weighted historical sample set.

        One operator application maps the newest embedding one step ahead;
        ``horizon > 1`` iterates the operator on its own output.
        """
        if self._embeddings is None:
            raise ForecastError("EDDPredictor is not fitted")
        if horizon < 1:
            raise ForecastError("horizon must be >= 1")
        current = self._embeddings[-1]
        for _ in range(horizon):
            beta = self._coefficients_for(current)
            # μ̂_next = Σ_t β_t μ_{t+1}: stack the successor embeddings
            points = []
            weights = []
            for coef, emb in zip(beta, self._embeddings[1:]):
                points.append(emb.points)
                weights.append(coef * emb.weights)
            current = WeightedSample(
                np.vstack(points), np.concatenate(weights)
            )
            current = self._compress(current)
        return current

    @staticmethod
    def _compress(embedding: WeightedSample) -> WeightedSample:
        """Merge duplicate points (same row appearing via several windows).

        Keeps the sample representation from growing combinatorially under
        iterated predictions.
        """
        points = embedding.points
        weights = embedding.weights
        # lexicographic sort to group identical rows
        order = np.lexsort(points.T[::-1])
        points = points[order]
        weights = weights[order]
        keep_points: list[np.ndarray] = []
        keep_weights: list[float] = []
        i = 0
        while i < points.shape[0]:
            j = i
            acc = weights[i]
            while (
                j + 1 < points.shape[0]
                and np.array_equal(points[j + 1], points[i])
            ):
                j += 1
                acc += weights[j]
            keep_points.append(points[i])
            keep_weights.append(acc)
            i = j + 1
        return WeightedSample(np.vstack(keep_points), np.array(keep_weights))

    @property
    def historical_pool(self) -> np.ndarray:
        """Union of all historical samples — default herding pool."""
        if self._embeddings is None:
            raise ForecastError("EDDPredictor is not fitted")
        return np.vstack([emb.points for emb in self._embeddings])
