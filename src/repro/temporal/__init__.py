"""Temporal substrate: update functions, distribution forecasting, models.

Implements the models-generator half of the paper's architecture —
Definition II.4 temporal update functions plus the domain-adaptation
machinery (kernel mean embeddings, EDD dynamics regression, kernel
herding) that produces the future model sequence ``(M_t, δ_t)``.
"""

from repro.temporal.drift import (
    label_shift_profile,
    mmd_drift_profile,
    suggest_delta,
)
from repro.temporal.edd import EDDPredictor
from repro.temporal.embedding import (
    Kernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    WeightedSample,
    embedding_inner,
    median_heuristic_gamma,
    mmd,
)
from repro.temporal.fingerprint import (
    canonical_bytes,
    content_fingerprint,
    model_fingerprint,
)
from repro.temporal.forecast import (
    STRATEGY_NAMES,
    EDDStrategy,
    ForecastStrategy,
    FullHistoryStrategy,
    FutureModel,
    FutureModels,
    LastWindowStrategy,
    ModelsGenerator,
    OracleStrategy,
    PerPeriodStrategy,
    RecencyWeightStrategy,
    ScaledLinearModel,
    WeightExtrapolationStrategy,
    make_strategy,
)
from repro.temporal.herding import herd
from repro.temporal.thresholds import calibrate_threshold
from repro.temporal.update import (
    TemporalUpdateFunction,
    lending_update_function,
    linear_rule,
)

__all__ = [
    "EDDPredictor",
    "EDDStrategy",
    "ForecastStrategy",
    "FullHistoryStrategy",
    "FutureModel",
    "FutureModels",
    "Kernel",
    "LastWindowStrategy",
    "LinearKernel",
    "ModelsGenerator",
    "OracleStrategy",
    "PerPeriodStrategy",
    "PolynomialKernel",
    "RBFKernel",
    "RecencyWeightStrategy",
    "STRATEGY_NAMES",
    "ScaledLinearModel",
    "TemporalUpdateFunction",
    "canonical_bytes",
    "content_fingerprint",
    "model_fingerprint",
    "WeightExtrapolationStrategy",
    "WeightedSample",
    "calibrate_threshold",
    "embedding_inner",
    "herd",
    "label_shift_profile",
    "lending_update_function",
    "linear_rule",
    "mmd_drift_profile",
    "suggest_delta",
    "make_strategy",
    "median_heuristic_gamma",
    "mmd",
]
