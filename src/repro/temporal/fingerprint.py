"""Deterministic content fingerprints for forecast models.

A refresh (``JustInTime.refresh``) must decide which time points' models
actually changed after a refit, so that only the stale (user, t) cells
are recomputed.  Object identity is useless for that — every refit
builds new objects — so each :class:`~repro.temporal.forecast.FutureModel`
carries a *content* fingerprint: a SHA-256 digest over the forecasting
strategy (class + configuration, which covers window widths etc.), the
generator seed, the calibrated threshold and the model's fitted
parameters.  Two fits from identical inputs produce identical digests;
any change to the training data that alters a model's parameters changes
its digest.

Hashing is structural, not ``pickle``-based: pickle byte streams depend
on memoisation order and protocol details, while :func:`canonical_bytes`
walks plain Python/numpy structures in a canonical order (dict keys
sorted, arrays as dtype + shape + raw bytes, objects as class name +
``__dict__``/``__slots__``), so the digest is reproducible across
processes.  The walk is iterative (explicit stack), so arbitrarily deep
models — e.g. depth-unbounded decision trees — hash fine.
"""

from __future__ import annotations

import hashlib
import types

import numpy as np

__all__ = ["canonical_bytes", "content_fingerprint", "model_fingerprint"]

#: Digest length (hex chars) stored per model; 64 bits of SHA-256 is
#: plenty for "did this model change" comparisons.
_DIGEST_CHARS = 16


class _Emit:
    """Pre-rendered bytes on the work stack (vs. raw values to walk)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data


def _object_state(obj) -> dict:
    """Instance state from ``__dict__`` and/or ``__slots__`` (tree nodes
    are slotted for memory)."""
    state = dict(getattr(obj, "__dict__", ()) or ())
    slots = [
        name
        for klass in type(obj).__mro__
        for name in getattr(klass, "__slots__", ())
    ]
    for name in slots:
        if hasattr(obj, name):
            state[name] = getattr(obj, name)
    if not state and not hasattr(obj, "__dict__") and not slots:
        raise ValueError(
            f"canonical_bytes cannot serialise {type(obj).__name__!r}"
        )
    return state


def canonical_bytes(obj) -> bytes:
    """Serialise ``obj`` to canonical bytes for hashing.

    Supports the closed universe the estimators in :mod:`repro.ml` are
    built from: scalars, strings, numpy arrays, lists/tuples, dicts
    (sorted by key), sets (sorted by serialisation) and plain objects
    (recursed via ``__dict__``/``__slots__``).  Every branch is prefixed
    with a type tag so e.g. ``1`` and ``1.0`` and ``"1"`` never collide.
    """
    out = bytearray()
    stack: list = [obj]
    while stack:
        item = stack.pop()
        if type(item) is _Emit:
            out += item.data
            continue
        if item is None:
            out += b"N"
        elif isinstance(item, bool):
            out += b"b1" if item else b"b0"
        elif isinstance(item, (int, np.integer)):
            out += b"i" + str(int(item)).encode()
        elif isinstance(item, (float, np.floating)):
            # repr round-trips doubles exactly; normalise -0.0
            out += b"f" + repr(float(item) + 0.0).encode()
        elif isinstance(item, str):
            raw = item.encode()
            out += b"s" + str(len(raw)).encode() + b":" + raw
        elif isinstance(item, bytes):
            out += b"y" + str(len(item)).encode() + b":" + item
        elif isinstance(item, np.ndarray):
            arr = np.ascontiguousarray(item)
            out += f"a{arr.dtype.str}{arr.shape}".encode() + arr.tobytes()
        elif isinstance(item, (list, tuple)):
            out += b"l" + str(len(item)).encode()
            stack.extend(reversed(item))
        elif isinstance(item, dict):
            # keys are serialised (not str()-coerced, so {1: v} and
            # {'1': v} stay distinct) and entries sorted by key bytes
            out += b"d" + str(2 * len(item)).encode()
            entries = sorted(
                ((canonical_bytes(key), value) for key, value in item.items()),
                key=lambda entry: entry[0],
            )
            pairs: list = []
            for key_bytes, value in entries:
                pairs.append(_Emit(key_bytes))
                pairs.append(value)
            stack.extend(reversed(pairs))
        elif isinstance(item, (set, frozenset)):
            # order-free: sort members by their own serialisation
            parts = sorted(canonical_bytes(member) for member in item)
            out += b"S" + str(len(parts)).encode() + b"".join(parts)
        elif isinstance(
            item, (types.FunctionType, types.BuiltinFunctionType, type)
        ):
            out += b"c" + f"{item.__module__}.{item.__qualname__}".encode()
        elif isinstance(item, np.random.Generator):
            out += b"g"
            stack.append(item.bit_generator.state)
        else:
            # plain object: class identity + instance state
            state = _object_state(item)
            tag = f"{type(item).__module__}.{type(item).__qualname__}"
            out += b"o"
            stack.append(state)
            stack.append(_Emit(canonical_bytes(tag)))
    return bytes(out)


def content_fingerprint(*parts) -> str:
    """SHA-256 hex digest (truncated) over canonicalised ``parts``."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(canonical_bytes(part))
    return digest.hexdigest()[:_DIGEST_CHARS]


def model_fingerprint(
    model,
    threshold: float,
    strategy,
    random_state,
) -> str:
    """Fingerprint one ``(M_t, δ_t)`` pair plus its provenance.

    ``strategy`` is the :class:`~repro.temporal.forecast.ForecastStrategy`
    instance that produced the model (its ``__dict__`` covers window
    widths, half lives, herd sizes, ...); ``random_state`` the generator
    seed.  The fitted model contributes its full learned state, so two
    models agree on the fingerprint iff they are the same function.
    """
    return content_fingerprint(
        "strategy",
        strategy,
        "seed",
        random_state,
        "threshold",
        float(threshold),
        "model",
        model,
    )
