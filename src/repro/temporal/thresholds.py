"""Per-model decision-threshold calibration.

Definition II.3 classifies a candidate positively when ``M_t(x') > δ_t``;
each future model carries its own threshold.  Three calibration rules are
provided:

* ``fixed`` — a constant (0.5 by default);
* ``rate`` — pick δ so the model approves a target fraction of a
  reference population (how lenders actually set cutoffs);
* ``f1`` — maximise F1 on labeled reference data.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ForecastError
from repro.ml.base import BaseClassifier
from repro.ml.metrics import f1_score

__all__ = ["calibrate_threshold"]


def calibrate_threshold(
    model: BaseClassifier,
    X_ref,
    y_ref=None,
    *,
    method: str = "fixed",
    fixed_value: float = 0.5,
    target_rate: float | None = None,
) -> float:
    """Return a decision threshold δ for ``model``.

    Parameters
    ----------
    model:
        Fitted classifier.
    X_ref:
        Reference population to score (unused for ``fixed``).
    y_ref:
        Labels, required for ``f1``.
    method:
        ``'fixed'`` | ``'rate'`` | ``'f1'``.
    fixed_value:
        δ for the ``fixed`` method.
    target_rate:
        Approval fraction for the ``rate`` method.
    """
    if method == "fixed":
        if not 0.0 <= fixed_value <= 1.0:
            raise ForecastError("fixed threshold must be in [0, 1]")
        return float(fixed_value)
    scores = model.decision_score(np.asarray(X_ref, dtype=float))
    if method == "rate":
        if target_rate is None or not 0.0 < target_rate < 1.0:
            raise ForecastError("rate calibration needs target_rate in (0, 1)")
        # δ = (1 - rate) quantile: scores above it make up ~target_rate
        delta = float(np.quantile(scores, 1.0 - target_rate))
        return min(max(delta, 0.0), 1.0 - 1e-9)
    if method == "f1":
        if y_ref is None:
            raise ForecastError("f1 calibration needs labels")
        y_ref = np.asarray(y_ref, dtype=int)
        candidates = np.unique(np.round(scores, 4))
        if candidates.size == 0:
            raise ForecastError("no scores to calibrate on")
        best_delta, best_f1 = 0.5, -1.0
        for delta in candidates:
            preds = (scores > delta).astype(int)
            score = f1_score(y_ref, preds)
            if score > best_f1:
                best_delta, best_f1 = float(delta), score
        return best_delta
    raise ForecastError(f"unknown calibration method {method!r}")
