"""Models generator: the sequence of future models ``(M_t, δ_t)_{t=0..T}``.

"The models generator then uses existing domain adaptation methods, in
order to create a sequence of pairs (Mt, δt), where Mt is the expected
approximated model at future time t, and δt is its threshold" (§II.B).

Six interchangeable forecasting strategies are provided:

``last``
    Train once on the most recent window and reuse it for every future
    time point — the static baseline every temporal question implicitly
    compares against.
``full``
    Train once on all history.
``reweight``
    Recency-weighted bootstrap per future time point: samples are drawn
    with probability decaying in their age *as seen from that future
    point*, so later models lean harder on recent data.
``weights``
    Fit one logistic regression per historical window, then linearly
    extrapolate the coefficient trajectory to each future time point
    (the style of "learning future classifiers" the paper cites as
    Kumagai & Iwata, AAAI 2016).
``edd``
    The paper's §II.B method (Lampert, CVPR 2015): per-class kernel mean
    embeddings of the window sequence, vector-valued ridge regression of
    the embedding dynamics, kernel herding of a synthetic future training
    set, then training the configured model on it.
``oracle``
    Trains on fresh data labeled by the *ground-truth* future policy.
    Only possible with the synthetic generator; used as the upper bound
    in the forecast ablation (never by the production pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import TemporalDataset
from repro.exceptions import ForecastError
from repro.ml.base import BaseClassifier, as_rng
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import StandardScaler
from repro.temporal.edd import EDDPredictor
from repro.temporal.embedding import RBFKernel, median_heuristic_gamma
from repro.temporal.fingerprint import model_fingerprint
from repro.temporal.herding import herd
from repro.temporal.thresholds import calibrate_threshold

__all__ = [
    "FutureModel",
    "FutureModels",
    "ScaledLinearModel",
    "ForecastStrategy",
    "LastWindowStrategy",
    "FullHistoryStrategy",
    "RecencyWeightStrategy",
    "WeightExtrapolationStrategy",
    "EDDStrategy",
    "OracleStrategy",
    "ModelsGenerator",
    "PerPeriodStrategy",
    "STRATEGY_NAMES",
    "make_strategy",
]

ModelFactory = Callable[[], BaseClassifier]


def _default_model_factory() -> BaseClassifier:
    """The paper's demo model: a random forest per time span."""
    return RandomForestClassifier(n_estimators=25, max_depth=10, random_state=0)


@dataclass(frozen=True)
class FutureModel:
    """One ``(M_t, δ_t)`` pair plus its calendar position.

    ``fingerprint`` is the deterministic content digest computed by the
    models generator (see :mod:`repro.temporal.fingerprint`); ``None``
    only for hand-assembled instances and pre-fingerprint pickles.
    """

    t: int
    time_value: float
    model: BaseClassifier
    threshold: float
    fingerprint: str | None = None

    def score(self, X) -> np.ndarray:
        return self.model.decision_score(X)

    def decides_positive(self, X) -> np.ndarray:
        """Definition II.3 test: ``M_t(x) > δ_t``."""
        return self.score(X) > self.threshold


class FutureModels:
    """The ordered sequence ``(M_0, δ_0) .. (M_T, δ_T)``."""

    def __init__(self, models: Sequence[FutureModel], delta: float, now: float):
        if not models:
            raise ForecastError("FutureModels needs at least one model")
        self._models = tuple(models)
        self.delta = delta
        self.now = now

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self):
        return iter(self._models)

    def __getitem__(self, t: int) -> FutureModel:
        if not 0 <= t < len(self._models):
            raise ForecastError(
                f"time index {t} out of range [0, {len(self._models) - 1}]"
            )
        return self._models[t]

    @property
    def T(self) -> int:
        """Largest time index (the paper's T)."""
        return len(self._models) - 1

    def score(self, x, t: int) -> float:
        """``M_t(x)`` for one profile."""
        return float(self[t].score(np.atleast_2d(np.asarray(x, dtype=float)))[0])

    def decides_positive(self, x, t: int) -> bool:
        return bool(self.score(x, t) > self[t].threshold)

    @property
    def fingerprints(self) -> dict[int, str | None]:
        """``{t: content fingerprint}`` for every time point."""
        return {fm.t: fm.fingerprint for fm in self._models}

    def stale_against(self, previous: "FutureModels") -> list[int]:
        """Time indices whose model content differs from ``previous``.

        A time point is stale when its fingerprint changed, when either
        side lacks a fingerprint (pre-fingerprint pickles: assume stale,
        never serve silently outdated candidates), or when ``previous``
        has no model at that index.
        """
        stale = []
        for fm in self._models:
            if fm.t >= len(previous):
                stale.append(fm.t)
                continue
            old = previous[fm.t].fingerprint
            if old is None or fm.fingerprint is None or old != fm.fingerprint:
                stale.append(fm.t)
        return stale


class ScaledLinearModel(BaseClassifier):
    """Logistic model over standardised inputs, exposed in raw space.

    The weight-extrapolation strategy predicts coefficients in z-scored
    space; this wrapper owns the scaler so the rest of the system keeps
    talking raw feature vectors.  Implements the same ``score_gradient``
    contract as :class:`~repro.ml.linear.LogisticRegression` (chain rule
    through the scaling).
    """

    def __init__(self, scaler: StandardScaler, inner: LogisticRegression):
        self.scaler = scaler
        self.inner = inner
        self.n_features_ = inner.n_features_

    def fit(self, X, y):  # pragma: no cover - assembled, never fitted
        raise ForecastError("ScaledLinearModel is assembled, not fitted")

    def predict_proba(self, X) -> np.ndarray:
        return self.inner.predict_proba(self.scaler.transform(X))

    def score_gradient(self, x) -> np.ndarray:
        z = self.scaler.transform(np.atleast_2d(np.asarray(x, dtype=float)))[0]
        return self.inner.score_gradient(z) / self.scaler.scale_


# --------------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------------


class ForecastStrategy:
    """Builds the model list for the requested future time values."""

    def build(
        self,
        history: TemporalDataset,
        times: list[float],
        model_factory: ModelFactory,
        rng: np.random.Generator,
    ) -> list[BaseClassifier]:
        raise NotImplementedError

    @staticmethod
    def _recent_window(history: TemporalDataset, width: float) -> TemporalDataset:
        lo, hi = history.span
        window = history.window(max(lo, hi - width), hi + 1e-9)
        if len(window) == 0:
            raise ForecastError("recent window is empty")
        return window

    @staticmethod
    def _fit(factory: ModelFactory, X, y, rng: np.random.Generator) -> BaseClassifier:
        model = factory()
        if "random_state" in model.get_params():
            model.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
        return model.fit(X, y)


class LastWindowStrategy(ForecastStrategy):
    """One model trained on the last ``window`` time units, reused for all t."""

    def __init__(self, window: float = 2.0):
        if window <= 0:
            raise ForecastError("window must be positive")
        self.window = window

    def build(self, history, times, model_factory, rng):
        recent = self._recent_window(history, self.window)
        model = self._fit(model_factory, recent.X, recent.y, rng)
        return [model] * len(times)


class FullHistoryStrategy(ForecastStrategy):
    """One model trained on the entire history, reused for all t."""

    def build(self, history, times, model_factory, rng):
        model = self._fit(model_factory, history.X, history.y, rng)
        return [model] * len(times)


class RecencyWeightStrategy(ForecastStrategy):
    """Recency-weighted bootstrap per future time point.

    For future time τ each historical sample with timestamp ``s`` gets
    weight ``exp(-(τ - s) ln2 / half_life)``; a bootstrap of size n is
    drawn with those probabilities and the model is fitted on it.  Later
    time points concentrate ever harder on recent samples, which tracks a
    smoothly drifting policy without modelling it explicitly.
    """

    def __init__(self, half_life: float = 3.0):
        if half_life <= 0:
            raise ForecastError("half_life must be positive")
        self.half_life = half_life

    def build(self, history, times, model_factory, rng):
        models = []
        n = len(history)
        for tau in times:
            age = tau - history.timestamps
            weights = np.exp(-np.log(2) * np.maximum(age, 0.0) / self.half_life)
            probabilities = weights / weights.sum()
            idx = rng.choice(n, size=n, replace=True, p=probabilities)
            models.append(self._fit(model_factory, history.X[idx], history.y[idx], rng))
        return models


class WeightExtrapolationStrategy(ForecastStrategy):
    """Linear extrapolation of per-window logistic coefficients.

    Fits one L2-regularised logistic regression per historical window (in
    a globally standardised feature space), regresses each coefficient on
    the window midpoint, and evaluates the regression at each future time
    — producing genuinely *different* models per t.  The produced models
    ignore ``model_factory`` (they are inherently linear).
    """

    def __init__(self, window: float = 1.0, min_window_samples: int = 30):
        if window <= 0:
            raise ForecastError("window must be positive")
        self.window = window
        self.min_window_samples = min_window_samples

    def build(self, history, times, model_factory, rng):
        scaler = StandardScaler().fit(history.X)
        Xs = scaler.transform(history.X)
        midpoints: list[float] = []
        coef_rows: list[np.ndarray] = []
        for start, window in history.periods(self.window):
            if len(window) < self.min_window_samples or len(np.unique(window.y)) < 2:
                continue
            mask = (history.timestamps >= start) & (
                history.timestamps < start + self.window
            )
            # final period may be end-inclusive; recompute via membership
            if mask.sum() != len(window):
                mask = np.isin(history.timestamps, window.timestamps)
            lr = LogisticRegression(lr=0.5, max_iter=400, alpha=1e-3)
            lr.fit(Xs[mask], history.y[mask])
            midpoints.append(start + self.window / 2.0)
            coef_rows.append(np.r_[lr.coef_, lr.intercept_])
        if len(midpoints) < 2:
            raise ForecastError(
                "weight extrapolation needs at least 2 usable windows"
            )
        Mid = np.column_stack([np.asarray(midpoints), np.ones(len(midpoints))])
        Theta = np.vstack(coef_rows)  # (windows, d + 1)
        # least-squares line per coefficient dimension
        slope_intercept, *_ = np.linalg.lstsq(Mid, Theta, rcond=None)
        models = []
        for tau in times:
            predicted = slope_intercept[0] * tau + slope_intercept[1]
            inner = LogisticRegression().set_weights(predicted[:-1], predicted[-1])
            models.append(ScaledLinearModel(scaler, inner))
        return models


class EDDStrategy(ForecastStrategy):
    """The paper's §II.B method: per-class EDD + herding + retraining.

    Pipeline per future time point t (horizon h = t + 1 windows ahead of
    the last observed one):

    1. standardise features globally;
    2. split history into ``window``-wide sample sets per class;
    3. fit an :class:`~repro.temporal.edd.EDDPredictor` per class and
       predict the class-conditional embedding at horizon h;
    4. herd ``n_herd`` synthetic points per class from the historical
       pool (with jitter, so tree learners see fresh split points);
    5. extrapolate the class prior linearly over window positive-rates;
    6. train ``model_factory`` on the synthetic labeled set in raw space.
    """

    def __init__(
        self,
        window: float = 1.0,
        n_herd: int = 250,
        ridge: float = 0.1,
        jitter: float = 0.05,
        min_window_samples: int = 10,
    ):
        if window <= 0:
            raise ForecastError("window must be positive")
        if n_herd < 10:
            raise ForecastError("n_herd must be >= 10")
        self.window = window
        self.n_herd = n_herd
        self.ridge = ridge
        self.jitter = jitter
        self.min_window_samples = min_window_samples

    def build(self, history, times, model_factory, rng):
        scaler = StandardScaler().fit(history.X)
        windows: list[TemporalDataset] = [
            w
            for _, w in history.periods(self.window)
            if len(w) >= self.min_window_samples
        ]
        if len(windows) < 3:
            raise ForecastError(
                f"EDD needs >= 3 usable windows, got {len(windows)}"
            )
        per_class_sets: dict[int, list[np.ndarray]] = {}
        for label in (0, 1):
            sets = []
            for w in windows:
                subset = w.X[w.y == label]
                if subset.shape[0] == 0:
                    raise ForecastError(
                        f"a window has no samples of class {label};"
                        " enlarge the window"
                    )
                sets.append(scaler.transform(subset))
            per_class_sets[label] = sets
        gamma = median_heuristic_gamma(scaler.transform(history.X), rng=rng)
        kernel = RBFKernel(gamma=gamma)
        predictors = {
            label: EDDPredictor(kernel, ridge=self.ridge).fit(sets)
            for label, sets in per_class_sets.items()
        }
        # class-prior trajectory: linear fit of window approval rates
        rates = np.array([w.y.mean() for w in windows])
        positions = np.arange(len(windows), dtype=float)
        slope, intercept = np.polyfit(positions, rates, deg=1)
        last_position = positions[-1]
        models = []
        last_time = history.span[1]
        for tau in times:
            horizon = max(1, int(round((tau - last_time) / self.window)) + 1)
            parts_X, parts_y = [], []
            prior = float(
                np.clip(slope * (last_position + horizon) + intercept, 0.05, 0.95)
            )
            counts = {
                1: max(5, int(round(self.n_herd * prior))),
                0: max(5, int(round(self.n_herd * (1 - prior)))),
            }
            for label, predictor in predictors.items():
                embedding = predictor.predict_embedding(horizon)
                herded = herd(
                    kernel,
                    embedding,
                    predictor.historical_pool,
                    counts[label],
                    jitter=self.jitter,
                    rng=rng,
                )
                parts_X.append(scaler.inverse_transform(herded))
                parts_y.append(np.full(herded.shape[0], label))
            X_future = np.vstack(parts_X)
            y_future = np.concatenate(parts_y)
            models.append(self._fit(model_factory, X_future, y_future, rng))
        return models


class PerPeriodStrategy(ForecastStrategy):
    """Model for time index t trains on the t-th ``window`` of history.

    The simplest forecaster with genuinely per-time-point models — and,
    more importantly, a *drift-locality harness*: new samples with
    timestamps inside one window change exactly one model, so it pins
    "one of T time points drifts" scenarios in refresh tests and
    ``benchmarks/bench_incremental_refresh.py``.  Not registered under a
    name (it is a baseline/harness, not a recommended production
    forecaster); construct it explicitly.
    """

    def __init__(self, window: float = 1.0):
        if window <= 0:
            raise ForecastError("window must be positive")
        self.window = window

    def build(self, history, times, model_factory, rng):
        start = float(np.floor(history.span[0]))
        models = []
        for i in range(len(times)):
            window = history.window(
                start + i * self.window, start + (i + 1) * self.window
            )
            models.append(self._fit(model_factory, window.X, window.y, rng))
        return models


class OracleStrategy(ForecastStrategy):
    """Benchmark upper bound: trains on ground-truth-labeled future data.

    ``generator`` must expose ``sample_profiles(n)`` and
    ``label(X, years)`` — i.e. a :class:`~repro.data.lending.LendingGenerator`.
    """

    def __init__(self, generator, n_samples: int = 500):
        self.generator = generator
        self.n_samples = n_samples

    def build(self, history, times, model_factory, rng):
        models = []
        for tau in times:
            X = self.generator.sample_profiles(self.n_samples)
            y = self.generator.label(X, np.full(self.n_samples, tau))
            if len(np.unique(y)) < 2:  # degenerate draw; retry once larger
                X = self.generator.sample_profiles(self.n_samples * 2)
                y = self.generator.label(X, np.full(X.shape[0], tau))
            models.append(self._fit(model_factory, X, y, rng))
        return models


_STRATEGIES: dict[str, Callable[[], ForecastStrategy]] = {
    "last": LastWindowStrategy,
    "full": FullHistoryStrategy,
    "reweight": RecencyWeightStrategy,
    "weights": WeightExtrapolationStrategy,
    "edd": EDDStrategy,
}

#: Names accepted wherever a strategy is given as a string
#: (``oracle`` must be constructed explicitly).
STRATEGY_NAMES: tuple[str, ...] = tuple(sorted(_STRATEGIES))


def make_strategy(name: str, **kwargs) -> ForecastStrategy:
    """Instantiate a named strategy (``oracle`` must be built explicitly)."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        raise ForecastError(
            f"unknown strategy {name!r}; choose from {sorted(_STRATEGIES)}"
        ) from None
    return factory(**kwargs)


# --------------------------------------------------------------------------
# generator
# --------------------------------------------------------------------------


class ModelsGenerator:
    """Admin-configured producer of the future-model sequence.

    Parameters
    ----------
    T:
        Number of future time points beyond the present (indices 0..T).
    delta:
        Interval Δ between consecutive time points (timestamp units).
    strategy:
        Strategy instance or name (see :func:`make_strategy`).
    model_factory:
        Zero-argument callable returning an unfitted classifier; defaults
        to the paper's 25-tree random forest.
    threshold_method / fixed_threshold / target_rate:
        Passed to :func:`~repro.temporal.thresholds.calibrate_threshold`,
        evaluated against the most recent historical window.
    random_state:
        Seeds every stochastic step (bootstraps, herding jitter, model
        seeds).
    """

    def __init__(
        self,
        T: int = 5,
        delta: float = 1.0,
        strategy: ForecastStrategy | str = "edd",
        model_factory: ModelFactory | None = None,
        threshold_method: str = "fixed",
        fixed_threshold: float = 0.5,
        target_rate: float | None = None,
        random_state: int | None = 0,
    ):
        if T < 0:
            raise ForecastError("T must be non-negative")
        if delta <= 0:
            raise ForecastError("delta must be positive")
        self.T = T
        self.delta = delta
        self.strategy = (
            make_strategy(strategy) if isinstance(strategy, str) else strategy
        )
        self.model_factory = model_factory or _default_model_factory
        self.threshold_method = threshold_method
        self.fixed_threshold = fixed_threshold
        self.target_rate = target_rate
        self.random_state = random_state

    def generate(
        self, history: TemporalDataset, now: float | None = None
    ) -> FutureModels:
        """Train the sequence ``(M_t, δ_t)`` for ``t = 0 .. T``.

        ``now`` defaults to the most recent timestamp in the history; time
        point t corresponds to calendar time ``now + t·Δ``.
        """
        if len(history) == 0:
            raise ForecastError("history is empty")
        rng = as_rng(self.random_state)
        now = float(now if now is not None else history.span[1])
        times = [now + t * self.delta for t in range(self.T + 1)]
        models = self.strategy.build(history, times, self.model_factory, rng)
        if len(models) != len(times):
            raise ForecastError(
                f"strategy produced {len(models)} models for {len(times)} times"
            )
        reference = ForecastStrategy._recent_window(history, 2 * self.delta)
        future = []
        for t, (tau, model) in enumerate(zip(times, models)):
            threshold = calibrate_threshold(
                model,
                reference.X,
                reference.y,
                method=self.threshold_method,
                fixed_value=self.fixed_threshold,
                target_rate=self.target_rate,
            )
            fingerprint = model_fingerprint(
                model, threshold, self.strategy, self.random_state
            )
            future.append(FutureModel(t, tau, model, threshold, fingerprint))
        return FutureModels(future, delta=self.delta, now=now)
