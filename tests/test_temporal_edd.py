"""Tests for the EDD dynamics predictor (Lampert CVPR 2015 reimplementation)."""

import numpy as np
import pytest

from repro.exceptions import ForecastError
from repro.temporal import EDDPredictor, RBFKernel, WeightedSample, mmd


def drifting_gaussians(n_windows=8, n=120, step=0.5, seed=0):
    """Sample sets from N(mu_t, I) with mu_t moving right by `step`."""
    rng = np.random.default_rng(seed)
    return [
        rng.normal(loc=[t * step, 0.0], scale=0.6, size=(n, 2))
        for t in range(n_windows)
    ]


class TestFitValidation:
    def test_needs_three_windows(self):
        with pytest.raises(ForecastError, match="at least 3"):
            EDDPredictor().fit(drifting_gaussians(n_windows=2))

    def test_bad_ridge(self):
        with pytest.raises(ForecastError):
            EDDPredictor(ridge=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(ForecastError, match="not fitted"):
            EDDPredictor().predict_embedding()

    def test_bad_horizon(self):
        predictor = EDDPredictor().fit(drifting_gaussians(4))
        with pytest.raises(ForecastError):
            predictor.predict_embedding(horizon=0)


class TestPredictionQuality:
    def test_edd_beats_last_embedding_on_drift(self):
        """The core EDD claim: the predicted next embedding is closer (in
        MMD) to the true future distribution than simply reusing the last
        observed embedding."""
        windows = drifting_gaussians(n_windows=9, n=150, step=0.6, seed=1)
        history, future = windows[:-1], windows[-1]
        kernel = RBFKernel(gamma=0.4)
        predictor = EDDPredictor(kernel, ridge=0.05).fit(history)
        predicted = predictor.predict_embedding(horizon=1)
        true_future = WeightedSample.mean_embedding(future)
        last = WeightedSample.mean_embedding(history[-1])
        err_edd = mmd(kernel, predicted, true_future)
        err_last = mmd(kernel, last, true_future)
        assert err_edd < err_last

    def test_static_distribution_prediction_stays_close(self):
        """With no drift, the prediction should match the common
        distribution about as well as the last window does."""
        rng = np.random.default_rng(3)
        windows = [rng.normal(size=(150, 2)) for _ in range(8)]
        kernel = RBFKernel(gamma=0.4)
        predictor = EDDPredictor(kernel, ridge=0.1).fit(windows[:-1])
        predicted = predictor.predict_embedding(1)
        truth = WeightedSample.mean_embedding(windows[-1])
        assert mmd(kernel, predicted, truth) < 0.25

    def test_multi_horizon_extends_drift(self):
        """Predicting 2 steps ahead should land further along the drift
        direction than 1 step ahead."""
        windows = drifting_gaussians(n_windows=8, n=150, step=0.6, seed=2)
        kernel = RBFKernel(gamma=0.4)
        predictor = EDDPredictor(kernel, ridge=0.05).fit(windows)
        one = predictor.predict_embedding(1)
        two = predictor.predict_embedding(2)
        def mean_of(emb):
            return (emb.weights @ emb.points) / emb.weights.sum()

        assert mean_of(two)[0] > mean_of(one)[0]


class TestRepresentation:
    def test_predicted_weights_sum_near_one(self):
        windows = drifting_gaussians(6, n=80)
        predictor = EDDPredictor(RBFKernel(gamma=0.4), ridge=0.05).fit(windows)
        predicted = predictor.predict_embedding(1)
        assert predicted.weights.sum() == pytest.approx(1.0, abs=0.35)

    def test_compress_merges_duplicates(self):
        emb = WeightedSample(
            np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]]),
            np.array([0.3, 0.2, 0.5]),
        )
        compressed = EDDPredictor._compress(emb)
        assert compressed.points.shape[0] == 2
        total = {tuple(p): w for p, w in zip(compressed.points, compressed.weights)}
        assert total[(1.0, 2.0)] == pytest.approx(0.5)
        assert total[(3.0, 4.0)] == pytest.approx(0.5)

    def test_historical_pool_stacks_all_windows(self):
        windows = drifting_gaussians(5, n=50)
        predictor = EDDPredictor(RBFKernel(gamma=0.4)).fit(windows)
        assert predictor.historical_pool.shape == (250, 2)

    def test_historical_pool_before_fit(self):
        with pytest.raises(ForecastError):
            _ = EDDPredictor().historical_pool
