"""Tests for plan construction and rendering."""

import pytest

from repro.core import Candidate, CandidateMetrics, build_plan
from repro.core.plans import FeatureChange


class TestFeatureChange:
    def test_delta_and_pct(self):
        change = FeatureChange("income", 50_000.0, 60_000.0)
        assert change.delta == 10_000.0
        assert change.pct == pytest.approx(20.0)

    def test_pct_none_on_zero_base(self):
        assert FeatureChange("debt", 0.0, 100.0).pct is None

    def test_describe_increase(self):
        text = FeatureChange("income", 100.0, 150.0).describe()
        assert "increase income" in text
        assert "+50" in text and "(+50%)" in text

    def test_describe_decrease(self):
        text = FeatureChange("debt", 200.0, 100.0).describe()
        assert "decrease debt" in text
        assert "(-50%)" in text


class TestBuildPlan:
    def _candidate(self, schema, john, **changes):
        x = john.copy()
        for name, value in changes.items():
            x[schema.index_of(name)] = value
        gap = len(changes)
        return Candidate(
            x, 2, CandidateMetrics(diff=1.5, gap=gap, confidence=0.8)
        )

    def test_changes_captured(self, schema, john):
        candidate = self._candidate(schema, john, monthly_debt=1_000, loan_amount=9_000)
        plan = build_plan(candidate, john, schema, time_value=2021.0)
        features = {c.feature for c in plan.changes}
        assert features == {"monthly_debt", "loan_amount"}
        assert plan.time == 2
        assert plan.time_value == 2021.0
        assert plan.confidence == 0.8

    def test_no_change_plan(self, schema, john):
        candidate = Candidate(
            john.copy(), 1, CandidateMetrics(diff=0.0, gap=0, confidence=0.7)
        )
        plan = build_plan(candidate, john, schema)
        assert plan.changes == ()
        assert "no modifications" in plan.describe()

    def test_describe_contains_time_and_confidence(self, schema, john):
        candidate = self._candidate(schema, john, monthly_debt=500)
        plan = build_plan(candidate, john, schema, time_value=2022.0)
        text = plan.describe()
        assert "t=2" in text
        assert "2022.0" in text
        assert "0.80" in text
        assert "decrease monthly_debt" in text

    def test_default_time_value_is_index(self, schema, john):
        candidate = self._candidate(schema, john, monthly_debt=500)
        plan = build_plan(candidate, john, schema)
        assert plan.time_value == 2.0
