"""Tests for kernel herding."""

import numpy as np
import pytest

from repro.exceptions import ForecastError
from repro.temporal import RBFKernel, WeightedSample, herd, mmd


class TestHerding:
    def test_output_shape(self, rng):
        kernel = RBFKernel(gamma=1.0)
        pool = rng.normal(size=(100, 2))
        target = WeightedSample.mean_embedding(pool)
        out = herd(kernel, target, pool, 20)
        assert out.shape == (20, 2)

    def test_points_come_from_pool_without_jitter(self, rng):
        kernel = RBFKernel(gamma=1.0)
        pool = rng.normal(size=(50, 2))
        target = WeightedSample.mean_embedding(pool)
        out = herd(kernel, target, pool, 10)
        for row in out:
            assert any(np.allclose(row, p) for p in pool)

    def test_herded_embedding_approximates_target(self, rng):
        """More herded points -> smaller MMD to the target embedding."""
        kernel = RBFKernel(gamma=0.5)
        data = rng.normal(size=(300, 2))
        target = WeightedSample.mean_embedding(data)
        errors = []
        for m in (5, 40, 150):
            herded = herd(kernel, target, data, m)
            errors.append(mmd(kernel, WeightedSample.mean_embedding(herded), target))
        assert errors[2] < errors[0]
        assert errors[2] < 0.1

    def test_herding_prefers_high_density_region(self, rng):
        """With a bimodal target weighted toward one mode, herding samples
        that mode more."""
        kernel = RBFKernel(gamma=2.0)
        mode_a = rng.normal(-3, 0.3, size=(50, 1))
        mode_b = rng.normal(3, 0.3, size=(50, 1))
        pool = np.vstack([mode_a, mode_b])
        weights = np.r_[np.full(50, 0.9 / 50), np.full(50, 0.1 / 50)]
        target = WeightedSample(pool, weights)
        out = herd(kernel, target, pool, 30)
        frac_a = np.mean(out < 0)
        assert frac_a > 0.6

    def test_jitter_changes_points(self, rng):
        kernel = RBFKernel(gamma=1.0)
        pool = rng.normal(size=(40, 2))
        target = WeightedSample.mean_embedding(pool)
        out = herd(kernel, target, pool, 10, jitter=0.1, rng=np.random.default_rng(0))
        in_pool = sum(any(np.allclose(row, p) for p in pool) for row in out)
        assert in_pool < 10

    def test_empty_pool_rejected(self, rng):
        kernel = RBFKernel(gamma=1.0)
        target = WeightedSample.mean_embedding(rng.normal(size=(5, 2)))
        with pytest.raises(ForecastError):
            herd(kernel, target, np.zeros((0, 2)), 5)

    def test_bad_n_samples(self, rng):
        kernel = RBFKernel(gamma=1.0)
        pool = rng.normal(size=(5, 2))
        target = WeightedSample.mean_embedding(pool)
        with pytest.raises(ForecastError):
            herd(kernel, target, pool, 0)

    def test_deterministic_without_jitter(self, rng):
        kernel = RBFKernel(gamma=1.0)
        pool = rng.normal(size=(60, 2))
        target = WeightedSample.mean_embedding(pool)
        a = herd(kernel, target, pool, 15)
        b = herd(kernel, target, pool, 15)
        assert np.array_equal(a, b)
