"""Tests for the constraints DSL tokenizer and parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints import (
    And,
    Comparison,
    Not,
    Num,
    Or,
    TrueExpr,
    Var,
    parse_constraint,
    tokenize,
)
from repro.constraints.ast import EvalContext
from repro.exceptions import ConstraintParseError


def ctx(**features):
    return EvalContext(features=features, base={}, special={})


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize("income <= 100")
        assert [t.kind for t in tokens] == ["ident", "op", "number"]

    def test_underscore_numbers(self):
        tokens = tokenize("120_000.5")
        assert tokens[0].text == "120_000.5"

    def test_keywords_case_insensitive(self):
        tokens = tokenize("a > 1 AND b < 2")
        assert tokens[3].kind == "keyword"
        assert tokens[3].text == "and"

    def test_unknown_character(self):
        with pytest.raises(ConstraintParseError) as err:
            tokenize("a ^ b")
        assert err.value.position == 2

    def test_scientific_notation(self):
        tokens = tokenize("1.5e3")
        assert tokens[0].text == "1.5e3"


class TestParsing:
    def test_simple_comparison(self):
        expr = parse_constraint("income <= 100")
        assert isinstance(expr, Comparison)
        assert expr.op == "<="

    def test_precedence_and_over_or(self):
        expr = parse_constraint("a > 1 or b > 2 and c > 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.operands[1], And)

    def test_parenthesised_boolean(self):
        expr = parse_constraint("(a > 1 or b > 2) and c > 3")
        assert isinstance(expr, And)
        assert isinstance(expr.operands[0], Or)

    def test_arithmetic_parentheses(self):
        expr = parse_constraint("(a + b) * 2 <= 10")
        assert expr.evaluate(ctx(a=2.0, b=2.0))
        assert not expr.evaluate(ctx(a=4.0, b=2.0))

    def test_not(self):
        expr = parse_constraint("not a > 1")
        assert isinstance(expr, Not)
        assert expr.evaluate(ctx(a=0.0))

    def test_double_not(self):
        expr = parse_constraint("not not a > 1")
        assert expr.evaluate(ctx(a=2.0))

    def test_true_literal(self):
        assert isinstance(parse_constraint("true"), TrueExpr)

    def test_empty_is_true(self):
        assert isinstance(parse_constraint("   "), TrueExpr)

    def test_unary_minus(self):
        expr = parse_constraint("a >= -5")
        assert expr.evaluate(ctx(a=-3.0))
        assert not expr.evaluate(ctx(a=-7.0))

    def test_multiplication_precedence(self):
        expr = parse_constraint("a + 2 * 3 == 7")
        assert expr.evaluate(ctx(a=1.0))

    def test_division(self):
        expr = parse_constraint("a / 2 >= 5")
        assert expr.evaluate(ctx(a=10.0))

    def test_underscored_number_value(self):
        expr = parse_constraint("a <= 120_000")
        assert isinstance(expr.right, Num)
        assert expr.right.number == 120000.0

    def test_chained_and(self):
        expr = parse_constraint("a > 0 and b > 0 and c > 0")
        assert isinstance(expr, And)
        assert len(expr.operands) == 3

    def test_base_prefix_parses_as_var(self):
        expr = parse_constraint("a <= base_a * 1.2")
        assert Var("base_a") in list(expr.walk())


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "income <=",
            "<= 100",
            "income < > 2",
            "(a > 1",
            "a > 1)",
            "a 1",
            "and a > 1",
            "a > 1 or",
            "a * b <= 1",  # non-linear
            "a / b <= 1",  # non-constant divisor
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ConstraintParseError):
            parse_constraint(text)

    def test_error_carries_position(self):
        with pytest.raises(ConstraintParseError) as err:
            parse_constraint("a > 1 bogus")
        assert err.value.position == 6


class TestRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a <= 100",
            "a > 1 and b < 2",
            "a > 1 or b < 2 and c == 3",
            "not (a > 1 or b > 2)",
            "a + b * 2 <= 10",
            "(a > 1 and b > 2) or c != 0",
        ],
    )
    def test_str_reparses_to_same_semantics(self, text):
        expr = parse_constraint(text)
        again = parse_constraint(str(expr))
        bindings = ctx(a=1.5, b=1.5, c=3.0)
        assert expr.evaluate(bindings) == again.evaluate(bindings)

    @given(
        st.recursive(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
                st.floats(-100, 100, allow_nan=False),
            ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
            lambda inner: st.one_of(
                st.tuples(inner, inner).map(lambda p: f"({p[0]} and {p[1]})"),
                st.tuples(inner, inner).map(lambda p: f"({p[0]} or {p[1]})"),
                inner.map(lambda e: f"not ({e})"),
            ),
            max_leaves=6,
        )
    )
    def test_generated_expressions_parse_and_evaluate(self, text):
        expr = parse_constraint(text)
        result = expr.evaluate(ctx(a=1.0, b=-2.0, c=50.0))
        assert isinstance(result, bool)
