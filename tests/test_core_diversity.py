"""Tests for diverse top-k selection."""

import numpy as np
import pytest

from repro.core import (
    diverse_order,
    min_pairwise_distance,
    select_diverse,
    select_diverse_batch,
    select_greedy,
)
from repro.exceptions import CandidateSearchError


class TestSelectDiverse:
    def test_includes_best_quality(self, rng):
        points = rng.normal(size=(30, 3))
        quality = rng.random(30)
        chosen = select_diverse(points, quality, 5)
        assert int(np.argmin(quality)) in chosen

    def test_size(self, rng):
        points = rng.normal(size=(30, 3))
        quality = rng.random(30)
        assert len(select_diverse(points, quality, 7)) == 7

    def test_returns_all_when_small(self, rng):
        points = rng.normal(size=(3, 2))
        quality = np.array([0.3, 0.1, 0.2])
        chosen = select_diverse(points, quality, 10)
        assert sorted(chosen) == [0, 1, 2]
        assert chosen[0] == 1  # sorted by quality

    def test_no_duplicates(self, rng):
        points = rng.normal(size=(40, 2))
        quality = rng.random(40)
        chosen = select_diverse(points, quality, 10)
        assert len(set(chosen)) == 10

    def test_more_diverse_than_greedy(self, rng):
        """On clustered data with quality concentrated in one cluster,
        max-min selection spreads out more than pure quality top-k."""
        cluster_a = rng.normal(0, 0.05, size=(20, 2))
        cluster_b = rng.normal(5, 0.05, size=(20, 2))
        points = np.vstack([cluster_a, cluster_b])
        quality = np.r_[rng.uniform(0.0, 0.1, 20), rng.uniform(0.5, 1.0, 20)]
        diverse = select_diverse(points, quality, 6)
        greedy = select_greedy(quality, 6)
        d_diverse = min_pairwise_distance(points[diverse])
        d_greedy = min_pairwise_distance(points[greedy])
        assert d_diverse >= d_greedy
        # diverse selection reaches the far cluster
        assert any(i >= 20 for i in diverse)
        assert all(i < 20 for i in greedy)

    def test_length_mismatch(self, rng):
        with pytest.raises(CandidateSearchError):
            select_diverse(rng.normal(size=(5, 2)), rng.random(4), 2)

    def test_bad_k(self, rng):
        with pytest.raises(CandidateSearchError):
            select_diverse(rng.normal(size=(5, 2)), rng.random(5), 0)

    def test_scale_affects_distances(self, rng):
        # a huge-scale feature dominates unscaled distances; scaling evens it
        points = np.column_stack([rng.normal(0, 1000, 20), rng.normal(0, 0.001, 20)])
        quality = rng.random(20)
        chosen = select_diverse(points, quality, 5, scale=[1000.0, 0.001])
        assert len(chosen) == 5


class TestSelectGreedy:
    def test_orders_by_quality(self):
        quality = np.array([0.5, 0.1, 0.9, 0.3])
        assert select_greedy(quality, 2) == [1, 3]

    def test_bad_k(self):
        with pytest.raises(CandidateSearchError):
            select_greedy(np.array([1.0]), 0)


class TestScaleHandling:
    """Regression: a zero scale entry (constant feature, common after
    one-hot slices) used to divide to inf/nan and corrupt selection."""

    def test_zero_scale_clamps_to_unit(self, rng):
        points = rng.normal(size=(20, 3))
        quality = rng.random(20)
        with_zero = select_diverse(points, quality, 5, scale=[1.0, 0.0, 2.0])
        clamped = select_diverse(points, quality, 5, scale=[1.0, 1.0, 2.0])
        assert with_zero == clamped

    def test_zero_scale_distances_finite(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = min_pairwise_distance(points, scale=[0.0, 1.0])
        assert np.isfinite(d)
        assert d == pytest.approx(5.0)

    def test_negative_scale_raises(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(CandidateSearchError):
            select_diverse(points, rng.random(10), 3, scale=[1.0, -1.0])
        with pytest.raises(CandidateSearchError):
            min_pairwise_distance(points, scale=[-0.5, 1.0])


class TestDiverseOrder:
    def test_matches_select_diverse(self, rng):
        points = rng.normal(size=(30, 3))
        quality = rng.random(30)
        order, dists = diverse_order(points, quality, 6)
        assert order == select_diverse(points, quality, 6)
        assert len(dists) == 6

    def test_seed_distance_is_inf(self, rng):
        points = rng.normal(size=(15, 2))
        _, dists = diverse_order(points, rng.random(15), 4)
        assert dists[0] == float("inf")
        assert all(np.isfinite(d) for d in dists[1:])

    def test_distances_are_to_nearest_earlier_pick(self, rng):
        points = rng.normal(size=(25, 3))
        quality = rng.random(25)
        order, dists = diverse_order(points, quality, 5)
        for r in range(1, 5):
            expected = min(
                float(np.linalg.norm(points[order[r]] - points[order[e]]))
                for e in range(r)
            )
            assert dists[r] == pytest.approx(expected)

    def test_small_pool_quality_order(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        quality = np.array([0.3, 0.1, 0.2])
        order, dists = diverse_order(points, quality, 10)
        assert order == [1, 2, 0]
        assert dists[0] == float("inf")
        assert len(dists) == 3


class TestSelectDiverseBatch:
    def _random_groups(self, rng, n_groups):
        sizes, ks, pts, qs = [], [], [], []
        for _ in range(n_groups):
            n = int(rng.integers(1, 25))
            sizes.append(n)
            ks.append(int(rng.integers(1, 10)))
            pts.append(rng.normal(size=(n, 3)))
            qs.append(rng.random(n))
        return sizes, ks, pts, qs

    def test_bitwise_identical_to_per_cell(self, rng):
        for _ in range(20):
            sizes, ks, pts, qs = self._random_groups(rng, int(rng.integers(1, 6)))
            scale = np.abs(rng.normal(size=3)) + 0.1
            batch = select_diverse_batch(
                np.vstack(pts), np.concatenate(qs), sizes, ks, scale=scale
            )
            for g, (chosen, dists) in enumerate(batch):
                ref_chosen, ref_dists = diverse_order(
                    pts[g], qs[g], ks[g], scale=scale
                )
                assert chosen == ref_chosen
                assert dists == ref_dists

    def test_scalar_k_broadcasts(self, rng):
        sizes, _, pts, qs = self._random_groups(rng, 4)
        batch = select_diverse_batch(
            np.vstack(pts), np.concatenate(qs), sizes, 3
        )
        for g, (chosen, dists) in enumerate(batch):
            assert (chosen, dists) == diverse_order(pts[g], qs[g], 3)

    def test_empty_groups_list(self):
        assert select_diverse_batch(np.empty((0, 2)), [], [], []) == []

    def test_size_mismatch_raises(self, rng):
        with pytest.raises(CandidateSearchError):
            select_diverse_batch(rng.normal(size=(5, 2)), rng.random(5), [3], [2])

    def test_bad_k_raises(self, rng):
        with pytest.raises(CandidateSearchError):
            select_diverse_batch(rng.normal(size=(5, 2)), rng.random(5), [5], [0])


class TestMinPairwiseDistance:
    def test_known(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0], [10.0, 0.0]])
        assert min_pairwise_distance(points) == pytest.approx(5.0)

    def test_single_point_is_inf(self):
        assert min_pairwise_distance(np.array([[1.0, 2.0]])) == float("inf")

    def test_scaled(self):
        points = np.array([[0.0], [10.0]])
        assert min_pairwise_distance(points, scale=[10.0]) == pytest.approx(1.0)

    def test_broadcast_matches_pairwise_loop(self, rng):
        """The vectorized version returns exactly what the former
        O(n^2) Python loop over np.linalg.norm calls returned."""
        for _ in range(20):
            n = int(rng.integers(2, 40))
            d = int(rng.integers(1, 6))
            points = rng.normal(size=(n, d))
            scale = np.abs(rng.normal(size=d)) + 0.1
            for s in (None, scale):
                scaled = points / s if s is not None else points
                best = float("inf")
                for i in range(n - 1):
                    dist = np.linalg.norm(scaled[i + 1 :] - scaled[i], axis=1)
                    best = min(best, float(dist.min()))
                assert min_pairwise_distance(points, scale=s) == best
