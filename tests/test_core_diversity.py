"""Tests for diverse top-k selection."""

import numpy as np
import pytest

from repro.core import min_pairwise_distance, select_diverse, select_greedy
from repro.exceptions import CandidateSearchError


class TestSelectDiverse:
    def test_includes_best_quality(self, rng):
        points = rng.normal(size=(30, 3))
        quality = rng.random(30)
        chosen = select_diverse(points, quality, 5)
        assert int(np.argmin(quality)) in chosen

    def test_size(self, rng):
        points = rng.normal(size=(30, 3))
        quality = rng.random(30)
        assert len(select_diverse(points, quality, 7)) == 7

    def test_returns_all_when_small(self, rng):
        points = rng.normal(size=(3, 2))
        quality = np.array([0.3, 0.1, 0.2])
        chosen = select_diverse(points, quality, 10)
        assert sorted(chosen) == [0, 1, 2]
        assert chosen[0] == 1  # sorted by quality

    def test_no_duplicates(self, rng):
        points = rng.normal(size=(40, 2))
        quality = rng.random(40)
        chosen = select_diverse(points, quality, 10)
        assert len(set(chosen)) == 10

    def test_more_diverse_than_greedy(self, rng):
        """On clustered data with quality concentrated in one cluster,
        max-min selection spreads out more than pure quality top-k."""
        cluster_a = rng.normal(0, 0.05, size=(20, 2))
        cluster_b = rng.normal(5, 0.05, size=(20, 2))
        points = np.vstack([cluster_a, cluster_b])
        quality = np.r_[rng.uniform(0.0, 0.1, 20), rng.uniform(0.5, 1.0, 20)]
        diverse = select_diverse(points, quality, 6)
        greedy = select_greedy(quality, 6)
        d_diverse = min_pairwise_distance(points[diverse])
        d_greedy = min_pairwise_distance(points[greedy])
        assert d_diverse >= d_greedy
        # diverse selection reaches the far cluster
        assert any(i >= 20 for i in diverse)
        assert all(i < 20 for i in greedy)

    def test_length_mismatch(self, rng):
        with pytest.raises(CandidateSearchError):
            select_diverse(rng.normal(size=(5, 2)), rng.random(4), 2)

    def test_bad_k(self, rng):
        with pytest.raises(CandidateSearchError):
            select_diverse(rng.normal(size=(5, 2)), rng.random(5), 0)

    def test_scale_affects_distances(self, rng):
        # a huge-scale feature dominates unscaled distances; scaling evens it
        points = np.column_stack([rng.normal(0, 1000, 20), rng.normal(0, 0.001, 20)])
        quality = rng.random(20)
        chosen = select_diverse(points, quality, 5, scale=[1000.0, 0.001])
        assert len(chosen) == 5


class TestSelectGreedy:
    def test_orders_by_quality(self):
        quality = np.array([0.5, 0.1, 0.9, 0.3])
        assert select_greedy(quality, 2) == [1, 3]

    def test_bad_k(self):
        with pytest.raises(CandidateSearchError):
            select_greedy(np.array([1.0]), 0)


class TestMinPairwiseDistance:
    def test_known(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0], [10.0, 0.0]])
        assert min_pairwise_distance(points) == pytest.approx(5.0)

    def test_single_point_is_inf(self):
        assert min_pairwise_distance(np.array([[1.0, 2.0]])) == float("inf")

    def test_scaled(self):
        points = np.array([[0.0], [10.0]])
        assert min_pairwise_distance(points, scale=[10.0]) == pytest.approx(1.0)
