"""Tests for gradient boosting (extension model class)."""

import numpy as np
import pytest

from repro.ml import GradientBoostingClassifier


class TestFit:
    def test_learns_separable(self, small_xy):
        X, y = small_xy
        model = GradientBoostingClassifier(
            n_estimators=40, learning_rate=0.2, max_depth=2, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_train_deviance_decreases(self, small_xy):
        X, y = small_xy
        model = GradientBoostingClassifier(
            n_estimators=30, learning_rate=0.2, random_state=0
        ).fit(X, y)
        deviance = model.train_deviance_
        assert deviance[-1] < deviance[0]
        # mostly monotone: no large regressions
        assert max(
            b - a for a, b in zip(deviance, deviance[1:])
        ) < 0.05

    def test_learns_xor_unlike_linear(self, rng):
        # XOR requires interactions; depth-2 boosting captures them
        X = rng.uniform(-1, 1, size=(600, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = GradientBoostingClassifier(
            n_estimators=60, learning_rate=0.3, max_depth=2, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_subsample_mode(self, small_xy):
        X, y = small_xy
        model = GradientBoostingClassifier(
            n_estimators=20, subsample=0.6, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_reproducible(self, small_xy):
        X, y = small_xy
        a = GradientBoostingClassifier(
            n_estimators=10, subsample=0.7, random_state=3
        ).fit(X, y)
        b = GradientBoostingClassifier(
            n_estimators=10, subsample=0.7, random_state=3
        ).fit(X, y)
        assert np.allclose(a.decision_score(X), b.decision_score(X))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0)

    def test_scores_are_probabilities(self, small_xy):
        X, y = small_xy
        model = GradientBoostingClassifier(n_estimators=15, random_state=0).fit(X, y)
        scores = model.decision_score(X)
        assert ((scores > 0) & (scores < 1)).all()


class TestIntrospection:
    def test_split_thresholds_available(self, small_xy):
        X, y = small_xy
        model = GradientBoostingClassifier(
            n_estimators=10, max_depth=2, random_state=0
        ).fit(X, y)
        thresholds = model.split_thresholds()
        assert thresholds
        for values in thresholds.values():
            assert np.all(np.diff(values) > 0)

    def test_init_raw_matches_base_rate(self, small_xy):
        X, y = small_xy
        model = GradientBoostingClassifier(n_estimators=1, random_state=0).fit(X, y)
        expected = np.log(y.mean() / (1 - y.mean()))
        assert model.init_raw_ == pytest.approx(expected)
