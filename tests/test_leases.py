"""Lease coordination tests: the cross-process refresh work queue.

Covers the deterministic stale-cell ordering contract, atomic
claim/renew/release semantics, expiry-based recovery of crashed workers'
cells, and two-connection claim contention on a shared database file.
"""

import threading

import numpy as np
import pytest

from repro.core.candidates import Candidate
from repro.core.objectives import CandidateMetrics
from repro.db.store import CandidateStore
from repro.exceptions import StorageError

BACKENDS = ["sqlite", "memory", "sharded"]

#: user ids chosen to land in more than one shard (crc32 % 4)
USERS = ["u-a", "u-b", "u-c", "u-d"]
FPS = {0: "new0", 1: "new1"}


def populate(store: CandidateStore) -> None:
    """Two-cell horizon per user, every cell stamped under an old model."""
    base = np.arange(len(store.schema), dtype=float)
    for uid in USERS:
        store.store_temporal_inputs(
            uid, np.vstack([base, base + 1]), fingerprints={0: "old", 1: "old"}
        )


def all_cells():
    return [(uid, t) for uid in sorted(USERS) for t in (0, 1)]


@pytest.fixture(params=BACKENDS)
def store(request, schema, tmp_path):
    path = ":memory:" if request.param == "memory" else tmp_path / "leases.db"
    with CandidateStore(schema, path, backend=request.param) as s:
        populate(s)
        yield s


def make_candidate(schema, t):
    return Candidate(
        np.arange(len(schema), dtype=float),
        t,
        CandidateMetrics(diff=1.0, gap=1, confidence=0.9),
    )


class TestStaleOrdering:
    def test_order_is_user_then_time(self, store):
        assert store.stale_cells(FPS) == all_cells()

    def test_order_identical_across_backends(self, schema, tmp_path):
        """The satellite fix: claim order must not depend on backend
        topology (shard layout used to leak into the ledger order)."""
        results = {}
        for backend in BACKENDS:
            path = (
                ":memory:" if backend == "memory" else tmp_path / f"{backend}.db"
            )
            with CandidateStore(schema, path, backend=backend) as s:
                populate(s)
                results[backend] = s.stale_cells(FPS)
        assert results["sqlite"] == results["memory"] == results["sharded"]

    def test_empty_fingerprints(self, store):
        assert store.stale_cells({}) == []


class TestClaim:
    def test_claim_takes_ledger_prefix(self, store):
        claimed = store.claim_stale_cells(FPS, "w1", limit=3, now=100.0)
        assert claimed == all_cells()[:3]
        assert [row[:3] for row in store.lease_rows()] == [
            (uid, t, "w1") for uid, t in claimed
        ]

    def test_second_worker_gets_disjoint_cells(self, store):
        first = store.claim_stale_cells(FPS, "w1", limit=3, now=100.0)
        second = store.claim_stale_cells(FPS, "w2", limit=99, now=100.0)
        assert not set(first) & set(second)
        assert sorted(first + second) == all_cells()

    def test_reclaim_by_same_worker_is_idempotent(self, store):
        first = store.claim_stale_cells(FPS, "w1", limit=2, now=100.0)
        again = store.claim_stale_cells(FPS, "w1", limit=2, now=101.0)
        assert again == first

    def test_exclude_skips_cells(self, store):
        claimed = store.claim_stale_cells(
            FPS, "w1", limit=2, now=100.0, exclude=[all_cells()[0]]
        )
        assert claimed == all_cells()[1:3]

    def test_limit_validated(self, store):
        with pytest.raises(StorageError, match="limit"):
            store.claim_stale_cells(FPS, "w1", limit=0)

    def test_fresh_cells_not_claimable(self, store):
        """Upserting a cell stamps the current fingerprint, so it leaves
        the work queue."""
        store.upsert_cells(
            [("u-a", 0, [make_candidate(store.schema, 0)])], fingerprints=FPS
        )
        claimed = store.claim_stale_cells(FPS, "w1", limit=99, now=100.0)
        assert ("u-a", 0) not in claimed
        assert len(claimed) == len(all_cells()) - 1


class TestExpiry:
    def test_live_lease_not_stealable(self, store):
        store.claim_stale_cells(
            FPS, "w1", limit=99, now=100.0, lease_seconds=30.0
        )
        assert store.claim_stale_cells(FPS, "w2", limit=99, now=129.0) == []

    def test_expired_lease_reclaimed(self, store):
        store.claim_stale_cells(
            FPS, "w1", limit=99, now=100.0, lease_seconds=30.0
        )
        reclaimed = store.claim_stale_cells(FPS, "w2", limit=99, now=130.0)
        assert reclaimed == all_cells()
        assert all(row[2] == "w2" for row in store.lease_rows())

    def test_renew_extends_live_lease(self, store):
        cells = store.claim_stale_cells(
            FPS, "w1", limit=1, now=100.0, lease_seconds=30.0
        )
        assert store.renew_leases(
            "w1", cells, lease_seconds=30.0, now=120.0
        ) == 1
        # the renewal pushed expiry to 150: not reclaimable at 140
        assert store.claim_stale_cells(FPS, "w2", limit=1, now=140.0) == [
            all_cells()[1]
        ]

    def test_renew_refuses_expired_or_foreign_lease(self, store):
        cells = store.claim_stale_cells(
            FPS, "w1", limit=1, now=100.0, lease_seconds=30.0
        )
        assert store.renew_leases("w2", cells, now=110.0) == 0  # foreign
        assert store.renew_leases("w1", cells, now=130.0) == 0  # expired

    def test_release(self, store):
        cells = store.claim_stale_cells(FPS, "w1", limit=2, now=100.0)
        assert store.release_cells("w2", cells) == 0  # foreign: no-op
        assert store.release_cells("w1", cells) == 2
        assert store.lease_rows() == []
        # released cells are claimable again immediately
        assert store.claim_stale_cells(FPS, "w2", limit=2, now=100.0) == cells


class TestCrashRecovery:
    @pytest.mark.parametrize("backend", ["sqlite", "sharded"])
    def test_dead_workers_cell_recomputed(self, schema, tmp_path, backend):
        """Worker A claims a cell and dies (connection gone, no release);
        after lease expiry worker B reclaims and recomputes it."""
        path = tmp_path / "crash.db"
        with CandidateStore(schema, path, backend=backend) as setup:
            populate(setup)
        crashing = CandidateStore(schema, path, backend=backend)
        victim = crashing.claim_stale_cells(
            FPS, "wA", limit=1, now=100.0, lease_seconds=30.0
        )
        crashing.close()  # mid-cell crash: lease row survives on disk

        with CandidateStore(schema, path, backend=backend) as survivor:
            # before expiry the cell is protected
            assert victim[0] not in survivor.claim_stale_cells(
                FPS, "wB", limit=99, now=120.0
            )
            survivor.release_cells(
                "wB", [c for c in all_cells() if c != victim[0]]
            )
            # after expiry it is reclaimed and recomputable
            reclaimed = survivor.claim_stale_cells(FPS, "wB", limit=1, now=131.0)
            assert reclaimed == victim
            uid, t = victim[0]
            survivor.upsert_cells(
                [(uid, t, [make_candidate(schema, t)])], fingerprints=FPS
            )
            survivor.release_cells("wB", victim)
            assert (uid, t) not in survivor.stale_cells(FPS)
            assert survivor.lease_rows() == []
            assert survivor.candidate_count(uid) == 1

    @pytest.mark.parametrize("backend", ["sqlite", "sharded"])
    def test_two_connection_contention(self, schema, tmp_path, backend):
        """Two threads, each with its own connection to the shared file,
        drain the queue concurrently: every cell claimed exactly once."""
        path = tmp_path / "contend.db"
        with CandidateStore(schema, path, backend=backend) as setup:
            populate(setup)
        barrier = threading.Barrier(2)
        claims: dict[str, list] = {"w1": [], "w2": []}
        errors: list[Exception] = []

        def drain(worker_id: str) -> None:
            try:
                store = CandidateStore(schema, path, backend=backend)
                try:
                    barrier.wait()
                    while True:
                        # exclude= mimics a real worker whose upsert
                        # removes processed cells from the stale set (a
                        # worker's re-claim of its own live lease is
                        # idempotent, deliberately)
                        got = store.claim_stale_cells(
                            FPS,
                            worker_id,
                            limit=1,
                            lease_seconds=60.0,
                            exclude=claims[worker_id],
                        )
                        if not got:
                            break
                        claims[worker_id].extend(got)
                finally:
                    store.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=drain, args=(w,)) for w in ("w1", "w2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert not set(claims["w1"]) & set(claims["w2"])
        assert sorted(claims["w1"] + claims["w2"]) == all_cells()
