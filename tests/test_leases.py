"""Cross-connection lease tests: multiple connections to one store file.

The single-connection lease/ledger contract (ordering, claim, expiry,
renew/release, the indexed claim scan, the store-side clock) lives in
the parametrised backend suite in ``tests/test_store_backends.py`` and
runs against sqlite/memory/sharded alike.  What remains here is the
behaviour that *needs* several connections to one shared database file:
crash recovery of another process's leases, and concurrent claim
contention on the write lock — so only the file-backed backends appear.
"""

import threading

import numpy as np
import pytest

from repro.core.candidates import Candidate
from repro.core.objectives import CandidateMetrics
from repro.db.store import CandidateStore

#: user ids chosen to land in more than one shard (crc32 % 4)
USERS = ["u-a", "u-b", "u-c", "u-d"]
FPS = {0: "new0", 1: "new1"}


def populate(store: CandidateStore) -> None:
    """Two-cell horizon per user, every cell stamped under an old model."""
    base = np.arange(len(store.schema), dtype=float)
    for uid in USERS:
        store.store_temporal_inputs(
            uid, np.vstack([base, base + 1]), fingerprints={0: "old", 1: "old"}
        )


def all_cells():
    return [(uid, t) for uid in sorted(USERS) for t in (0, 1)]


def make_candidate(schema, t):
    return Candidate(
        np.arange(len(schema), dtype=float),
        t,
        CandidateMetrics(diff=1.0, gap=1, confidence=0.9),
    )


class TestCrashRecovery:
    @pytest.mark.parametrize("backend", ["sqlite", "sharded"])
    def test_dead_workers_cell_recomputed(self, schema, tmp_path, backend):
        """Worker A claims a cell and dies (connection gone, no release);
        after lease expiry worker B reclaims and recomputes it."""
        path = tmp_path / "crash.db"
        with CandidateStore(schema, path, backend=backend) as setup:
            populate(setup)
        crashing = CandidateStore(schema, path, backend=backend)
        victim = crashing.claim_stale_cells(
            FPS, "wA", limit=1, now=100.0, lease_seconds=30.0
        )
        crashing.close()  # mid-cell crash: lease row survives on disk

        with CandidateStore(schema, path, backend=backend) as survivor:
            # before expiry the cell is protected
            assert victim[0] not in survivor.claim_stale_cells(
                FPS, "wB", limit=99, now=120.0
            )
            survivor.release_cells(
                "wB", [c for c in all_cells() if c != victim[0]]
            )
            # after expiry it is reclaimed and recomputable
            reclaimed = survivor.claim_stale_cells(FPS, "wB", limit=1, now=131.0)
            assert reclaimed == victim
            uid, t = victim[0]
            survivor.upsert_cells(
                [(uid, t, [make_candidate(schema, t)])], fingerprints=FPS
            )
            survivor.release_cells("wB", victim)
            assert (uid, t) not in survivor.stale_cells(FPS)
            assert survivor.lease_rows() == []
            assert survivor.candidate_count(uid) == 1

    @pytest.mark.parametrize("backend", ["sqlite", "sharded"])
    def test_two_connection_contention(self, schema, tmp_path, backend):
        """Two threads, each with its own connection to the shared file,
        drain the queue concurrently: every cell claimed exactly once."""
        path = tmp_path / "contend.db"
        with CandidateStore(schema, path, backend=backend) as setup:
            populate(setup)
        barrier = threading.Barrier(2)
        claims: dict[str, list] = {"w1": [], "w2": []}
        errors: list[Exception] = []

        def drain(worker_id: str) -> None:
            try:
                store = CandidateStore(schema, path, backend=backend)
                try:
                    barrier.wait()
                    while True:
                        # exclude= mimics a real worker whose upsert
                        # removes processed cells from the stale set (a
                        # worker's re-claim of its own live lease is
                        # idempotent, deliberately)
                        got = store.claim_stale_cells(
                            FPS,
                            worker_id,
                            limit=1,
                            lease_seconds=60.0,
                            exclude=claims[worker_id],
                        )
                        if not got:
                            break
                        claims[worker_id].extend(got)
                finally:
                    store.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=drain, args=(w,)) for w in ("w1", "w2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert not set(claims["w1"]) & set(claims["w2"])
        assert sorted(claims["w1"] + claims["w2"]) == all_cells()
