"""Tests for the SQLite candidate store."""

import numpy as np
import pytest

from repro.core import Candidate, CandidateMetrics
from repro.data import DatasetSchema, FeatureSpec
from repro.db import CandidateStore
from repro.exceptions import StorageError


@pytest.fixture()
def store(schema):
    with CandidateStore(schema) as s:
        yield s


def make_candidate(x, time=0, diff=1.0, gap=1, confidence=0.8):
    return Candidate(
        np.asarray(x, dtype=float),
        time,
        CandidateMetrics(diff=diff, gap=gap, confidence=confidence),
    )


class TestSchemaSafety:
    def test_reserved_column_rejected(self):
        bad = DatasetSchema([FeatureSpec("diff")])
        with pytest.raises(StorageError, match="reserved"):
            CandidateStore(bad)

    def test_non_identifier_rejected(self):
        bad = DatasetSchema([FeatureSpec("weird name")])
        with pytest.raises(StorageError, match="identifier"):
            CandidateStore(bad)


class TestTemporalInputs:
    def test_roundtrip(self, store, john):
        trajectory = np.vstack([john, john + 0, john + 0])
        trajectory[1, 0] += 1
        trajectory[2, 0] += 2
        store.store_temporal_inputs("u1", trajectory)
        assert store.times_for("u1") == [0, 1, 2]
        back = store.temporal_input("u1", 1)
        assert np.allclose(back, trajectory[1])

    def test_replace_on_restore(self, store, john):
        store.store_temporal_inputs("u1", np.vstack([john] * 4))
        store.store_temporal_inputs("u1", np.vstack([john] * 2))
        assert store.times_for("u1") == [0, 1]

    def test_wrong_width_rejected(self, store):
        with pytest.raises(StorageError):
            store.store_temporal_inputs("u1", np.zeros((2, 3)))

    def test_missing_row_raises(self, store):
        with pytest.raises(StorageError):
            store.temporal_input("nobody", 0)


class TestCandidates:
    def test_insert_and_count(self, store, john):
        store.store_candidates("u1", [make_candidate(john), make_candidate(john, 1)])
        assert store.candidate_count("u1") == 2
        assert store.candidate_count() == 2

    def test_rows_carry_metrics(self, store, john):
        store.store_candidates(
            "u1", [make_candidate(john, time=2, diff=3.5, gap=2, confidence=0.9)]
        )
        row = store.sql("SELECT * FROM candidates WHERE user_id = 'u1'")[0]
        assert row["time"] == 2
        assert row["diff"] == pytest.approx(3.5)
        assert row["gap"] == 2
        assert row["p"] == pytest.approx(0.9)

    def test_row_to_vector(self, store, john):
        store.store_candidates("u1", [make_candidate(john)])
        row = store.sql("SELECT * FROM candidates")[0]
        assert np.allclose(store.row_to_vector(row), john)

    def test_clear_user_isolates(self, store, john):
        store.store_candidates("u1", [make_candidate(john)])
        store.store_candidates("u2", [make_candidate(john)])
        store.store_temporal_inputs("u1", john.reshape(1, -1))
        store.clear_user("u1")
        assert store.candidate_count("u1") == 0
        assert store.candidate_count("u2") == 1
        assert store.times_for("u1") == []


class TestSqlPassthrough:
    def test_valid_query(self, store, john):
        store.store_candidates("u1", [make_candidate(john)])
        rows = store.sql("SELECT COUNT(*) AS n FROM candidates")
        assert rows[0]["n"] == 1

    def test_parametrised(self, store, john):
        store.store_candidates("u1", [make_candidate(john, confidence=0.9)])
        rows = store.sql("SELECT * FROM candidates WHERE p > ?", (0.5,))
        assert len(rows) == 1

    def test_invalid_sql_raises_storage_error(self, store):
        with pytest.raises(StorageError, match="SQL error"):
            store.sql("SELECT * FROM not_a_table")


class TestFileBacked:
    def test_persists_to_disk(self, schema, john, tmp_path):
        path = tmp_path / "candidates.db"
        with CandidateStore(schema, path) as store:
            store.store_candidates("u1", [make_candidate(john)])
        with CandidateStore(schema, path) as store:
            assert store.candidate_count("u1") == 1
