"""Tests for parallel candidates generation (§II.B: generators are
independent and can be executed in parallel)."""

import numpy as np
import pytest

from repro.constraints import lending_domain_constraints
from repro.core import AdminConfig, JustInTime
from repro.data import john_profile, make_lending_dataset
from repro.temporal import lending_update_function


@pytest.fixture(scope="module")
def history():
    return make_lending_dataset(n_per_year=120, random_state=3)


def _system(schema, history, n_jobs):
    system = JustInTime(
        schema,
        lending_update_function(schema),
        AdminConfig(
            T=3, strategy="last", k=4, max_iter=8, random_state=0, n_jobs=n_jobs
        ),
        domain_constraints=lending_domain_constraints(schema),
    )
    system.fit(history)
    return system


class TestParallelEqualsSequential:
    def test_identical_candidates(self, schema, history):
        seq = _system(schema, history, n_jobs=1).create_session(
            "u", john_profile()
        )
        par = _system(schema, history, n_jobs=4).create_session(
            "u", john_profile()
        )
        assert len(seq.candidates) == len(par.candidates)
        def key(c):
            return (c.time, tuple(np.round(c.x, 9)))

        for a, b in zip(sorted(seq.candidates, key=key),
                        sorted(par.candidates, key=key)):
            assert a.time == b.time
            assert np.array_equal(a.x, b.x)
            assert a.confidence == pytest.approx(b.confidence)

    def test_store_rows_match(self, schema, history):
        sys_par = _system(schema, history, n_jobs=3)
        sys_par.create_session("u", john_profile())
        sys_seq = _system(schema, history, n_jobs=1)
        sys_seq.create_session("u", john_profile())
        a = sys_par.store.sql(
            "SELECT time, diff, gap, p FROM candidates ORDER BY time, diff, p"
        )
        b = sys_seq.store.sql(
            "SELECT time, diff, gap, p FROM candidates ORDER BY time, diff, p"
        )
        assert [tuple(r) for r in a] == [tuple(r) for r in b]

    def test_stats_per_time_point(self, schema, history):
        session = _system(schema, history, n_jobs=2).create_session(
            "u", john_profile()
        )
        assert len(session.search_stats) == 4
