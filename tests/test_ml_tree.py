"""Tests for the CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.ml import DecisionTreeClassifier


class TestFitting:
    def test_fits_separable_perfectly(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) > 0.99

    def test_single_class_gives_constant_leaf(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = np.ones(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.is_leaf
        assert np.allclose(tree.decision_score(X), 1.0)

    def test_max_depth_respected(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf_respected(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)
        assert all(leaf.n_samples >= 20 for leaf in tree.leaves())

    def test_min_samples_split_blocks_growth(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        tree = DecisionTreeClassifier(min_samples_split=10).fit(X, y)
        assert tree.root_.is_leaf

    def test_entropy_criterion_works(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(criterion="entropy", max_depth=5).fit(X, y)
        assert tree.score(X, y) > 0.9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="nope")
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_constant_features_give_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.is_leaf
        assert tree.decision_score(X[:1])[0] == pytest.approx(0.5)


class TestPrediction:
    def test_proba_matches_leaf_fraction(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        scores = tree.decision_score(X)
        assert set(np.round(scores, 6)) <= {0.0, 1.0}

    def test_proba_rows_sum_to_one(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X[:20])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_decision_path_consistent_with_prediction(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        for row in X[:25]:
            path = tree.decision_path(row)
            assert path[0] is tree.root_
            leaf = path[-1]
            assert leaf.is_leaf
            assert tree.decision_score(row.reshape(1, -1))[0] == pytest.approx(
                leaf.probability
            )
            # each consecutive pair is a parent-child link respecting the test
            for parent, child in zip(path, path[1:]):
                if row[parent.feature] <= parent.threshold:
                    assert child is parent.left
                else:
                    assert child is parent.right

    def test_decision_path_wrong_size(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        with pytest.raises(ValidationError):
            tree.decision_path([1.0, 2.0, 3.0])


class TestIntrospection:
    def test_split_thresholds_cover_internal_nodes(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        thresholds = tree.split_thresholds()
        internal = [n for n in tree.root_.iter_nodes() if not n.is_leaf]
        assert internal
        for node in internal:
            assert node.threshold in thresholds[node.feature]

    def test_split_thresholds_sorted(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier().fit(X, y)
        for values in tree.split_thresholds().values():
            assert np.all(np.diff(values) > 0)

    def test_feature_importances_sum_to_one(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)
        assert (tree.feature_importances_ >= 0).all()

    def test_informative_feature_dominates(self, rng):
        X = rng.normal(size=(400, 2))
        y = (X[:, 0] > 0).astype(int)  # feature 1 is pure noise
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.feature_importances_[0] > 0.9

    def test_node_ids_unique_and_complete(self, small_xy):
        X, y = small_xy
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        ids = [n.node_id for n in tree.root_.iter_nodes()]
        assert sorted(ids) == list(range(tree.n_nodes_))

    def test_max_features_sqrt_limits_candidates(self, rng):
        X = rng.normal(size=(200, 9))
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(
            max_features="sqrt", random_state=0, max_depth=3
        ).fit(X, y)
        assert tree.root_ is not None  # fits without error

    def test_max_features_validation(self, small_xy):
        X, y = small_xy
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=5.0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=99).fit(X, y)


class TestDeterminism:
    def test_same_seed_same_tree(self, small_xy):
        X, y = small_xy
        a = DecisionTreeClassifier(max_features="sqrt", random_state=7).fit(X, y)
        b = DecisionTreeClassifier(max_features="sqrt", random_state=7).fit(X, y)
        assert np.allclose(a.decision_score(X), b.decision_score(X))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_scores_always_probabilities(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        y = rng.integers(0, 2, size=60)
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        scores = tree.decision_score(X)
        assert ((scores >= 0) & (scores <= 1)).all()
