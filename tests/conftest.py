"""Shared fixtures.

Expensive artifacts (datasets, fitted systems) are session-scoped so the
suite stays fast; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constraints import lending_domain_constraints
from repro.core import AdminConfig, JustInTime
from repro.data import (
    LendingGenerator,
    john_profile,
    lending_schema,
    make_lending_dataset,
)
from repro.ml import RandomForestClassifier
from repro.temporal import lending_update_function


@pytest.fixture(scope="session")
def schema():
    return lending_schema()


@pytest.fixture(scope="session")
def lending_ds():
    """Moderate drifting lending dataset, fixed seed."""
    return make_lending_dataset(n_per_year=150, random_state=1)


@pytest.fixture(scope="session")
def small_xy():
    """Simple separable 2-D binary problem for estimator unit tests."""
    rng = np.random.default_rng(0)
    n = 300
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


@pytest.fixture(scope="session")
def fitted_forest(lending_ds):
    recent = lending_ds.window(2017, 2020)
    return RandomForestClassifier(
        n_estimators=15, max_depth=8, random_state=0
    ).fit(recent.X, recent.y)


@pytest.fixture(scope="session")
def john(schema):
    return schema.vector(john_profile())


@pytest.fixture(scope="session")
def fitted_system(lending_ds, schema):
    """A fitted JustInTime system with the fast 'last' strategy."""
    system = JustInTime(
        schema,
        lending_update_function(schema),
        AdminConfig(T=3, strategy="last", k=5, max_iter=10, random_state=0),
        domain_constraints=lending_domain_constraints(schema),
    )
    system.fit(lending_ds)
    return system


@pytest.fixture(scope="session")
def john_session(fitted_system):
    """John's populated session (read-only for tests)."""
    return fitted_system.create_session(
        "john",
        john_profile(),
        user_constraints=["annual_income <= base_annual_income * 1.2"],
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def lending_generator():
    return LendingGenerator(random_state=7)
