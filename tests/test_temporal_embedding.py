"""Tests for kernels, mean embeddings and MMD."""

import numpy as np
import pytest

from repro.exceptions import ForecastError
from repro.temporal import (
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    WeightedSample,
    embedding_inner,
    median_heuristic_gamma,
    mmd,
)


class TestKernels:
    def test_rbf_diagonal_is_one(self, rng):
        X = rng.normal(size=(10, 3))
        K = RBFKernel(gamma=0.7)(X, X)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_symmetric(self, rng):
        X = rng.normal(size=(8, 2))
        K = RBFKernel(gamma=1.3)(X, X)
        assert np.allclose(K, K.T)

    def test_rbf_psd(self, rng):
        X = rng.normal(size=(15, 4))
        K = RBFKernel(gamma=0.5)(X, X)
        eigenvalues = np.linalg.eigvalsh(K)
        assert eigenvalues.min() > -1e-8

    def test_rbf_in_unit_interval(self, rng):
        K = RBFKernel(gamma=2.0)(rng.normal(size=(5, 2)), rng.normal(size=(7, 2)))
        assert ((K > 0) & (K <= 1)).all()

    def test_rbf_gamma_validation(self):
        with pytest.raises(ForecastError):
            RBFKernel(gamma=0.0)

    def test_linear_matches_dot(self, rng):
        X = rng.normal(size=(4, 3))
        Z = rng.normal(size=(5, 3))
        assert np.allclose(LinearKernel()(X, Z), X @ Z.T)

    def test_polynomial_known(self):
        X = np.array([[1.0, 0.0]])
        Z = np.array([[1.0, 0.0]])
        assert PolynomialKernel(degree=2, c=1.0)(X, Z)[0, 0] == pytest.approx(4.0)

    def test_polynomial_degree_validation(self):
        with pytest.raises(ForecastError):
            PolynomialKernel(degree=0)


class TestMedianHeuristic:
    def test_positive(self, rng):
        X = rng.normal(size=(50, 3))
        assert median_heuristic_gamma(X) > 0

    def test_degenerate_all_identical(self):
        X = np.ones((10, 2))
        assert median_heuristic_gamma(X) == 1.0

    def test_subsampling_path(self, rng):
        X = rng.normal(size=(800, 2))
        gamma = median_heuristic_gamma(X, max_points=100, rng=0)
        assert gamma > 0

    def test_scale_sensitivity(self, rng):
        X = rng.normal(size=(60, 2))
        wide = median_heuristic_gamma(X * 10)
        narrow = median_heuristic_gamma(X)
        assert wide < narrow  # wider data -> smaller gamma


class TestWeightedSample:
    def test_mean_embedding_uniform(self, rng):
        points = rng.normal(size=(6, 2))
        emb = WeightedSample.mean_embedding(points)
        assert np.allclose(emb.weights, 1 / 6)

    def test_empty_rejected(self):
        with pytest.raises(ForecastError):
            WeightedSample.mean_embedding(np.zeros((0, 2)))

    def test_mismatched_weights(self):
        with pytest.raises(ForecastError):
            WeightedSample(np.zeros((3, 2)), np.zeros(2))

    def test_witness_is_weighted_kernel_sum(self, rng):
        kernel = RBFKernel(gamma=0.5)
        points = rng.normal(size=(4, 2))
        weights = np.array([0.5, 0.2, 0.2, 0.1])
        emb = WeightedSample(points, weights)
        query = rng.normal(size=(3, 2))
        expected = (weights[None, :] @ kernel(points, query)).ravel()
        assert np.allclose(emb.witness(kernel, query), expected)


class TestMMD:
    def test_zero_on_identical_sample(self, rng):
        kernel = RBFKernel(gamma=1.0)
        X = rng.normal(size=(20, 2))
        a = WeightedSample.mean_embedding(X)
        assert mmd(kernel, a, a) == pytest.approx(0.0, abs=1e-9)

    def test_detects_mean_shift(self, rng):
        kernel = RBFKernel(gamma=0.5)
        a = WeightedSample.mean_embedding(rng.normal(0, 1, size=(200, 2)))
        b = WeightedSample.mean_embedding(rng.normal(0, 1, size=(200, 2)))
        c = WeightedSample.mean_embedding(rng.normal(3, 1, size=(200, 2)))
        assert mmd(kernel, a, c) > 3 * mmd(kernel, a, b)

    def test_symmetry(self, rng):
        kernel = RBFKernel(gamma=1.0)
        a = WeightedSample.mean_embedding(rng.normal(size=(30, 2)))
        b = WeightedSample.mean_embedding(rng.normal(1, 1, size=(30, 2)))
        assert mmd(kernel, a, b) == pytest.approx(mmd(kernel, b, a))

    def test_inner_product_symmetric(self, rng):
        kernel = RBFKernel(gamma=1.0)
        a = WeightedSample.mean_embedding(rng.normal(size=(10, 2)))
        b = WeightedSample.mean_embedding(rng.normal(size=(12, 2)))
        assert embedding_inner(kernel, a, b) == pytest.approx(
            embedding_inner(kernel, b, a)
        )
