"""Tests for feature schemas."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import DatasetSchema, FeatureSpec, lending_schema
from repro.exceptions import SchemaError


class TestFeatureSpec:
    def test_defaults(self):
        spec = FeatureSpec("x")
        assert spec.mutable and not spec.temporal
        assert spec.dtype == "float"

    def test_invalid_dtype(self):
        with pytest.raises(SchemaError):
            FeatureSpec("x", dtype="complex")

    def test_bounds_sanity(self):
        with pytest.raises(SchemaError):
            FeatureSpec("x", lower=10, upper=1)

    def test_categorical_needs_categories(self):
        with pytest.raises(SchemaError):
            FeatureSpec("x", dtype="categorical")

    def test_clip_bounds(self):
        spec = FeatureSpec("x", lower=0, upper=10)
        assert spec.clip(-5) == 0
        assert spec.clip(15) == 10
        assert spec.clip(5.5) == 5.5

    def test_clip_int_rounds(self):
        spec = FeatureSpec("x", dtype="int")
        assert spec.clip(3.7) == 4.0

    def test_clip_categorical_snaps(self):
        spec = FeatureSpec("x", dtype="categorical", categories=(0, 2, 5))
        assert spec.clip(1.2) == 2.0
        assert spec.clip(9.0) == 5.0

    def test_contains(self):
        spec = FeatureSpec("x", dtype="int", lower=0, upper=5)
        assert spec.contains(3)
        assert not spec.contains(3.5)
        assert not spec.contains(-1)
        assert not spec.contains(6)

    def test_contains_categorical(self):
        spec = FeatureSpec("x", dtype="categorical", categories=(0, 1))
        assert spec.contains(1)
        assert not spec.contains(2)


class TestDatasetSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DatasetSchema([FeatureSpec("a"), FeatureSpec("a")])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            DatasetSchema([])

    def test_index_and_getitem(self, schema):
        assert schema.index_of("age") == 0
        assert schema["age"].name == "age"
        assert schema[0].name == "age"
        assert "age" in schema
        assert "bogus" not in schema

    def test_unknown_feature(self, schema):
        with pytest.raises(SchemaError):
            schema.index_of("bogus")

    def test_vector_dict_roundtrip(self, schema):
        values = {
            "age": 30,
            "household": 1,
            "annual_income": 50_000,
            "monthly_debt": 1_000,
            "seniority": 5,
            "loan_amount": 20_000,
        }
        x = schema.vector(values)
        assert schema.as_dict(x) == pytest.approx(values)

    def test_vector_missing_feature(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            schema.vector({"age": 30})

    def test_vector_extra_feature(self, schema):
        values = {name: 1.0 for name in schema.names}
        values["bogus"] = 1.0
        with pytest.raises(SchemaError, match="unknown"):
            schema.vector(values)

    def test_as_dict_wrong_size(self, schema):
        with pytest.raises(SchemaError):
            schema.as_dict(np.zeros(3))

    def test_mutable_indices_exclude_age_and_seniority(self, schema):
        mutable = {schema.names[i] for i in schema.mutable_indices()}
        assert "age" not in mutable
        assert "seniority" not in mutable
        assert "annual_income" in mutable

    def test_temporal_features(self, schema):
        names = {f.name for f in schema.temporal_features()}
        assert names == {"age", "seniority"}

    def test_clip_vector(self, schema):
        x = np.array([150.0, 7.0, -10.0, -5.0, 99.0, 0.0])
        clipped = schema.clip(x)
        assert clipped[schema.index_of("age")] == 100
        assert clipped[schema.index_of("household")] == 2
        assert clipped[schema.index_of("annual_income")] == 0
        assert clipped[schema.index_of("loan_amount")] == 1_000

    def test_clip_idempotent(self, schema, rng):
        x = rng.uniform(-1000, 1_000_000, size=len(schema))
        once = schema.clip(x)
        assert np.array_equal(schema.clip(once), once)

    def test_validate_vector(self, schema):
        good = schema.vector(
            {
                "age": 30,
                "household": 0,
                "annual_income": 10_000,
                "monthly_debt": 100,
                "seniority": 2,
                "loan_amount": 5_000,
            }
        )
        assert schema.validate_vector(good)
        bad = good.copy()
        bad[schema.index_of("age")] = 17
        assert not schema.validate_vector(bad)
        assert not schema.validate_vector(good[:3])

    def test_equality(self):
        a = DatasetSchema([FeatureSpec("x"), FeatureSpec("y")])
        b = DatasetSchema([FeatureSpec("x"), FeatureSpec("y")])
        c = DatasetSchema([FeatureSpec("x")])
        assert a == b
        assert a != c

    @given(
        st.lists(
            st.floats(-1e8, 1e8, allow_nan=False),
            min_size=6,
            max_size=6,
        )
    )
    def test_clip_always_valid(self, values):
        schema = lending_schema()
        clipped = schema.clip(np.array(values))
        assert schema.validate_vector(clipped)
