"""Tests for the CLI frontend and text rendering."""

import io

import pytest

from repro.app import (
    build_system,
    insight_block,
    profile_table,
    run_demo,
    run_interactive,
    run_quickstart,
    screen_header,
    table,
)
from repro.app.cli import make_parser


class TestRender:
    def test_screen_header_boxed(self):
        out = screen_header("Queries")
        lines = out.splitlines()
        assert len(lines) == 3
        assert "Queries" in lines[1]
        assert lines[0].startswith("+") and lines[0].endswith("+")

    def test_table_alignment(self):
        out = table(("a", "bb"), [(1, 2.5), (30, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows same width
        assert len({len(line) for line in lines}) == 1

    def test_table_formats_floats(self):
        out = table(("x",), [(1234.5678,)])
        assert "1,234.568" in out

    def test_table_formats_int_like_floats(self):
        out = table(("x",), [(50_000.0,)])
        assert "50,000" in out

    def test_profile_table_lists_features(self, schema, john):
        out = profile_table(schema, john)
        for name in schema.names:
            assert name in out

    def test_insight_block(self, john_session):
        insight = john_session.ask("q1")
        out = insight_block(insight)
        assert insight.title in out
        assert insight.text in out


class TestParser:
    def test_subcommands(self):
        parser = make_parser()
        args = parser.parse_args(["--horizon", "2", "demo"])
        assert args.command == "demo"
        assert args.horizon == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--strategy", "magic", "demo"])

    def test_shared_runtime_flags_on_every_refresh_verb(self):
        """The argparse parents land --budget/--cold on each verb of the
        refresh family without per-subparser re-declaration."""
        parser = make_parser()
        refresh = parser.parse_args(["refresh", "--budget", "5", "--cold"])
        assert refresh.budget == 5 and refresh.cold is True
        daemon = parser.parse_args(
            ["refresh-daemon", "--feed", "f.csv", "--cadence", "1",
             "--budget", "3"]
        )
        assert daemon.budget == 3 and daemon.cold is False
        workers = parser.parse_args(
            ["refresh-workers", "--budget", "7", "--engine", "fused"]
        )
        assert workers.budget == 7 and workers.engine == "fused"
        orch = parser.parse_args(
            ["refresh-orchestrator", "--feed", "f.csv", "--cadence", "1",
             "--budget", "4", "--sla-epochs", "2",
             "--priority-halflife", "60"]
        )
        assert orch.budget == 4
        assert orch.sla_epochs == 2
        assert orch.priority_halflife == 60.0
        assert orch.claim_batch == 2 and orch.lease_seconds == 30.0

    def test_budget_defaults_to_unlimited(self):
        args = make_parser().parse_args(["refresh"])
        assert args.budget is None

    def test_subparsers_do_not_clobber_root_db_flags(self):
        args = make_parser().parse_args(
            ["--db", "x.db", "--db-backend", "sharded", "refresh",
             "--budget", "2"]
        )
        assert args.db == "x.db" and args.db_backend == "sharded"

    def test_query_keeps_its_own_float_budget(self):
        """The query verb's --budget is the Q7 effort budget (a float),
        distinct from the refresh family's integer cell budget."""
        args = make_parser().parse_args(
            ["query", "--user", "u1", "--budget", "2.5", "--freshness"]
        )
        assert args.budget == 2.5
        assert args.freshness is True

    def test_serve_access_log_flag(self):
        args = make_parser().parse_args(["serve", "--no-access-log"])
        assert args.no_access_log is True
        assert make_parser().parse_args(["serve"]).no_access_log is False


class TestSubcommands:
    @pytest.fixture(scope="class")
    def args(self):
        return make_parser().parse_args(
            ["--n-per-year", "80", "--horizon", "2", "--alpha", "0.55", "quickstart"]
        )

    def test_quickstart_prints_insights(self, args):
        out = io.StringIO()
        assert run_quickstart(args, out) == 0
        text = out.getvalue()
        assert "JustInTime quickstart" in text
        assert "Plans and Insights" in text
        assert "rejected now" in text

    def test_demo_runs_five_applicants(self, args):
        out = io.StringIO()
        assert run_demo(args, out) == 0
        text = out.getvalue()
        for i in range(1, 6):
            assert f"applicant-{i}" in text
        assert "Personal Preferences" in text

    def test_interactive_scripted(self, args):
        # accept every default, add one constraint, run q1 only
        stdin = io.StringIO("\n" * 6 + "gap <= 2\n\nq1\n")
        out = io.StringIO()
        assert run_interactive(args, out, stdin) == 0
        text = out.getvalue()
        assert "Queries" in text
        assert "No modification" in text

    def test_interactive_handles_bad_input(self, args):
        lines = ["abc"] + [""] * 5 + ["", "q9,q1"]
        stdin = io.StringIO("\n".join(lines) + "\n")
        out = io.StringIO()
        assert run_interactive(args, out, stdin) == 0
        assert "unknown question" in out.getvalue()


class TestBuildSystem:
    def test_build_system_fitted(self):
        system = build_system(n_per_year=60, strategy="last", horizon=1, seed=0)
        assert system.future_models is not None
        assert len(system.future_models) == 2


class TestRebalanceVerb:
    def _populated_sharded(self, schema, john, db_path, n_shards=4):
        import numpy as np

        from repro.db import CandidateStore

        with CandidateStore(
            schema, db_path, backend="sharded", n_shards=n_shards
        ) as store:
            store.store_sessions(
                [
                    (f"u{i}", np.vstack([john, john + i]), [])
                    for i in range(10)
                ],
                fingerprints={0: "fp0", 1: "fp1"},
            )
            return store.contents_digest()

    def test_rebalance_verb_migrates_and_keeps_digest(
        self, schema, john, tmp_path
    ):
        from repro.app.cli import main
        from repro.db import CandidateStore, ShardedSQLiteBackend

        db = tmp_path / "cands.db"
        digest = self._populated_sharded(schema, john, db)
        out = io.StringIO()
        from repro.app.cli import run_rebalance

        args = make_parser().parse_args(
            ["--db", str(db), "rebalance", "--to-shards", "6"]
        )
        assert run_rebalance(args, out) == 0
        text = out.getvalue()
        assert "4 -> 6 shards" in text
        assert digest in text  # digest printed unchanged
        with CandidateStore(schema, db) as store:
            assert isinstance(store.backend, ShardedSQLiteBackend)
            assert store.backend.n_shards == 6
            assert store.contents_digest() == digest
        # and it is wired through main()
        assert main(["--db", str(db), "rebalance", "--to-shards", "2"]) == 0

    def test_rebalance_verb_requires_db(self):
        from repro.app.cli import run_rebalance

        args = make_parser().parse_args(["rebalance", "--to-shards", "2"])
        out = io.StringIO()
        assert run_rebalance(args, out) == 2
        assert "--db" in out.getvalue()

    def test_rebalance_verb_rejects_plain_store(self, schema, john, tmp_path):
        from repro.app.cli import run_rebalance
        from repro.db import CandidateStore

        db = tmp_path / "plain.db"
        with CandidateStore(schema, db) as store:
            store.store_temporal_inputs("u1", john.reshape(1, -1))
        args = make_parser().parse_args(
            ["--db", str(db), "rebalance", "--to-shards", "2"]
        )
        out = io.StringIO()
        assert run_rebalance(args, out) == 2
        assert "failed" in out.getvalue()


class TestQueryVerb:
    def _populated_db(self, schema, john, tmp_path):
        import numpy as np

        from repro.core import Candidate, CandidateMetrics
        from repro.db import CandidateStore

        db = tmp_path / "query.db"
        with CandidateStore(schema, db) as store:
            trajectory = np.vstack([john, john])
            store.store_temporal_inputs(
                "u1", trajectory, fingerprints={0: "fpa", 1: "fpb"}
            )
            store.store_candidates(
                "u1",
                [
                    Candidate(
                        trajectory[1], 1,
                        CandidateMetrics(diff=0.0, gap=0, confidence=0.7),
                    )
                ],
                fingerprints={0: "fpa", 1: "fpb"},
            )
        return db

    def test_json_mode_emits_canonical_bundle(self, schema, john, tmp_path):
        import json

        from repro.app.cli import run_query

        db = self._populated_db(schema, john, tmp_path)
        args = make_parser().parse_args(
            ["--db", str(db), "query", "--user", "u1", "--json"]
        )
        out = io.StringIO()
        assert run_query(args, out) == 0
        payload = json.loads(out.getvalue())
        assert payload["user"] == "u1"
        assert payload["ledger"] == {"0": "fpa", "1": "fpb"}
        assert set(payload["insights"]) == {"q1", "q2", "q3", "q4", "q5", "q6"}
        # canonical serialization: re-dumping is byte-identical
        from repro.serve import dumps

        assert out.getvalue().strip() == dumps(payload)

    def test_json_freshness_flag_adds_meta_without_perturbing_rest(
        self, schema, john, tmp_path
    ):
        import json
        import time

        from repro.app.cli import run_query
        from repro.db import CandidateStore

        def _stamp(value):
            with CandidateStore(schema, db) as store:
                conn, prefix = store._write_target("main")
                conn.execute(
                    f"UPDATE {prefix}.temporal_inputs SET refreshed_at = ?",
                    (value,),
                )
                conn.commit()

        db = self._populated_db(schema, john, tmp_path)
        base_args = ["--db", str(db), "query", "--user", "u1", "--json"]
        plain = io.StringIO()
        assert run_query(make_parser().parse_args(base_args), plain) == 0
        # unstamped rows (refreshed_at=0, the legacy migration value):
        # --freshness adds nothing
        _stamp(0.0)
        fresh = io.StringIO()
        assert run_query(
            make_parser().parse_args(base_args + ["--freshness"]), fresh
        ) == 0
        assert fresh.getvalue() == plain.getvalue()
        # stamp the cells; now --freshness adds meta and ONLY meta
        _stamp(time.time() - 10.0)
        stamped = io.StringIO()
        assert run_query(
            make_parser().parse_args(base_args + ["--freshness"]), stamped
        ) == 0
        payload = json.loads(stamped.getvalue())
        assert 5.0 <= payload["meta"]["freshness"] <= 300.0
        payload.pop("meta")
        from repro.serve import dumps

        assert dumps(payload) == plain.getvalue().strip()

    def test_json_matches_the_http_wire_format(self, schema, john, tmp_path):
        """CLI --json and the HTTP bundle are byte-identical for the
        same user and parameters (shared protocol module)."""
        import http.client
        import threading

        from repro.app.cli import run_query, run_serve

        db = self._populated_db(schema, john, tmp_path)
        args = make_parser().parse_args(
            ["--db", str(db), "query", "--user", "u1", "--json"]
        )
        out = io.StringIO()
        assert run_query(args, out) == 0
        cli_body = out.getvalue().strip()

        serve_args = make_parser().parse_args(
            ["--db", str(db), "serve", "--port", "0", "--max-requests", "1"]
        )
        serve_out = io.StringIO()
        thread = threading.Thread(
            target=run_serve, args=(serve_args, serve_out), daemon=True
        )
        thread.start()
        import re
        import time as _time

        port = None
        for _ in range(300):
            match = re.search(r"http://127\.0\.0\.1:(\d+)", serve_out.getvalue())
            if match:
                port = int(match.group(1))
                break
            _time.sleep(0.02)
        assert port, "serve verb never printed its URL"
        conn = http.client.HTTPConnection("127.0.0.1", port)
        # q6 via CLI uses the global --alpha default (0.55): match it
        conn.request("GET", "/insights?user=u1&alpha=0.55")
        resp = conn.getresponse()
        http_body = resp.read().decode()
        conn.close()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert resp.status == 200
        assert http_body == cli_body
        assert "served 1 requests" in serve_out.getvalue()

    def test_unknown_user_exit_2(self, schema, john, tmp_path):
        from repro.app.cli import run_query

        db = self._populated_db(schema, john, tmp_path)
        args = make_parser().parse_args(
            ["--db", str(db), "query", "--user", "ghost"]
        )
        out = io.StringIO()
        assert run_query(args, out) == 2
        assert "ghost" in out.getvalue()

    def test_unknown_question_exit_2(self, schema, john, tmp_path):
        from repro.app.cli import run_query

        db = self._populated_db(schema, john, tmp_path)
        args = make_parser().parse_args(
            ["--db", str(db), "query", "--user", "u1", "--questions", "q1,q9"]
        )
        out = io.StringIO()
        assert run_query(args, out) == 2
        assert "q9" in out.getvalue()

    def test_requires_db_or_load(self):
        from repro.app.cli import run_query

        args = make_parser().parse_args(["query", "--user", "u1"])
        out = io.StringIO()
        assert run_query(args, out) == 2
        assert "--db" in out.getvalue()

    def test_verbal_mode_renders_insight_blocks(self, schema, john, tmp_path):
        from repro.app.cli import run_query

        db = self._populated_db(schema, john, tmp_path)
        args = make_parser().parse_args(
            ["--db", str(db), "query", "--user", "u1", "--questions", "q1"]
        )
        out = io.StringIO()
        assert run_query(args, out) == 0
        text = out.getvalue()
        assert "Plans and Insights" in text
        assert "No modification" in text
