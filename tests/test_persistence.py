"""Tests for system persistence and the admin CLI flow."""

import numpy as np
import pytest

from repro.core import AdminConfig, JustInTime, load_system, save_system
from repro.data import john_profile, make_lending_dataset
from repro.exceptions import StorageError
from repro.temporal import lending_update_function


@pytest.fixture(scope="module")
def trained(schema):
    system = JustInTime(
        schema,
        lending_update_function(schema),
        AdminConfig(T=2, strategy="last", k=4, max_iter=8, random_state=0),
    )
    system.fit(make_lending_dataset(n_per_year=100, random_state=5))
    return system


class TestSaveLoad:
    def test_roundtrip_scores_identical(self, trained, tmp_path, john):
        path = tmp_path / "system.pkl"
        save_system(trained, path)
        loaded = load_system(path)
        for t in range(3):
            assert loaded.future_models.score(john, t) == pytest.approx(
                trained.future_models.score(john, t)
            )
        assert np.allclose(loaded.diff_scale, trained.diff_scale)
        assert loaded.time_values == trained.time_values

    def test_loaded_system_serves_sessions(self, trained, tmp_path):
        path = tmp_path / "system.pkl"
        save_system(trained, path)
        loaded = load_system(path)
        session = loaded.create_session(
            "u", john_profile(), user_constraints=["gap <= 3"]
        )
        insights = session.all_insights(alpha=0.6, feature="monthly_debt")
        assert len(insights) == 6

    def test_sessions_match_original(self, trained, tmp_path):
        path = tmp_path / "system.pkl"
        save_system(trained, path)
        loaded = load_system(path)
        a = trained.create_session("u", john_profile())
        b = loaded.create_session("u", john_profile())
        def key(c):
            return (c.time, tuple(np.round(c.x, 9)))

        assert sorted(map(key, a.candidates)) == sorted(map(key, b.candidates))
        trained.store.clear_user("u")

    def test_file_backed_store_attachment(self, trained, tmp_path):
        pkl = tmp_path / "system.pkl"
        db = tmp_path / "candidates.db"
        save_system(trained, pkl)
        loaded = load_system(pkl, store_path=db)
        loaded.create_session("u", john_profile())
        count = loaded.store.candidate_count("u")
        # reopen from disk: the candidates survived
        again = load_system(pkl, store_path=db)
        assert again.store.candidate_count("u") == count

    def test_version_check(self, trained, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        with path.open("wb") as handle:
            pickle.dump({"version": 99}, handle)
        with pytest.raises(StorageError, match="version"):
            load_system(path)


class TestAdminCli:
    def test_admin_then_load(self, tmp_path, capsys):
        from repro.app.cli import main

        pkl = tmp_path / "sys.pkl"
        code = main(
            ["--n-per-year", "60", "--horizon", "1", "admin",
             "--save", str(pkl)]
        )
        assert code == 0
        assert pkl.exists()
        assert "trained 2 future models" in capsys.readouterr().out
        code = main(["--load", str(pkl), "quickstart"])
        assert code == 0
        assert "Plans and Insights" in capsys.readouterr().out
