"""Tests for move proposers."""

import numpy as np
import pytest

from repro.core import (
    GradientMoveProposer,
    RandomMoveProposer,
    ThresholdMoveProposer,
    default_proposers,
)
from repro.exceptions import CandidateSearchError
from repro.ml import LogisticRegression


class TestThresholdMoves:
    def test_proposals_cross_thresholds(self, fitted_forest, schema, john, rng):
        proposer = ThresholdMoveProposer(n_nearest=2, n_far=2)
        proposals = proposer.propose(john, fitted_forest, schema, rng)
        assert proposals
        thresholds = fitted_forest.split_thresholds()
        for proposal in proposals:
            changed = np.flatnonzero(np.abs(proposal - john) > 1e-9)
            assert changed.size == 1  # single-coordinate moves
            idx = int(changed[0])
            # the move crossed at least one threshold of that feature
            feature_thresholds = thresholds[idx]
            before, after = john[idx], proposal[idx]
            lo, hi = min(before, after), max(before, after)
            crossed = ((feature_thresholds > lo) & (feature_thresholds < hi)).any()
            assert crossed

    def test_immutable_features_untouched(self, fitted_forest, schema, john, rng):
        proposer = ThresholdMoveProposer()
        age_idx = schema.index_of("age")
        seniority_idx = schema.index_of("seniority")
        for proposal in proposer.propose(john, fitted_forest, schema, rng):
            assert proposal[age_idx] == john[age_idx]
            assert proposal[seniority_idx] == john[seniority_idx]

    def test_proposals_respect_schema(self, fitted_forest, schema, john, rng):
        proposer = ThresholdMoveProposer(n_far=5)
        for proposal in proposer.propose(john, fitted_forest, schema, rng):
            assert schema.validate_vector(proposal)

    def test_rejects_model_without_thresholds(self, schema, john, rng, small_xy):
        X, y = small_xy
        linear = LogisticRegression(max_iter=50).fit(X, y)
        with pytest.raises(CandidateSearchError, match="split_thresholds"):
            ThresholdMoveProposer().propose(john, linear, schema, rng)

    def test_param_validation(self):
        with pytest.raises(CandidateSearchError):
            ThresholdMoveProposer(n_nearest=0)
        with pytest.raises(CandidateSearchError):
            ThresholdMoveProposer(n_far=-1)


class TestGradientMoves:
    @pytest.fixture()
    def linear_model(self, lending_ds):
        from repro.temporal import ModelsGenerator

        fm = ModelsGenerator(T=0, strategy="weights", random_state=0).generate(
            lending_ds
        )
        return fm[0].model

    def test_moves_increase_score(self, linear_model, schema, john, rng):
        proposer = GradientMoveProposer(step_fractions=(1.0,))
        base_score = linear_model.decision_score(john.reshape(1, -1))[0]
        proposals = proposer.propose(john, linear_model, schema, rng)
        assert proposals
        improved = sum(
            linear_model.decision_score(p.reshape(1, -1))[0] > base_score
            for p in proposals
        )
        assert improved == len(proposals)

    def test_single_coordinate_moves(self, linear_model, schema, john, rng):
        for proposal in GradientMoveProposer().propose(
            john, linear_model, schema, rng
        ):
            assert np.sum(np.abs(proposal - john) > 1e-9) == 1

    def test_rejects_model_without_gradient(self, fitted_forest, schema, john, rng):
        with pytest.raises(CandidateSearchError, match="score_gradient"):
            GradientMoveProposer().propose(john, fitted_forest, schema, rng)

    def test_param_validation(self):
        with pytest.raises(CandidateSearchError):
            GradientMoveProposer(step_fractions=())


class TestRandomMoves:
    def test_respects_schema(self, fitted_forest, schema, john, rng):
        proposer = RandomMoveProposer(n_proposals=30)
        for proposal in proposer.propose(john, fitted_forest, schema, rng):
            assert schema.validate_vector(proposal)

    def test_only_mutable_features(self, fitted_forest, schema, john, rng):
        proposer = RandomMoveProposer(n_proposals=50)
        age_idx = schema.index_of("age")
        for proposal in proposer.propose(john, fitted_forest, schema, rng):
            assert proposal[age_idx] == john[age_idx]

    def test_categorical_switches_to_valid_code(self, fitted_forest, schema, john):
        rng = np.random.default_rng(0)
        proposer = RandomMoveProposer(n_proposals=200)
        household_idx = schema.index_of("household")
        proposals = proposer.propose(john, fitted_forest, schema, rng)
        switched = [
            p[household_idx] for p in proposals if p[household_idx] != john[household_idx]
        ]
        assert switched  # some proposals touch the categorical
        assert set(switched) <= {0.0, 1.0, 2.0}

    def test_param_validation(self):
        with pytest.raises(CandidateSearchError):
            RandomMoveProposer(n_proposals=0)


class TestDefaultProposers:
    def test_forest_gets_threshold_and_random(self, fitted_forest):
        kinds = {type(p).__name__ for p in default_proposers(fitted_forest)}
        assert kinds == {"ThresholdMoveProposer", "RandomMoveProposer"}

    def test_linear_gets_gradient_and_random(self, small_xy):
        X, y = small_xy
        model = LogisticRegression(max_iter=50).fit(X, y)
        kinds = {type(p).__name__ for p in default_proposers(model)}
        assert kinds == {"GradientMoveProposer", "RandomMoveProposer"}
